"""BitTorrent-style content dissemination over the flow-level bandwidth model.

The paper's evaluation runs a BitTorrent dissemination experiment; this
module reproduces the workload shape: one (or more) seed nodes start with a
file of fixed-size chunks, every other node swarms it down by exchanging
chunk bitfields with random peers and fetching missing chunks
*rarest-first*.  Chunk payloads do **not** travel as control messages —
each upload drives :meth:`RestrictedSocket.transfer`, i.e. the max-min fair
flow-level :class:`~repro.net.bandwidth.BandwidthModel`, so download times
reflect contended 10 Mbps access links rather than per-message latency.
This makes the swarm the first end-to-end consumer of the bandwidth model.

Control plane per fetched chunk: a ``have`` poll (bitfield exchange), a
``fetch`` RPC whose handler starts the bulk transfer and replies once the
last byte (plus propagation) has arrived, and local bookkeeping for
availability counts.  Uploaders cap concurrent uploads (``max_uploads``,
BitTorrent's unchoke slots); saturated peers answer ``busy`` and the
requester moves on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Set

from repro.lib.rpc import RpcError
from repro.net.address import NodeRef
from repro.net.bwalloc import BULK
from repro.sim.rng import substream

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.splayd import Instance


@dataclass
class SwarmStats:
    """Per-node counters (aggregated by the scenario report)."""

    chunks_fetched: int = 0
    chunks_uploaded: int = 0
    fetch_failures: int = 0
    busy_rejections: int = 0
    have_polls: int = 0


class SwarmNode:
    """One swarm participant, bound to one runtime instance.

    Options: ``chunks`` — chunks in the file; ``chunk_size`` — bytes per
    chunk; ``fetch_concurrency`` — parallel download loops per node;
    ``max_uploads`` — concurrent upload slots (unchoke limit);
    ``poll_interval`` — idle wait between peer polls; ``fetch_timeout`` —
    RPC budget for one chunk (must cover the bulk transfer); ``join_window``
    — joins are staggered uniformly over this many seconds.

    The first instance of the job becomes the *seed* and starts complete.
    """

    def __init__(self, instance: "Instance", **overrides):
        options = {**instance.options, **overrides}
        self.instance = instance
        self.events = instance.events
        self.rpc = instance.rpc
        self.socket = instance.socket
        self.log = instance.logger
        self.chunks: int = int(options.get("chunks", 24))
        self.chunk_size: int = int(options.get("chunk_size", 65536))
        self.fetch_concurrency: int = int(options.get("fetch_concurrency", 3))
        self.max_uploads: int = int(options.get("max_uploads", 4))
        self.poll_interval: float = float(options.get("poll_interval", 1.0))
        self.fetch_timeout: float = float(options.get("fetch_timeout", 60.0))
        self.join_window: float = float(options.get("join_window", 30.0))

        self.me = instance.me
        self.have: Set[int] = set()
        #: chunk index -> how many peers were seen advertising it
        self.availability: Dict[int, int] = {}
        self._pending: Set[int] = set()
        self._uploads = 0
        self.started_at = self.events.sim.now
        self.completed_at: Optional[float] = None
        self.is_seed = False
        self.providers: Set[tuple] = set()
        self.joined = False
        self.stats = SwarmStats()
        self._rng = substream(self.events.sim.seed, "swarm",
                              instance.job.job_id, instance.instance_id)

        rpc = self.rpc
        rpc.register("have", self._rpc_have)
        rpc.register("fetch", self._rpc_fetch)

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        members = self.instance.job.shared.setdefault("swarm_members", [])
        if not self.instance.job.shared.get("swarm_seeded"):
            self.instance.job.shared["swarm_seeded"] = True
            self.is_seed = True
            self.have = set(range(self.chunks))
            self.completed_at = self.events.sim.now
            self._go_live(delay=0.0)
        else:
            delay = self._rng.uniform(0.0, self.join_window) if self.join_window > 0 else 0.0
            self._go_live(delay=delay)
        self.instance.context.add_cleanup(
            lambda: members.remove(self.me) if self.me in members else None)

    def _go_live(self, delay: float) -> None:
        def _up() -> None:
            members = self.instance.job.shared["swarm_members"]
            if self.me not in members:
                members.append(self.me)
            self.joined = True
            # The measured download time starts when the fetch workers do,
            # not at instance creation — the join stagger is not download
            # latency.
            self.started_at = self.events.sim.now
            for worker in range(self.fetch_concurrency):
                self.events.thread(self._fetch_loop,
                                   name=f"{self.instance.context.name}.fetch{worker}")

        if delay > 0:
            self.events.timer(delay, _up)
        else:
            _up()

    @property
    def complete(self) -> bool:
        return len(self.have) >= self.chunks

    # ------------------------------------------------------------ RPC handlers
    def _rpc_have(self) -> List[int]:
        return sorted(self.have)

    def _rpc_fetch(self, chunk: int, requester: dict) -> Generator:
        """Upload one chunk: bulk-transfer it, reply once it has arrived."""
        chunk = int(chunk)
        if chunk not in self.have:
            return {"ok": False, "reason": "missing"}
        if self._uploads >= self.max_uploads:
            self.stats.busy_rejections += 1
            return {"ok": False, "reason": "busy"}
        self._uploads += 1
        try:
            destination = NodeRef.coerce(requester)
            yield self.socket.transfer(destination, self.chunk_size,
                                       priority=BULK)
            self.stats.chunks_uploaded += 1
            return {"ok": True}
        finally:
            self._uploads -= 1

    # ------------------------------------------------------------ download side
    def _fetch_loop(self) -> Generator:
        """Swarm until complete: poll a random peer, fetch a missing chunk."""
        while not self.complete:
            peer = self._pick_peer()
            if peer is None:
                yield self.poll_interval
                continue
            try:
                self.stats.have_polls += 1
                remote_have = yield self.rpc.call(peer, "have",
                                                  timeout=3.0, retries=0)
            except RpcError:
                yield self.poll_interval * 0.5
                continue
            remote_have = set(int(c) for c in remote_have)
            for chunk in remote_have:
                self.availability[chunk] = self.availability.get(chunk, 0) + 1
            wanted = sorted(remote_have - self.have - self._pending)
            if not wanted:
                yield self.poll_interval * 0.5
                continue
            chunk = self._pick_chunk(wanted)
            self._pending.add(chunk)
            try:
                reply = yield self.rpc.call(peer, "fetch", chunk, self.me,
                                            timeout=self.fetch_timeout, retries=0)
            except RpcError:
                self.stats.fetch_failures += 1
                continue
            finally:
                self._pending.discard(chunk)
            if not reply.get("ok"):
                if reply.get("reason") == "busy":
                    yield self.poll_interval * 0.25
                continue
            if chunk not in self.have:
                self.have.add(chunk)
                self.stats.chunks_fetched += 1
                self.providers.add((peer.ip, peer.port))
                if self.complete and self.completed_at is None:
                    self.completed_at = self.events.sim.now
                    self.log.info(f"swarm node {self.me} complete "
                                  f"({self.chunks} chunks)")

    def _pick_peer(self) -> Optional[NodeRef]:
        members = [m for m in self.instance.job.shared.get("swarm_members", [])
                   if m != self.me]
        if not members:
            return None
        return self._rng.choice(members)

    def _pick_chunk(self, wanted: List[int]) -> int:
        """Rarest-first among what the peer offers (ties broken randomly)."""
        rarest = min(self.availability.get(c, 0) for c in wanted)
        pool = [c for c in wanted if self.availability.get(c, 0) == rarest]
        return self._rng.choice(pool)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SwarmNode {self.me} {len(self.have)}/{self.chunks}"
                f"{' seed' if self.is_seed else ''}>")


def swarm_factory(**options):
    """Build a :class:`JobSpec`-compatible application factory."""

    def _factory(instance: "Instance") -> SwarmNode:
        node = SwarmNode(instance, **options)
        node.start()
        return node

    return _factory


# ----------------------------------------------------------------- scenario
#: gentler than the DHT scripts: the swarm must keep every chunk alive, so
#: churn starts once the file has had time to spread beyond the seed
DEFAULT_CHURN_SCRIPT = """\
at 120s crash 5%
from 150s to 240s every 30s replace 5%
"""


def run_dissemination_scenario(nodes: int = 50, hosts: Optional[int] = None,
                               seed: int = 0, churn: bool = False,
                               churn_script: Optional[str] = None,
                               chunks: int = 24, chunk_size: int = 65536,
                               join_window: Optional[float] = None,
                               settle: Optional[float] = None,
                               kernel: str = "wheel",
                               duration: str = "full",
                               ctl_shards: int = 1,
                               testbed: str = "transit-stub",
                               churn_trace: Optional[str] = None,
                               sanitize: bool = False, metrics: bool = False,
                               trace_out: Optional[str] = None,
                               profile: bool = False,
                               log_level: str = "INFO",
                               bw_alloc: str = "max-min",
                               bw_global: bool = False,
                               gc_policy: str = "tuned",
                               store_caches: bool = True) -> dict:
    """Run the chunk-swarming workload and return the report dict.

    Every non-seed node is one measured operation: its latency is the time
    from going live to holding all ``chunks`` chunks, and it is *correct*
    when it completed within the horizon.  The horizon scales with the
    churn window plus a settle period so churned-in nodes get their chance.
    """
    from repro.apps import harness
    from repro.sim.process import Process

    join_window, settle = harness.scaled_windows(nodes, join_window, settle, duration)
    script = churn_script if churn_script is not None else (
        DEFAULT_CHURN_SCRIPT if churn else None)
    deployment = harness.deploy(
        "dissemination", swarm_factory(), nodes=nodes, hosts=hosts, seed=seed,
        kernel=kernel, churn_script=script, churn_trace=churn_trace,
        testbed=testbed, options={"chunks": chunks, "chunk_size": chunk_size},
        join_window=join_window, settle=settle, ctl_shards=ctl_shards,
        sanitize=sanitize, metrics=metrics, trace_out=trace_out,
        profile=profile, log_level=log_level, bw_alloc=bw_alloc,
        bw_global=bw_global, gc_policy=gc_policy, store_caches=store_caches)
    sim, job = deployment.sim, deployment.job

    horizon = deployment.measure_start + max(120.0, 0.02 * chunks * nodes)

    def _wait_for_swarm() -> Generator:
        while sim.now < horizon:
            # Every live instance counts, joined or not: a churned-in node
            # still inside its join-stagger window must hold the sim open.
            apps = [i.app for i in job.live_instances() if i.app is not None]
            if apps and sim.now > deployment.churn_end and all(
                    a.joined and a.complete for a in apps):
                return
            yield 5.0

    driver = Process(sim, _wait_for_swarm(), name="workload.swarm-wait")
    driver.start()
    harness.drain(sim, driver, horizon, deployment=deployment)

    apps = [a for a in harness.joined_apps(job) if not a.is_seed]
    seeds = [a for a in harness.joined_apps(job) if a.is_seed]
    results: List[harness.OpResult] = []
    for index, app in enumerate(apps):
        done = app.complete and app.completed_at is not None
        latency = (app.completed_at - app.started_at) if done else sim.now - app.started_at
        results.append(harness.OpResult(
            key=index, started_at=app.started_at, latency=latency,
            hops=len(app.providers), completed=done, correct=done))

    report = harness.base_report("dissemination", deployment)
    report["measured"] = harness.summarise(results)
    if not results:
        # Seed-only deployment (nodes=1): nothing to download is vacuous
        # success, not a failed swarm.
        report["measured"]["success_rate"] = 1.0
    fetched = sum(a.stats.chunks_fetched for a in apps)
    uploaded = sum(a.stats.chunks_uploaded for a in apps + seeds)
    report["workload"] = {
        "chunks": chunks,
        "chunk_size": chunk_size,
        "file_bytes": chunks * chunk_size,
        "seeds": len(seeds),
        "downloaders": len(apps),
        "chunks_fetched": fetched,
        "chunks_uploaded": uploaded,
        "seed_uploads": sum(a.stats.chunks_uploaded for a in seeds),
        "fetch_failures": sum(a.stats.fetch_failures for a in apps),
        "busy_rejections": sum(a.stats.busy_rejections for a in apps + seeds),
        "transfers_started": deployment.network.stats.transfers_started,
        "transfers_completed": deployment.network.bandwidth.completed,
    }
    report["cdf_samples_ms"] = sorted(
        round(1000.0 * r.latency, 3) for r in results if r.completed)
    return report


def _register() -> None:
    from repro.apps import registry

    def _add_arguments(parser) -> None:
        parser.add_argument("--chunks", type=int, default=24,
                            help="chunks in the disseminated file")
        parser.add_argument("--chunk-size", type=int, default=65536,
                            help="bytes per chunk (drives the bandwidth model)")

    registry.register(registry.ScenarioSpec(
        name="dissemination",
        help="BitTorrent-style chunk swarming over the bandwidth model",
        runner=run_dissemination_scenario,
        default_churn_script=DEFAULT_CHURN_SCRIPT,
        add_arguments=_add_arguments,
        make_kwargs=lambda args: {"chunks": args.chunks,
                                  "chunk_size": args.chunk_size},
        ops_param=None,
        ops_label="download",
        default_min_success=0.95,
        extra_report_lines=["seeds", "downloaders", "chunks_fetched",
                            "seed_uploads", "transfers_completed"],
    ))


_register()
