"""Shared scenario harness: deploy, drive, measure, report.

Paper counterpart: the deployment harness of Section 5 — the scripted
pipeline the authors used to run every evaluation workload on the same
ModelNet testbed under the same churn scripts.

Every workload scenario (Chord, Pastry, epidemic gossip, BitTorrent-style
dissemination) runs through the same pipeline: build the substrate of the
selected *testbed* (:mod:`repro.testbeds` — transit-stub by default, or
cluster / planetlab / mixed), register one splayd per host with a (possibly
sharded) controller, submit the job, replay an optional churn script and/or
availability trace, drive a measured workload once the system has
re-converged, and emit a deterministic report.  This module holds that
pipeline so the per-workload modules only contain what is genuinely
different — the application itself and its workload driver.

Everything is keyed off one root seed: topology, placement, join staggering,
churn victim selection and the workload all draw from deterministic
substreams, so a given configuration always produces the same report (and
the same ``report_digest``).  The digest excludes the kernel choice and the
control-plane sections, so it is also identical across ``--kernel`` and
``--ctl-shards`` settings — the scale-out knobs must never change workload
results.

Public entry points: :func:`deploy` (+ :class:`Deployment`),
:func:`scaled_windows` / :func:`scaled_ops` (duration presets),
:func:`lookup_stream` / :func:`drain` (drivers), and
:func:`base_report` / :func:`summarise` / :func:`report_digest` /
:func:`write_cdf` (reporting).
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
import sys
import time
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.core.jobs import Job, JobSpec
from repro.net.network import Network
from repro.runtime.controller import Controller
from repro.runtime.splayd import Splayd, SplaydLimits
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.testbeds import get_testbed

#: the flagship churn timeline shared by the Chord/Pastry/gossip scenarios:
#: a crash burst, a continuous-replacement window, then a join wave — times
#: are relative to job start
FLAGSHIP_CHURN_SCRIPT = """\
at 150s crash 10%
from 180s to 300s every 30s replace 5%
at 330s join 5
"""

#: hosts are laid out one per /24 inside consecutive /16s; blocks beyond
#: ``10.255.0.0/16`` roll over into the next first octet (11, 12, ...)
_HOSTS_PER_BLOCK = 65536
_MAX_FIRST_OCTET = 126  # stop before 127.0.0.0/8 (loopback)
MAX_HOSTS = (_MAX_FIRST_OCTET - 10 + 1) * _HOSTS_PER_BLOCK


@dataclass
class OpResult:
    """Outcome of one measured operation (lookup, broadcast, download)."""

    key: int
    started_at: float
    latency: float
    hops: int
    completed: bool
    correct: bool


#: historical name, kept for existing imports
LookupResult = OpResult


def host_ips(count: int) -> List[str]:
    """Deterministic host addresses: one per /24, rolling over across /16s.

    The first 65536 hosts live in ``10.0.0.0/8`` (``10.a.b.1``); each further
    block of 65536 rolls over into the next first octet (``11.a.b.1``, ...).
    Raises a clear :class:`ValueError` once the address plan is exhausted
    instead of silently reusing addresses.
    """
    if count > MAX_HOSTS:
        raise ValueError(
            f"cannot lay out {count} hosts: the address plan supports at most "
            f"{MAX_HOSTS} (one /24 per host, first octets 10..{_MAX_FIRST_OCTET})")
    ips = []
    for i in range(count):
        first = 10 + i // _HOSTS_PER_BLOCK
        rest = i % _HOSTS_PER_BLOCK
        # Interned: these strings are dict keys in the network/bandwidth/
        # latency maps and appear in every NodeRef — intern once so lookups
        # are pointer comparisons and each IP is stored a single time.
        ips.append(sys.intern(f"{first}.{rest // 256}.{rest % 256}.1"))
    return ips


# ------------------------------------------------------------------ summaries
def percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def summarise(results: List[OpResult]) -> dict:
    """Aggregate a result list into the report's standard summary block."""
    issued = len(results)
    completed = [r for r in results if r.completed]
    correct = [r for r in results if r.correct]
    latencies = [r.latency for r in completed]
    hops = [r.hops for r in completed]
    return {
        "issued": issued,
        "completed": len(completed),
        "correct": len(correct),
        "success_rate": (len(correct) / issued) if issued else 0.0,
        "latency_mean_ms": 1000.0 * (sum(latencies) / len(latencies)) if latencies else 0.0,
        "latency_p50_ms": 1000.0 * percentile(latencies, 0.50),
        "latency_p95_ms": 1000.0 * percentile(latencies, 0.95),
        "latency_max_ms": 1000.0 * (max(latencies) if latencies else 0.0),
        "hops_mean": (sum(hops) / len(hops)) if hops else 0.0,
        "hops_max": max(hops) if hops else 0,
    }


#: report keys that describe *how* the experiment was executed rather than
#: what the workload did — excluded from the digest so results can be
#: asserted identical across kernels and controller shard counts, and so
#: the default-testbed digest is unchanged from the pre-testbeds era (the
#: environment's *effects* still show up in every digest-relevant section)
DIGEST_EXCLUDED_KEYS = frozenset({"kernel", "ctl_shards", "control_plane",
                                  "testbed", "sanitizer",
                                  "metrics", "trace", "profile",
                                  "flight_recorder", "bw_alloc",
                                  "gc", "phase_wall"})


def deterministic_report_view(report: dict) -> dict:
    """The report minus its :data:`DIGEST_EXCLUDED_KEYS` sections.

    What is left must be byte-identical for the same seed whatever the
    execution mechanics look like — kernel choice, shard count,
    observability flags, GC policy, wall-clock phase attribution.
    """
    return {k: v for k, v in report.items() if k not in DIGEST_EXCLUDED_KEYS}


def report_digest(report: dict) -> str:
    """Seed-stable digest of a scenario report.

    Execution-mechanics keys (:data:`DIGEST_EXCLUDED_KEYS`: the kernel
    choice, the shard count and the per-shard/collector stats) are excluded:
    the digest asserts *workload-level* equality, which must hold whatever
    the control plane looks like.
    """
    data = deterministic_report_view(report)
    encoded = json.dumps(data, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:16]


def write_cdf(path: str, latencies_ms: List[float]) -> int:
    """Write a ``(latency_ms, fraction)`` CSV — the paper's Figures 7-13 shape.

    ``fraction`` is the empirical CDF: the share of samples at or below each
    latency.  Returns the number of samples written.
    """
    ordered = sorted(latencies_ms)
    total = len(ordered)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["latency_ms", "fraction"])
        for index, value in enumerate(ordered, start=1):
            writer.writerow([round(value, 3), round(index / total, 6)])
    return total


# ----------------------------------------------------------------- deployment
@dataclass
class Deployment:
    """Everything a workload driver needs after the job is running."""

    sim: Simulator
    network: Network
    #: the emulated topology object, when the testbed has one (``None`` for
    #: model-only testbeds such as ``cluster`` and ``planetlab``)
    topology: Optional[object]
    controller: Controller
    job: Job
    nodes: int
    host_count: int
    seed: int
    kernel: str
    ctl_shards: int
    #: name of the testbed preset the substrate was built from
    testbed: str
    #: the report's ``topology`` entry (``topology.describe()`` on
    #: transit-stub, the preset's own description dict otherwise)
    testbed_description: dict
    join_window: float
    settle: float
    #: end of the deployment warm-up phase (joins done + grace period)
    warmup_end: float
    #: time of the last churn action (== warmup_end when churn is off)
    churn_end: float
    #: when the measured workload may start (churn_end + settle)
    measure_start: float
    #: runtime sanitizer (``--sanitize``), or ``None`` when disabled
    sanitizer: Optional[object] = None
    #: observability handle (``--metrics``/``--trace-out``/``--profile``,
    #: also installed under ``--sanitize`` for the flight recorder), or None
    observability: Optional[object] = None
    #: destination file for the Chrome trace-event JSON, or ``None``
    trace_out: Optional[str] = None
    #: bandwidth allocator selected with ``--bw-alloc``
    bw_alloc: str = "max-min"
    #: ``True`` when ``--bw-global`` forced brute-force recomputation
    bw_global: bool = False
    #: GC discipline (:mod:`repro.sim.gcpolicy`), or ``None`` for ``off``
    gc_policy: Optional[object] = None
    #: wall seconds per phase — ``deploy`` (substrate build + job start),
    #: ``run`` (drain slices before ``measure_start``: joins, churn,
    #: settling) and ``drain`` (slices from ``measure_start`` on: the
    #: measured workload).  Filled by :func:`deploy` and :func:`drain`;
    #: digest-excluded ``phase_wall`` report section.
    phase_wall: Optional[dict] = None


def scaled_windows(nodes: int, join_window: Optional[float],
                   settle: Optional[float], duration: str = "full") -> tuple:
    """Default join/settle windows, scaled with ring size and duration preset.

    ``duration="short"`` is the CI smoke preset: proportionally shorter
    windows so a 20-node deployment completes in a couple of wall seconds.
    """
    if duration not in ("short", "full"):
        raise ValueError(f"unknown duration preset: {duration!r}")
    if join_window is None:
        join_window = (max(20.0, 0.4 * nodes) if duration == "short"
                       else max(60.0, 0.8 * nodes))
    if settle is None:
        settle = (max(30.0, 0.3 * nodes) if duration == "short"
                  else max(90.0, 0.6 * nodes))
    return join_window, settle


def scaled_ops(ops: int, duration: str) -> int:
    """Measured-operation count under a duration preset (short = 1/4, min 12)."""
    if duration == "short":
        return max(12, ops // 4)
    return ops


def deploy(name: str, app_factory: Callable, nodes: int, hosts: Optional[int] = None,
           seed: int = 0, kernel: str = "wheel", churn_script: Optional[str] = None,
           churn_trace: Optional[str] = None, testbed: str = "transit-stub",
           options: Optional[dict] = None, base_port: int = 20000,
           join_window: float = 60.0, settle: float = 90.0,
           warmup_grace: float = 60.0, ctl_shards: int = 1,
           sanitize: bool = False, metrics: bool = False,
           trace_out: Optional[str] = None, profile: bool = False,
           log_level: str = "INFO", bw_alloc: str = "max-min",
           bw_global: bool = False, gc_policy: str = "off",
           store_caches: bool = True) -> Deployment:
    """Build the substrate, register daemons, submit and start the job.

    ``testbed`` names the environment preset (:mod:`repro.testbeds`) the
    substrate is built from — the default ``transit-stub`` is the paper's
    ModelNet configuration: a transit-stub topology with 10 Mbps access
    links and hosts round-robined onto stub nodes.  Whatever the testbed,
    one splayd per host is registered with enough instance slots for the
    deployment plus churn headroom.  ``churn_script`` replays instance- and
    host-level churn directives; ``churn_trace`` replays an Overnet-style
    availability trace as host-level fail/recover churn (both may be given).
    ``ctl_shards`` selects how many controller front-ends share the job
    store (the paper's several-splayctl deployment); workload results are
    identical for any value.  ``sanitize`` installs the runtime sanitizer
    (:mod:`repro.sim.sanitizer`): observation-only invariant checks whose
    findings land in the report's digest-excluded ``sanitizer`` section.
    ``metrics`` / ``trace_out`` / ``profile`` enable the observability plane
    (:mod:`repro.obs`): sim-time metrics aggregated per job, causal spans
    exported as Chrome trace-event JSON, and the wall-clock kernel profiler.
    All of it is observation-only and digest-excluded, so every flag
    combination yields byte-identical report digests.  ``log_level`` sets
    the job's minimum log severity (the paper's controller-set verbosity).
    ``bw_alloc`` selects the flow-level bandwidth allocation strategy
    (:mod:`repro.net.bwalloc`) and ``bw_global`` disables the incremental
    connected-component recomputation (brute-force full recompute on every
    flow change) — for the default ``max-min`` the two recomputation modes
    are bit-identical, so only the allocator *choice* can move digests.
    ``gc_policy`` selects the deployment's garbage-collection discipline
    (:mod:`repro.sim.gcpolicy`: ``off`` / ``tuned`` / ``manual``) and
    ``store_caches`` is the kill switch for the controller store's memoized
    host/placement views — both are pure execution mechanics, asserted
    digest-neutral by tests.
    """
    wall_started = time.perf_counter()  # det: ignore[DET102] -- phase-wall attribution, digest-excluded
    policy = None
    if gc_policy != "off":
        from repro.sim.gcpolicy import GCPolicy
        policy = GCPolicy(gc_policy).engage()
    sim = Simulator(seed, kernel=kernel)
    sim._gcpolicy = policy
    sanitizer = None
    if sanitize:
        from repro.sim.sanitizer import Sanitizer
        sanitizer = Sanitizer(sim).install()
    observability = None
    if metrics or trace_out is not None or profile or sanitize:
        from repro.obs import Observability
        observability = Observability(sim, metrics=metrics,
                                      tracing=trace_out is not None,
                                      profile=profile).install()
        if sanitizer is not None:
            # Violation reports pick up the last-K ring entries.
            sanitizer.recorder = observability.recorder
    testbed_spec = get_testbed(testbed)
    host_count = hosts if hosts is not None else testbed_spec.default_hosts(nodes)
    ips = host_ips(host_count)

    built = testbed_spec.build(sim, ips, seed)
    network = built.network
    network.bandwidth.configure(allocator=bw_alloc, incremental=not bw_global)
    if sanitizer is not None:
        sanitizer.watch_network(network)

    if policy is not None and observability is not None:
        # Explicit-collect pauses show up as a profiler site (--profile).
        policy.profiler = observability.profiler
    controller = Controller(sim, network, seed=seed, shards=ctl_shards,
                            store_caches=store_caches)
    slots = max(2, math.ceil(nodes / host_count) + 2)
    for ip in ips:
        controller.register_daemon(
            Splayd(sim, network, ip, SplaydLimits(max_instances=slots)))

    spec = JobSpec(
        name=name,
        app_factory=app_factory,
        instances=nodes,
        base_port=base_port,
        log_level=log_level,
        log_max_bytes=256_000,
        churn_script=churn_script,
        churn_trace=churn_trace,
        options={**(options or {}), "join_window": join_window},
    )
    job = controller.submit(spec)
    controller.start(job)

    warmup_end = join_window + warmup_grace
    churn_end = warmup_end
    # The churn manager the shard just built holds the combined (script +
    # trace) action list — the single source of truth for when churn ends.
    manager = controller.churn_managers.get(job.job_id)
    if manager is not None and manager.actions:
        churn_end = max(warmup_end, max(a.time for a in manager.actions))
    if policy is not None:
        # Everything alive now survives the whole run — freeze it out of
        # every future collection (and go fully manual if asked).
        policy.after_deploy()
    phase_wall = {"deploy": time.perf_counter() - wall_started,  # det: ignore[DET102] -- phase-wall attribution, digest-excluded
                  "run": 0.0, "drain": 0.0}
    return Deployment(sim=sim, network=network, topology=built.topology,
                      controller=controller, job=job, nodes=nodes,
                      host_count=host_count, seed=seed, kernel=kernel,
                      ctl_shards=ctl_shards, testbed=testbed,
                      testbed_description=built.description,
                      join_window=join_window, settle=settle,
                      warmup_end=warmup_end, churn_end=churn_end,
                      measure_start=churn_end + settle, sanitizer=sanitizer,
                      observability=observability, trace_out=trace_out,
                      bw_alloc=bw_alloc, bw_global=bw_global,
                      gc_policy=policy, phase_wall=phase_wall)


# -------------------------------------------------------------------- drivers
def joined_apps(job: Job) -> list:
    """Live application objects that consider themselves joined, in id order."""
    return [i.app for i in job.live_instances()
            if i.app is not None and getattr(i.app, "joined", False)]


def lookup_stream(sim: Simulator, job: Job, count: int, spacing: float, bits: int,
                  rng, results: List[OpResult],
                  expected_owner: Callable[[Job, int], object],
                  failure: type = Exception) -> Generator:
    """Coroutine issuing ``count`` key lookups from random live nodes.

    The application object must expose ``joined`` and a generator
    ``lookup(key) -> (owner, hops)`` raising ``failure`` on routing failure;
    ``expected_owner(job, key)`` supplies the ground truth against which the
    returned owner is checked.
    """
    for _ in range(count):
        apps = joined_apps(job)
        if not apps:
            yield spacing
            continue
        origin = rng.choice(sorted(apps, key=lambda a: (a.me.ip, a.me.port)))
        key = rng.randrange(1 << bits)
        started = sim.now
        try:
            owner, hops = yield from origin.lookup(key)
        except failure:
            results.append(OpResult(key, started, sim.now - started, 0, False, False))
        except Exception:  # noqa: BLE001 - origin died mid-lookup (churn)
            results.append(OpResult(key, started, sim.now - started, 0, False, False))
        else:
            expected = expected_owner(job, key)
            correct = (expected is not None and owner.ip == expected.ip
                       and owner.port == expected.port)
            results.append(OpResult(key, started, sim.now - started, hops, True, correct))
        yield spacing


def drain(sim: Simulator, driver: Process, hard_cap: float, step: float = 60.0,
          deployment: Optional[Deployment] = None) -> None:
    """Run the simulation until ``driver`` finishes (bounded by ``hard_cap``).

    The loop's ``step``-sized slices are deterministic sim-time points: the
    manual GC policy runs its explicit collects between them (never inside
    event execution), and when ``deployment`` is given each slice's wall
    time is attributed to the ``run`` phase (slices starting before
    ``measure_start``: joins, churn, settling) or the ``drain`` phase (the
    measured workload) — attribution only observes the slices the loop
    already made, so execution and digests are untouched.

    On a deadline overrun (the driver still pending at ``hard_cap``) the
    flight recorder — when installed — dumps the last ring entries to
    stderr, so a hung workload leaves its final dispatches behind.
    """
    mark = deployment.measure_start if deployment is not None else 0.0
    walls = deployment.phase_wall if deployment is not None else None
    policy = sim._gcpolicy
    while not driver.done.done() and sim.now < hard_cap:
        slice_start = sim.now
        wall_started = time.perf_counter()  # det: ignore[DET102] -- phase-wall attribution, digest-excluded
        sim.run(until=min(hard_cap, sim.now + step))
        if walls is not None:
            phase = "run" if slice_start < mark else "drain"
            walls[phase] += time.perf_counter() - wall_started  # det: ignore[DET102] -- phase-wall attribution, digest-excluded
        if policy is not None:
            policy.checkpoint()
    if not driver.done.done():
        obs = getattr(sim, "_obs", None)
        if obs is not None:
            header = (f"flight recorder: driver still pending at the "
                      f"t={hard_cap:.0f}s deadline")
            for line in obs.ring_lines(header=header):
                print(line, file=sys.stderr)


# --------------------------------------------------------------------- report
def rpc_totals(job: Job) -> dict:
    """RPC counters aggregated over instances alive at the end of the run."""
    totals = {"calls_sent": 0, "calls_received": 0, "retries": 0,
              "timeouts": 0, "remote_errors": 0, "send_failures": 0}
    for instance in job.live_instances():
        stats = instance.rpc.stats
        for key in totals:
            totals[key] += getattr(stats, key)
    return totals


def base_report(scenario: str, deployment: Deployment, bits: Optional[int] = None) -> dict:
    """The report skeleton shared by every workload scenario."""
    sim, network, job = deployment.sim, deployment.network, deployment.job
    controller = deployment.controller
    report = {
        "scenario": scenario,
        "seed": deployment.seed,
        "kernel": deployment.kernel,
        "ctl_shards": deployment.ctl_shards,
        "testbed": deployment.testbed,
        "nodes": deployment.nodes,
        "hosts": deployment.host_count,
        "bits": bits,
        "topology": deployment.testbed_description,
        "virtual_time": sim.now,
        "events_executed": sim.executed_events,
        "job": controller.job_status(job),
        "churn": None,
        "under_churn": None,
        "measured": None,
        "network": {
            "messages_sent": network.stats.messages_sent,
            "messages_delivered": network.stats.messages_delivered,
            "messages_dropped": network.stats.messages_dropped,
            "bytes_sent": network.stats.bytes_sent,
        },
        "rpc": rpc_totals(job),
        # Digest-excluded (DIGEST_EXCLUDED_KEYS): the allocator *choice* is
        # execution configuration; its effects land in the digest-relevant
        # sections above (and for max-min are pinned byte-identical).
        "bw_alloc": {
            "allocator": network.bandwidth.allocator_name,
            "incremental": network.bandwidth.incremental,
            "reallocations": network.bandwidth.reallocations,
            "flows_allocated": network.bandwidth.flows_allocated,
            "by_class": network.bandwidth.class_stats(),
        },
        "log_records_collected": len(controller.job_logs(job)),
        "log_records_dropped": job.stats.log_records_dropped,
        "control_plane": controller.control_plane_status(),
    }
    if deployment.phase_wall is not None:
        # Digest-excluded: wall-clock attribution (deploy vs run vs drain),
        # the scale bench's per-phase columns.
        report["phase_wall"] = {phase: round(seconds, 3)
                                for phase, seconds in deployment.phase_wall.items()}
    policy = deployment.gc_policy
    if policy is not None:
        # Restore the interpreter's ambient GC configuration before
        # reporting; the section (digest-excluded) records what the policy
        # did — freeze size, explicit collects, pause wall.
        policy.disengage()
        report["gc"] = policy.section()
    if deployment.sanitizer is not None:
        # Digest-excluded (like kernel/control_plane): the sanitizer reports
        # on execution mechanics, and turning it on must not change results.
        report["sanitizer"] = deployment.sanitizer.summary()
    obs = deployment.observability
    if obs is not None:
        # All digest-excluded for the same reason: observation never feeds
        # back into the workload, and the digest asserts exactly that.
        if obs.metrics_enabled:
            report["metrics"] = obs.metrics_section(deployment)
        if obs.tracer is not None:
            report["trace"] = obs.trace_section()
            if deployment.trace_out is not None:
                report["trace"]["written_to"] = deployment.trace_out
                report["trace"]["spans_written"] = obs.tracer.write(
                    deployment.trace_out)
        if obs.profiler is not None:
            report["profile"] = obs.profile_section()
        # The ring is always on while the handle is installed: failure
        # paths (min-success, sanitizer, deadline) print it for context.
        report["flight_recorder"] = obs.ring_lines()
    churn_manager = controller.churn_managers.get(job.job_id)
    if churn_manager is not None:
        stats = churn_manager.stats
        report["churn"] = {
            "actions_applied": stats.actions_applied,
            "joined": stats.instances_joined,
            "left": stats.instances_left,
            "crashed": stats.instances_crashed,
        }
        if stats.hosts_failed or stats.hosts_recovered:
            # Conditional for digest stability: script-only churn reports
            # keep their pre-testbeds shape byte for byte.
            report["churn"]["hosts_failed"] = stats.hosts_failed
            report["churn"]["hosts_recovered"] = stats.hosts_recovered
    return report
