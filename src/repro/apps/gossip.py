"""Epidemic dissemination: Cyclon membership + anti-entropy broadcast.

The paper's evaluation includes an epidemic diffusion protocol; this module
reproduces that workload class with the two classic layers:

* **Cyclon-style membership**: each node keeps a small partial view of aged
  peer descriptors and periodically *shuffles* a subset with the oldest peer
  in its view, so views stay fresh and uniformly random even under churn.
* **Epidemic broadcast**: a published message is eagerly *pushed* to
  ``fanout`` random view peers (infect-and-die: a node forwards only on
  first receipt), and a periodic *anti-entropy* exchange pulls any message
  ids a random peer has that we don't — push gets the message to almost
  everyone in O(log N) rounds, anti-entropy closes the stragglers, so
  delivery converges to 100% even across churned-in nodes.

The scenario measures, per broadcast, the delivery ratio over live members
and the time/hop count ("rounds") to full coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.lib.rpc import RpcError
from repro.net.address import NodeRef
from repro.sim.rng import substream

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.splayd import Instance


@dataclass
class GossipStats:
    """Per-node counters (aggregated by the scenario report)."""

    shuffles_started: int = 0
    shuffles_answered: int = 0
    shuffle_failures: int = 0
    pushes_sent: int = 0
    duplicates_ignored: int = 0
    anti_entropy_rounds: int = 0
    anti_entropy_recovered: int = 0


@dataclass
class DeliveryRecord:
    """When (and how) one message reached this node."""

    received_at: float
    hops: int
    via: str  # "publish" | "push" | "anti-entropy"


class GossipNode:
    """One gossip node, bound to one runtime instance.

    Options: ``view_size`` — Cyclon partial-view capacity; ``shuffle_size``
    — descriptors exchanged per shuffle; ``shuffle_interval`` /
    ``ae_interval`` — membership and anti-entropy periods; ``fanout`` —
    eager-push degree; ``hop_timeout`` — RPC timeout; ``join_window`` —
    joins are staggered uniformly over this many seconds.
    """

    def __init__(self, instance: "Instance", **overrides):
        options = {**instance.options, **overrides}
        self.instance = instance
        self.events = instance.events
        self.rpc = instance.rpc
        self.log = instance.logger
        self.view_size: int = int(options.get("view_size", 8))
        self.shuffle_size: int = int(options.get("shuffle_size", 4))
        self.shuffle_interval: float = float(options.get("shuffle_interval", 4.0))
        self.ae_interval: float = float(options.get("ae_interval", 6.0))
        self.fanout: int = int(options.get("fanout", 3))
        self.hop_timeout: float = float(options.get("hop_timeout", 1.5))
        self.join_window: float = float(options.get("join_window", 30.0))

        self.me = instance.me
        #: Cyclon partial view: peer -> age (incremented every shuffle round)
        self.view: Dict[Tuple[str, int], List] = {}  # key -> [NodeRef, age]
        #: message id -> delivery record
        self.store: Dict[str, DeliveryRecord] = {}
        self.joined = False
        self.stats = GossipStats()
        self._rng = substream(self.events.sim.seed, "gossip",
                              instance.job.job_id, instance.instance_id)

        rpc = self.rpc
        rpc.register("shuffle", self._rpc_shuffle)
        rpc.register("push", self._rpc_push)
        rpc.register("ae_digest", self._rpc_ae_digest)
        rpc.register("ae_fetch", self._rpc_ae_fetch)

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        members = self.instance.job.shared.setdefault("gossip_members", [])
        delay = 0.0
        if members and self.join_window > 0:
            delay = self._rng.uniform(0.0, self.join_window)
        if delay > 0:
            self.events.timer(delay, self._go_live)
        else:
            self._go_live()
        self.instance.context.add_cleanup(
            lambda: members.remove(self.me) if self.me in members else None)

    def _go_live(self) -> None:
        members = self.instance.job.shared["gossip_members"]
        seeds = [m for m in members if m != self.me]
        for seed in self._sample(seeds, min(self.view_size // 2 + 1, len(seeds))):
            self._view_add(seed, age=0)
        self.joined = True
        if self.me not in members:
            members.append(self.me)
        self.events.periodic(self._shuffle, self.shuffle_interval,
                             jitter=self.shuffle_interval * 0.25)
        self.events.periodic(self._anti_entropy, self.ae_interval,
                             jitter=self.ae_interval * 0.25)
        self.log.info(f"gossip node {self.me} live (view={len(self.view)})")

    # ----------------------------------------------------------- membership
    def _shuffle(self) -> Generator:
        """One Cyclon round: exchange descriptor subsets with the oldest peer."""
        if not self.view:
            self._reseed()
            if not self.view:
                return
        self.stats.shuffles_started += 1
        for entry in self.view.values():
            entry[1] += 1
        peer_key = max(self.view, key=lambda k: (self.view[k][1], k))
        peer = self.view[peer_key][0]
        others = [entry for key, entry in sorted(self.view.items()) if key != peer_key]
        sent = self._sample(others, min(self.shuffle_size - 1, len(others)))
        payload = ([{"node": self.me, "age": 0}]
                   + [{"node": entry[0], "age": entry[1]} for entry in sent])
        # The shuffled-out peer leaves the view whatever happens: Cyclon's
        # implicit failure detector (a dead peer never comes back).
        del self.view[peer_key]
        try:
            reply = yield self.rpc.call(peer, "shuffle", payload,
                                        timeout=self.hop_timeout, retries=0)
        except RpcError:
            self.stats.shuffle_failures += 1
            return
        self._merge_view(reply, sent_away=[entry[0] for entry in sent])

    def _rpc_shuffle(self, entries: list) -> list:
        """Answer a shuffle: return our own subset, merge what was offered."""
        self.stats.shuffles_answered += 1
        pool = [entry for _key, entry in sorted(self.view.items())]
        sent = self._sample(pool, min(self.shuffle_size, len(pool)))
        reply = [{"node": entry[0], "age": entry[1]} for entry in sent]
        self._merge_view(entries, sent_away=[entry[0] for entry in sent])
        return reply

    def _merge_view(self, entries: list, sent_away: List[NodeRef]) -> None:
        """Cyclon merge: fill empty slots, then replace what we sent away."""
        replaceable = [(n.ip, n.port) for n in sent_away]
        for item in entries:
            node = NodeRef.coerce(item["node"])
            age = int(item.get("age", 0))
            if node == self.me:
                continue
            key = (node.ip, node.port)
            if key in self.view:
                self.view[key][1] = min(self.view[key][1], age)
                continue
            if len(self.view) < self.view_size:
                self._view_add(node, age)
            elif replaceable:
                self.view.pop(replaceable.pop(0), None)
                self._view_add(node, age)
            else:
                # Replace the oldest descriptor (keeps the view fresh).
                oldest = max(self.view, key=lambda k: (self.view[k][1], k))
                if self.view[oldest][1] > age:
                    del self.view[oldest]
                    self._view_add(node, age)

    def _view_add(self, node: NodeRef, age: int) -> None:
        if node != self.me:
            self.view[(node.ip, node.port)] = [node, age]

    def _reseed(self) -> None:
        """Empty view (every peer churned away): restart from the member list."""
        members = [m for m in self.instance.job.shared.get("gossip_members", [])
                   if m != self.me]
        for seed in self._sample(members, min(3, len(members))):
            self._view_add(seed, age=0)

    def _view_nodes(self) -> List[NodeRef]:
        return [entry[0] for _key, entry in sorted(self.view.items())]

    def _sample(self, pool: list, count: int) -> list:
        if count <= 0 or not pool:
            return []
        return self._rng.sample(pool, min(count, len(pool)))

    # ------------------------------------------------------------- broadcast
    def publish(self, message_id: str) -> None:
        """Inject a new broadcast message at this node."""
        self._deliver(message_id, hops=0, via="publish")

    def _deliver(self, message_id: str, hops: int, via: str) -> bool:
        if message_id in self.store:
            self.stats.duplicates_ignored += 1
            return False
        self.store[message_id] = DeliveryRecord(self.events.sim.now, hops, via)
        for peer in self._sample(self._view_nodes(), self.fanout):
            self.stats.pushes_sent += 1
            self.rpc.a_call(peer, "push", message_id, hops + 1,
                            timeout=self.hop_timeout, retries=0)
        return True

    def _rpc_push(self, message_id: str, hops: int) -> bool:
        return self._deliver(str(message_id), int(hops), via="push")

    # ---------------------------------------------------------- anti-entropy
    def _anti_entropy(self) -> Generator:
        """Pull message ids a random peer has that we don't."""
        peers = self._view_nodes()
        if not peers:
            return
        self.stats.anti_entropy_rounds += 1
        peer = self._rng.choice(peers)
        try:
            digest = yield self.rpc.call(peer, "ae_digest",
                                         timeout=self.hop_timeout, retries=0)
            missing = sorted(set(digest) - set(self.store))
            if not missing:
                return
            found = yield self.rpc.call(peer, "ae_fetch", missing,
                                        timeout=self.hop_timeout, retries=0)
        except RpcError:
            self._note_dead(peer)
            return
        for message_id, hops in sorted(found.items()):
            if self._deliver(str(message_id), int(hops) + 1, via="anti-entropy"):
                self.stats.anti_entropy_recovered += 1

    def _rpc_ae_digest(self) -> List[str]:
        return sorted(self.store)

    def _rpc_ae_fetch(self, message_ids: list) -> Dict[str, int]:
        return {m: self.store[m].hops for m in message_ids if m in self.store}

    def _note_dead(self, node: NodeRef) -> None:
        self.view.pop((node.ip, node.port), None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GossipNode {self.me} view={len(self.view)} store={len(self.store)}>"


def gossip_factory(**options):
    """Build a :class:`JobSpec`-compatible application factory."""

    def _factory(instance: "Instance") -> GossipNode:
        node = GossipNode(instance, **options)
        node.start()
        return node

    return _factory


# ----------------------------------------------------------------- scenario
#: identical timeline to the DHT flagship scripts
from repro.apps.harness import FLAGSHIP_CHURN_SCRIPT as DEFAULT_CHURN_SCRIPT  # noqa: E402


def run_gossip_scenario(nodes: int = 50, hosts: Optional[int] = None, seed: int = 0,
                        churn: bool = False, churn_script: Optional[str] = None,
                        broadcasts: int = 100, spacing: float = 1.0,
                        eval_window: float = 30.0, fanout: int = 3,
                        view_size: int = 8,
                        join_window: Optional[float] = None,
                        settle: Optional[float] = None, kernel: str = "wheel",
                        duration: str = "full", ctl_shards: int = 1,
                        testbed: str = "transit-stub",
                        churn_trace: Optional[str] = None,
                        sanitize: bool = False, metrics: bool = False,
                        trace_out: Optional[str] = None, profile: bool = False,
                        log_level: str = "INFO",
                        bw_alloc: str = "max-min",
                        bw_global: bool = False,
                        gc_policy: str = "tuned",
                        store_caches: bool = True) -> dict:
    """Run the epidemic-broadcast workload and return the report dict.

    ``broadcasts`` messages are published from random live nodes once churn
    has finished and the membership re-converged; each message is evaluated
    ``eval_window`` seconds after the last publication: a broadcast counts
    as *correct* when every live member delivered it, its latency is the
    time to full coverage, and its hop count is the longest push chain.
    """
    from repro.apps import harness
    from repro.sim.process import Process

    join_window, settle = harness.scaled_windows(nodes, join_window, settle, duration)
    broadcasts = harness.scaled_ops(broadcasts, duration)
    script = churn_script if churn_script is not None else (
        DEFAULT_CHURN_SCRIPT if churn else None)
    deployment = harness.deploy(
        "gossip", gossip_factory(), nodes=nodes, hosts=hosts, seed=seed,
        kernel=kernel, churn_script=script, churn_trace=churn_trace,
        testbed=testbed, options={"fanout": fanout, "view_size": view_size},
        join_window=join_window, settle=settle, ctl_shards=ctl_shards,
        sanitize=sanitize, metrics=metrics, trace_out=trace_out,
        profile=profile, log_level=log_level, bw_alloc=bw_alloc,
        bw_global=bw_global, gc_policy=gc_policy, store_caches=store_caches)
    sim, job = deployment.sim, deployment.job

    published: List[Tuple[str, float]] = []
    rng = substream(seed, "workload")

    def _publish_stream() -> Generator:
        for index in range(broadcasts):
            apps = harness.joined_apps(job)
            if not apps:
                yield spacing
                continue
            origin = rng.choice(sorted(apps, key=lambda a: (a.me.ip, a.me.port)))
            message_id = f"m{index:05d}"
            origin.publish(message_id)
            published.append((message_id, sim.now))
            yield spacing

    driver = Process(sim, _publish_stream(), name="workload.publish")
    driver.start(delay=deployment.measure_start)
    horizon = deployment.measure_start + broadcasts * spacing + eval_window
    harness.drain(sim, driver, horizon, deployment=deployment)
    sim.run(until=horizon)

    # Evaluate coverage over the members that are live (and joined) now —
    # churn ends before the measured phase, so this is the stable population.
    apps = harness.joined_apps(job)
    results: List[harness.OpResult] = []
    delivery_latencies_ms: List[float] = []
    ratios: List[float] = []
    for index, (message_id, published_at) in enumerate(published):
        records = [a.store[message_id] for a in apps if message_id in a.store]
        ratio = len(records) / len(apps) if apps else 0.0
        ratios.append(ratio)
        latencies = [r.received_at - published_at for r in records]
        delivery_latencies_ms.extend(1000.0 * value for value in latencies)
        covered = bool(apps) and len(records) == len(apps)
        results.append(harness.OpResult(
            key=index, started_at=published_at,
            latency=max(latencies) if latencies else 0.0,
            hops=max((r.hops for r in records), default=0),
            completed=bool(records), correct=covered))

    report = harness.base_report("gossip", deployment)
    report["measured"] = harness.summarise(results)
    by_via = {"publish": 0, "push": 0, "anti-entropy": 0}
    for app in apps:
        for record in app.store.values():
            by_via[record.via] = by_via.get(record.via, 0) + 1
    report["workload"] = {
        "broadcasts": len(published),
        "delivery_ratio_mean": (sum(ratios) / len(ratios)) if ratios else 0.0,
        "delivery_ratio_min": min(ratios) if ratios else 0.0,
        "deliveries_by_via": by_via,
        "fanout": fanout,
        "view_size": view_size,
    }
    report["cdf_samples_ms"] = sorted(round(v, 3) for v in delivery_latencies_ms)
    return report


def _register() -> None:
    from repro.apps import registry

    def _add_arguments(parser) -> None:
        parser.add_argument("--broadcasts", type=int, default=100,
                            help="measured broadcasts once membership re-converges")
        parser.add_argument("--fanout", type=int, default=3,
                            help="eager-push degree per fresh delivery")
        parser.add_argument("--view-size", type=int, default=8,
                            help="Cyclon partial-view capacity")

    registry.register(registry.ScenarioSpec(
        name="gossip",
        help="Cyclon membership + anti-entropy epidemic broadcast",
        runner=run_gossip_scenario,
        default_churn_script=DEFAULT_CHURN_SCRIPT,
        add_arguments=_add_arguments,
        make_kwargs=lambda args: {"broadcasts": args.broadcasts,
                                  "fanout": args.fanout,
                                  "view_size": args.view_size},
        ops_param="broadcasts",
        ops_label="broadcast",
        default_min_success=0.95,
        extra_report_lines=["delivery_ratio_mean", "delivery_ratio_min"],
    ))


_register()
