"""Chord on the SPLAY runtime (the paper's Listing 3, grown fault-tolerant).

"We have implemented Chord for SPLAY ... the implementation is remarkably
compact and close to the pseudo-code."  This module keeps that structure —
``join``, ``stabilize``, ``notify``, ``fix_fingers`` as periodic coroutines
over the RPC library — and adds the successor-list fault tolerance the
paper's churn experiments rely on.

Every remote interaction goes through ``instance.rpc`` (and therefore the
restricted socket): the application never touches the network object.
Lookups are *iterative*: the querying node walks the ring one hop at a time
via the ``step`` RPC, which keeps per-hop timeouts small and lets the walker
route around nodes that died mid-lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from repro.lib.ring import between, hash_key, ring_add, ring_distance
from repro.lib.rpc import RpcError
from repro.net.address import NodeRef
from repro.sim.rng import substream

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.splayd import Instance


class LookupFailed(Exception):
    """A lookup exhausted its hop budget or every route attempt failed."""


@dataclass
class ChordStats:
    """Per-node counters (aggregated by the scenario report)."""

    lookups_started: int = 0
    lookups_completed: int = 0
    lookups_failed: int = 0
    hops_total: int = 0
    join_attempts: int = 0
    stabilize_rounds: int = 0
    dead_nodes_noticed: int = 0


class ChordNode:
    """One Chord node, bound to one runtime instance.

    Options (from ``JobSpec.options`` or keyword overrides): ``bits`` —
    identifier width; ``stabilize_interval`` / ``fix_fingers_interval`` /
    ``check_predecessor_interval`` — maintenance periods; ``successor_list_size``
    — fault-tolerance depth; ``hop_timeout`` / ``hop_retries`` — per-hop RPC
    settings; ``join_window`` — joins are staggered uniformly over this many
    seconds to avoid a thundering herd at deployment.
    """

    def __init__(self, instance: "Instance", **overrides):
        options = {**instance.options, **overrides}
        self.instance = instance
        self.events = instance.events
        self.rpc = instance.rpc
        self.log = instance.logger
        self.bits: int = int(options.get("bits", 32))
        self.stabilize_interval: float = float(options.get("stabilize_interval", 5.0))
        self.fix_fingers_interval: float = float(options.get("fix_fingers_interval", 4.0))
        self.check_predecessor_interval: float = float(
            options.get("check_predecessor_interval", 11.0))
        self.successor_list_size: int = int(options.get("successor_list_size", 6))
        self.hop_timeout: float = float(options.get("hop_timeout", 1.5))
        self.hop_retries: int = int(options.get("hop_retries", 1))
        self.join_window: float = float(options.get("join_window", 30.0))
        self.max_hops: int = int(options.get("max_hops", 3 * self.bits))

        self.me = instance.me.with_id(
            hash_key(f"{instance.me.ip}:{instance.me.port}", self.bits))
        self.predecessor: Optional[NodeRef] = None
        self.successors: List[NodeRef] = [self.me]
        self.fingers: List[Optional[NodeRef]] = [None] * self.bits
        self._next_finger = 0
        self.joined = False
        self.stats = ChordStats()
        self._rng = substream(self.events.sim.seed, "chord",
                              instance.job.job_id, instance.instance_id)

        rpc = self.rpc
        rpc.register("step", self._rpc_step)
        rpc.register("claim", self._rpc_claim)
        rpc.register("find_successor", self._rpc_find_successor)
        rpc.register("get_predecessor", self._rpc_get_predecessor)
        rpc.register("successor_list", self._rpc_successor_list)
        rpc.register("notify", self._rpc_notify)

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Create the ring (first node of the job) or schedule a join."""
        members = self.instance.job.shared.setdefault("chord_members", [])
        if not self.instance.job.shared.get("chord_created"):
            # First instance of the job bootstraps the ring immediately.
            self.instance.job.shared["chord_created"] = True
            self._become_member()
        else:
            delay = self._rng.uniform(0.0, self.join_window) if self.join_window > 0 else 0.0
            self.events.thread(self._join_main, name=f"{self.instance.context.name}.join",
                               delay=delay)
        # Keep the shared member registry honest on teardown.
        self.instance.context.add_cleanup(
            lambda: members.remove(self.me) if self.me in members else None)

    def _become_member(self) -> None:
        self.joined = True
        members = self.instance.job.shared["chord_members"]
        if self.me not in members:
            members.append(self.me)
        self.events.periodic(self._stabilize, self.stabilize_interval,
                             jitter=self.stabilize_interval * 0.25)
        self.events.periodic(self._fix_fingers, self.fix_fingers_interval,
                             jitter=self.fix_fingers_interval * 0.25)
        self.events.periodic(self._check_predecessor, self.check_predecessor_interval,
                             jitter=self.check_predecessor_interval * 0.25)
        self.log.info(f"node {self.me} up (id={self.me.id})")

    def _join_main(self) -> Generator:
        """Join coroutine: contact a member, learn the successor, go live."""
        for attempt in range(1, 16):
            self.stats.join_attempts += 1
            bootstrap = self._pick_bootstrap()
            if bootstrap is None:
                yield 2.0
                continue
            try:
                successor = yield self.rpc.call(
                    bootstrap, "find_successor", self.me.id,
                    timeout=self.hop_timeout * 8, retries=1)
            except RpcError as exc:
                self.log.debug(f"join attempt {attempt} via {bootstrap} failed: {exc}")
                yield 1.0 + self._rng.uniform(0.0, 1.0)
                continue
            successor = NodeRef.coerce(successor)
            self.successors = [successor]
            self.fingers[0] = successor
            self._become_member()
            # Announce ourselves right away instead of waiting a full period.
            self.rpc.a_call(successor, "notify", self.me,
                            timeout=self.hop_timeout, retries=0)
            return
        self.log.error(f"node {self.me} could not join, giving up")
        self.events.exit()

    def _pick_bootstrap(self) -> Optional[NodeRef]:
        """A live ring member to join through (the controller's node list)."""
        members = [m for m in self.instance.job.shared.get("chord_members", [])
                   if m != self.me]
        if not members:
            return None
        return self._rng.choice(members)

    # ------------------------------------------------------------ RPC handlers
    def _rpc_step(self, key: int, avoid: Optional[list] = None) -> dict:
        """One hop of an iterative lookup: done with the owner, or forward."""
        avoided = set(avoid or ())
        successor = self._current_successor()
        if between(key, self.me.id, successor.id, include_high=True):
            return {"done": True, "node": successor}
        nxt = self._closest_preceding(key, avoided)
        return {"done": False, "node": nxt}

    def _rpc_claim(self, key: int) -> dict:
        """Ownership check: is ``key`` in ``(predecessor, me]``?

        A node that recently joined between a stale router and the key is
        invisible to that router's ``step``; its *successor* knows about it
        through ``notify``, so asking the claimed owner to confirm (and
        bounce to its predecessor otherwise) repairs stale-skip errors.
        """
        predecessor = self.predecessor
        if (predecessor is None or predecessor == self.me
                or between(key, predecessor.id, self.me.id, include_high=True)):
            return {"mine": True}
        return {"mine": False, "node": predecessor}

    def _rpc_find_successor(self, key: int) -> Generator:
        """Full lookup on behalf of a caller (used by joins)."""
        owner, _hops = yield from self.lookup(int(key))
        return owner

    def _rpc_get_predecessor(self) -> Optional[NodeRef]:
        return self.predecessor

    def _rpc_successor_list(self) -> List[NodeRef]:
        return list(self.successors)

    def _rpc_notify(self, node) -> bool:
        node = NodeRef.coerce(node)
        if node == self.me:
            return False
        if self.predecessor is None or between(node.id, self.predecessor.id, self.me.id):
            self.predecessor = node
            return True
        return False

    # ------------------------------------------------------------ maintenance
    def _stabilize(self) -> Generator:
        """Verify the successor, adopt a closer one, refresh the successor list."""
        self.stats.stabilize_rounds += 1
        successor = self._first_live_successor()
        if successor is None:
            yield from self._rejoin_ring()
            return
        try:
            # Walk the predecessor chain back towards us (bounded): a single
            # round can then repair a successor pointer that overshot by many
            # nodes, instead of converging one node per stabilization period.
            for _step in range(8):
                if successor == self.me:
                    candidate = self.predecessor
                else:
                    candidate = yield self.rpc.call(successor, "get_predecessor",
                                                    timeout=self.hop_timeout,
                                                    retries=self.hop_retries)
                if candidate is None:
                    break
                candidate = NodeRef.coerce(candidate)
                if candidate == self.me or candidate == successor:
                    break
                if not between(candidate.id, self.me.id, successor.id):
                    break
                alive = yield self.rpc.ping(candidate, timeout=self.hop_timeout)
                if not alive:
                    break
                successor = candidate
            if successor != self.me:
                remote_list = yield self.rpc.call(successor, "successor_list",
                                                  timeout=self.hop_timeout,
                                                  retries=self.hop_retries)
                chain = [successor] + [NodeRef.coerce(n) for n in remote_list
                                       if NodeRef.coerce(n) != self.me]
                self.successors = _dedupe(chain)[: self.successor_list_size]
                self.fingers[0] = self.successors[0]
                self.rpc.a_call(successor, "notify", self.me,
                                timeout=self.hop_timeout, retries=0)
        except RpcError:
            self._note_dead(successor)

    def _rejoin_ring(self) -> Generator:
        """Every successor died: fall back to the member list and rejoin."""
        bootstrap = self._pick_bootstrap()
        if bootstrap is None:
            self.successors = [self.me]
            return
        try:
            successor = yield self.rpc.call(bootstrap, "find_successor", self.me.id,
                                            timeout=self.hop_timeout * 8, retries=1)
            successor = NodeRef.coerce(successor)
            self.successors = [successor] if successor != self.me else [self.me]
            self.fingers[0] = self.successors[0]
        except RpcError:
            self.successors = [self.me]

    def _fix_fingers(self) -> Generator:
        """Refresh one finger per round (round-robin over the table)."""
        self._next_finger = (self._next_finger + 1) % self.bits
        start = ring_add(self.me.id, 1 << self._next_finger, self.bits)
        try:
            owner, _hops = yield from self.lookup(start)
            self.fingers[self._next_finger] = owner
        except LookupFailed:
            self.fingers[self._next_finger] = None

    def _check_predecessor(self) -> Generator:
        """Drop the predecessor pointer if it stopped answering pings."""
        predecessor = self.predecessor
        if predecessor is None or predecessor == self.me:
            return
        alive = yield self.rpc.ping(predecessor, timeout=self.hop_timeout)
        if not alive and self.predecessor == predecessor:
            self.predecessor = None
            self.stats.dead_nodes_noticed += 1

    # ---------------------------------------------------------------- lookups
    def lookup(self, key: int) -> Generator:
        """Iteratively find the node owning ``key``.

        Returns ``(owner, hops)``.  Dead hops are added to an ``avoid`` set
        and the walk restarts from the local node, so a lookup survives nodes
        failing underneath it as long as the ring itself stays connected.
        """
        key = key % (1 << self.bits)
        self.stats.lookups_started += 1
        tracer = self.rpc._tracer
        started = self.events.sim.now
        avoid: set[int] = set()
        current = self.me
        hops = 0
        while hops < self.max_hops:
            if current == self.me:
                response = self._rpc_step(key, list(avoid))
            else:
                try:
                    response = yield self.rpc.call(current, "step", key, list(avoid),
                                                   timeout=self.hop_timeout,
                                                   retries=self.hop_retries)
                except RpcError:
                    avoid.add(current.id)
                    self._note_dead(current)
                    current = self.me
                    hops += 1
                    continue
            hops += 1
            node = NodeRef.coerce(response["node"])
            if response["done"]:
                # Confirm ownership with the claimed owner; bounce along its
                # predecessor chain if a recent joiner sits closer to the key.
                owner = node
                confirmed = None
                for _bounce in range(4):
                    if owner == self.me:
                        claim = self._rpc_claim(key)
                    else:
                        try:
                            claim = yield self.rpc.call(owner, "claim", key,
                                                        timeout=self.hop_timeout,
                                                        retries=self.hop_retries)
                        except RpcError:
                            avoid.add(owner.id)
                            self._note_dead(owner)
                            break  # restart the walk from the local node
                    hops += 1
                    if claim["mine"]:
                        confirmed = owner
                        break
                    candidate = NodeRef.coerce(claim["node"])
                    if candidate == owner or candidate.id in avoid:
                        confirmed = owner  # stale bounce; accept the claimer
                        break
                    owner = candidate
                else:
                    confirmed = owner  # bounce budget spent; best known owner
                if confirmed is not None:
                    self.stats.lookups_completed += 1
                    self.stats.hops_total += hops
                    if tracer is not None:
                        # The lookup-level span: per-hop step/claim RPC spans
                        # nest under it on the same host track.
                        tracer.add(self.me.ip, "lookup",
                                   started, self.events.sim.now - started,
                                   cat="lookup",
                                   args={"key": key, "hops": hops})
                    registry = self.rpc._metrics
                    if registry is not None:
                        registry.inc("lookup.completed")
                        registry.observe("lookup.hops", hops)
                    return confirmed, hops
                current = self.me
                continue
            if node == current or (node == self.me and current != self.me):
                # No progress: the remote's best route is itself or bounces
                # back; blacklist the stuck hop and restart locally.
                avoid.add(node.id)
                current = self.me
                continue
            current = node
        self.stats.lookups_failed += 1
        if tracer is not None:
            tracer.add(self.me.ip, "lookup.failed",
                       started, self.events.sim.now - started, cat="lookup",
                       args={"key": key, "hops": hops})
        raise LookupFailed(f"lookup({key}) from {self.me} exceeded {self.max_hops} hops")

    # ----------------------------------------------------------------- helpers
    def _current_successor(self) -> NodeRef:
        return self.successors[0] if self.successors else self.me

    def _first_live_successor(self) -> Optional[NodeRef]:
        """The head of the successor list (pruned of known-dead entries)."""
        if not self.successors:
            return None
        return self.successors[0]

    def _closest_preceding(self, key: int, avoided: set) -> NodeRef:
        """Best known node strictly between us and ``key`` (fingers + successors).

        "Closest" means furthest along the clockwise walk from us towards
        the key, i.e. the candidate maximising ``ring_distance(me, node)``.
        """
        candidates = [f for f in self.fingers if f is not None] + self.successors
        best: Optional[NodeRef] = None
        best_distance = -1
        for node in candidates:
            if node.id in avoided or node == self.me:
                continue
            if not between(node.id, self.me.id, key):
                continue
            distance = ring_distance(self.me.id, node.id, self.bits)
            if distance > best_distance:
                best, best_distance = node, distance
        if best is not None:
            return best
        successor = self._current_successor()
        if successor.id not in avoided:
            return successor
        return self.me

    def _note_dead(self, node: NodeRef) -> None:
        """Purge a dead node from local routing state."""
        if node == self.me:
            return
        self.stats.dead_nodes_noticed += 1
        self.successors = [s for s in self.successors if s != node]
        if not self.successors:
            self.successors = [self.me]
        self.fingers = [None if f == node else f for f in self.fingers]
        if self.predecessor == node:
            self.predecessor = None

    def ring_snapshot(self) -> dict:
        """Debug/report view of this node's routing state."""
        return {
            "me": self.me,
            "predecessor": self.predecessor,
            "successors": list(self.successors),
            "fingers_known": sum(1 for f in self.fingers if f is not None),
            "joined": self.joined,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChordNode {self.me} joined={self.joined}>"


def chord_factory(**options):
    """Build a :class:`JobSpec`-compatible application factory.

    ``options`` override the job options for every instance (useful in
    tests: ``chord_factory(bits=10, join_window=0)``).
    """

    def _factory(instance: "Instance") -> ChordNode:
        node = ChordNode(instance, **options)
        node.start()
        return node

    return _factory


def _dedupe(nodes: List[NodeRef]) -> List[NodeRef]:
    seen = set()
    unique = []
    for node in nodes:
        key = (node.ip, node.port)
        if key not in seen:
            seen.add(key)
            unique.append(node)
    return unique


# ----------------------------------------------------------------- scenario
from repro.apps.harness import FLAGSHIP_CHURN_SCRIPT as DEFAULT_CHURN_SCRIPT  # noqa: E402


def expected_owner(job, key: int, bits: int) -> Optional[NodeRef]:
    """Ground truth: the successor of ``key`` among current ring members."""
    members = job.shared.get("chord_members", [])
    if not members:
        return None
    return min(members, key=lambda m: (ring_distance(key, m.id, bits), m.ip, m.port))


def run_chord_scenario(nodes: int = 50, hosts: Optional[int] = None, seed: int = 0,
                       churn: bool = False, churn_script: Optional[str] = None,
                       lookups: int = 200, bits: int = 32,
                       join_window: Optional[float] = None,
                       settle: Optional[float] = None, spacing: float = 0.25,
                       probe_interval: float = 2.0, kernel: str = "wheel",
                       duration: str = "full", ctl_shards: int = 1,
                       testbed: str = "transit-stub",
                       churn_trace: Optional[str] = None,
                       sanitize: bool = False, metrics: bool = False,
                       trace_out: Optional[str] = None, profile: bool = False,
                       log_level: str = "INFO",
                       bw_alloc: str = "max-min",
                       bw_global: bool = False,
                       gc_policy: str = "tuned",
                       store_caches: bool = True) -> dict:
    """Run the flagship Chord-under-churn scenario and return the report dict.

    ``join_window`` and ``settle`` default to values scaled with the ring
    size — big rings need proportionally longer to join and re-converge
    (``duration="short"`` is the quick CI preset).  ``kernel`` selects the
    event-queue implementation (``"wheel"`` or the baseline ``"heap"``);
    both produce byte-identical results for one seed.  ``testbed`` selects
    the deployment environment preset and ``churn_trace`` replays an
    availability trace as host-level churn (see :mod:`repro.testbeds` and
    :mod:`repro.core.churn`).
    """
    from repro.apps import harness
    from repro.sim.process import Process
    from repro.sim.rng import substream

    join_window, settle = harness.scaled_windows(nodes, join_window, settle, duration)
    lookups = harness.scaled_ops(lookups, duration)
    script = churn_script if churn_script is not None else (
        DEFAULT_CHURN_SCRIPT if churn else None)
    deployment = harness.deploy(
        "chord", chord_factory(), nodes=nodes, hosts=hosts, seed=seed,
        kernel=kernel, churn_script=script, churn_trace=churn_trace,
        testbed=testbed, options={"bits": bits},
        join_window=join_window, settle=settle, ctl_shards=ctl_shards,
        sanitize=sanitize, metrics=metrics, trace_out=trace_out,
        profile=profile, log_level=log_level, bw_alloc=bw_alloc,
        bw_global=bw_global, gc_policy=gc_policy, store_caches=store_caches)
    sim, job = deployment.sim, deployment.job

    def _owner(job, key):
        return expected_owner(job, key, bits)

    # Probe lookups issued while churn is active (reported, not gating).
    probe_results: List["harness.OpResult"] = []
    if (script or churn_trace) and deployment.churn_end > deployment.warmup_end:
        probe_count = int((deployment.churn_end - deployment.warmup_end) / probe_interval)
        probe = Process(sim, harness.lookup_stream(
            sim, job, probe_count, probe_interval, bits,
            substream(seed, "workload-churn"), probe_results, _owner,
            failure=LookupFailed), name="workload.under-churn")
        probe.start(delay=deployment.warmup_end)

    # The measured workload starts once the ring has re-converged.
    results: List["harness.OpResult"] = []
    driver = Process(sim, harness.lookup_stream(
        sim, job, lookups, spacing, bits, substream(seed, "workload"),
        results, _owner, failure=LookupFailed), name="workload.measured")
    driver.start(delay=deployment.measure_start)

    # Run until the measured workload drains (lookups take several RTTs each,
    # so a fixed horizon would truncate the stream); a hard cap bounds runaway.
    hard_cap = deployment.measure_start + lookups * (spacing + 30.0) + 300.0
    harness.drain(sim, driver, hard_cap, deployment=deployment)

    report = harness.base_report("chord", deployment, bits=bits)
    report["under_churn"] = harness.summarise(probe_results) if probe_results else None
    report["measured"] = harness.summarise(results)
    report["cdf_samples_ms"] = sorted(
        round(1000.0 * r.latency, 3) for r in results if r.completed)
    return report


def _register() -> None:
    from repro.apps import registry

    def _add_arguments(parser) -> None:
        parser.add_argument("--lookups", type=int, default=200,
                            help="measured lookups after the ring re-converges")
        parser.add_argument("--bits", type=int, default=32, help="identifier width")

    registry.register(registry.ScenarioSpec(
        name="chord",
        help="Chord DHT on a transit-stub network under churn",
        runner=run_chord_scenario,
        default_churn_script=DEFAULT_CHURN_SCRIPT,
        add_arguments=_add_arguments,
        make_kwargs=lambda args: {"lookups": args.lookups, "bits": args.bits},
        ops_param="lookups",
        ops_label="lookup",
        default_min_success=0.99,
    ))


_register()
