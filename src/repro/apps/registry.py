"""Pluggable scenario registry.

Each workload module registers a :class:`ScenarioSpec` describing how to run
it end to end: the scenario runner, its CLI arguments, the default churn
script, and how to extract bench metrics from its report.  The scenarios CLI
and the bench sweep are built entirely from this registry, so adding a
workload is: write the app module, register a spec, done — the subcommand,
the churn/`--cdf`/`--duration` plumbing and the bench integration come for
free.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


def default_bench_metrics(report: dict) -> dict:
    """Bench columns shared by every workload (from the standard summary)."""
    measured = report.get("measured") or {}
    return {
        "lookups_issued": measured.get("issued", 0),
        "lookups_correct": measured.get("correct", 0),
        "success_rate": round(measured.get("success_rate", 0.0), 6),
        "latency_p50_ms": round(measured.get("latency_p50_ms", 0.0), 3),
        "latency_p95_ms": round(measured.get("latency_p95_ms", 0.0), 3),
        "hops_mean": round(measured.get("hops_mean", 0.0), 4),
    }


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything the CLI/bench needs to run one registered workload.

    ``runner`` accepts the common keyword arguments (``nodes``, ``hosts``,
    ``seed``, ``churn``, ``churn_script``, ``churn_trace``, ``testbed``,
    ``kernel``, ``duration``, ``join_window``, ``settle``, ``ctl_shards``)
    plus whatever ``add_arguments`` declares (mapped through
    ``make_kwargs``), and returns the report dict.  The testbed and churn
    plumbing comes from the harness, so a registered workload runs on every
    environment preset and under trace-driven host churn with no
    per-workload code.
    """

    name: str
    help: str
    runner: Callable[..., dict]
    default_churn_script: str
    #: register workload-specific CLI flags on the subparser
    add_arguments: Callable[[argparse.ArgumentParser], None] = lambda parser: None
    #: map parsed workload-specific flags to runner kwargs
    make_kwargs: Callable[[argparse.Namespace], dict] = lambda args: {}
    #: keyword argument of ``runner`` holding the measured-operation count
    #: (``None`` when the workload's size is fixed by the deployment itself)
    ops_param: Optional[str] = "lookups"
    #: what one measured operation is called in reports ("lookup", ...)
    ops_label: str = "lookup"
    default_min_success: float = 0.99
    #: extra ``workload`` report keys printed by the CLI, in order
    extra_report_lines: List[str] = field(default_factory=list)
    #: extract the workload-quality bench columns from a report
    bench_metrics: Callable[[dict], dict] = default_bench_metrics


_REGISTRY: Dict[str, ScenarioSpec] = {}


class UnknownScenarioError(KeyError):
    """Raised when looking up a scenario name nobody registered."""


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to the registry (idempotent for the same object)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ScenarioSpec:
    load_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownScenarioError(f"unknown scenario {name!r} (known: {known})") from None


def all_specs() -> List[ScenarioSpec]:
    """Registered specs, in registration order (chord first)."""
    load_builtin()
    return list(_REGISTRY.values())


def scenario_names() -> List[str]:
    return [spec.name for spec in all_specs()]


def load_builtin() -> None:
    """Import the built-in workload modules (each registers its spec)."""
    # Imports are local to avoid a cycle: workload modules import this module
    # to register themselves.
    from repro.apps import chord, dissemination, gossip, pastry  # noqa: F401
