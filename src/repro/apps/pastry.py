"""Pastry on the SPLAY runtime (prefix routing, leaf sets, churn repair).

The paper's evaluation deploys Pastry alongside Chord on the same testbed;
this module is the Pastry half: identifiers are strings of ``2**base_bits``
digits, each node keeps a routing table indexed by shared-prefix length and
next digit (``shared_prefix_length`` / ``digit_at`` from ``lib/ring``) plus
a *leaf set* of its numerically closest neighbours on each side of the ring.

Routing forwards to a node whose identifier shares a strictly longer prefix
with the key, falling back to a numerically closer node with an equal
prefix (the "rare case"), and terminates at the numerically closest member
once the key lands inside a leaf set.  Like the Chord implementation,
lookups are *iterative*: the querying node walks the overlay one ``step``
RPC at a time and routes around nodes that die mid-lookup, and ownership is
confirmed with a ``claim`` check so recent joins don't yield stale owners.

Fault tolerance under churn comes from periodic leaf-set repair (exchange
leaf sets with the nearest live neighbour on each side) and routing-table
probing, mirroring Pastry's self-stabilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from repro.lib.ring import (
    between,
    digit_at,
    hash_key,
    numeric_distance,
    ring_distance,
    shared_prefix_length,
)
from repro.lib.rpc import RpcError
from repro.net.address import NodeRef
from repro.sim.rng import substream

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.splayd import Instance


#: default leaf-set capacity (total, half per side) — also reported by the
#: scenario, so keep the node constructor and this constant in sync
DEFAULT_LEAF_SET_SIZE = 8


class RouteFailed(Exception):
    """A lookup exhausted its hop budget or every route attempt failed."""


@dataclass
class PastryStats:
    """Per-node counters (aggregated by the scenario report)."""

    lookups_started: int = 0
    lookups_completed: int = 0
    lookups_failed: int = 0
    hops_total: int = 0
    join_attempts: int = 0
    repair_rounds: int = 0
    dead_nodes_noticed: int = 0


class PastryNode:
    """One Pastry node, bound to one runtime instance.

    Options (from ``JobSpec.options`` or keyword overrides): ``bits`` —
    identifier width; ``base_bits`` — bits per routing digit (``b``; base is
    ``2**b``); ``leaf_set_size`` — total leaf-set capacity (half per side);
    ``repair_interval`` / ``table_probe_interval`` — maintenance periods;
    ``hop_timeout`` / ``hop_retries`` — per-hop RPC settings; ``join_window``
    — joins are staggered uniformly over this many seconds.
    """

    def __init__(self, instance: "Instance", **overrides):
        options = {**instance.options, **overrides}
        self.instance = instance
        self.events = instance.events
        self.rpc = instance.rpc
        self.log = instance.logger
        self.bits: int = int(options.get("bits", 32))
        self.base_bits: int = int(options.get("base_bits", 4))
        if self.bits % self.base_bits:
            raise ValueError(
                f"bits ({self.bits}) must be a multiple of base_bits ({self.base_bits})")
        self.digits: int = self.bits // self.base_bits
        self.leaf_set_size: int = int(options.get("leaf_set_size", DEFAULT_LEAF_SET_SIZE))
        self.leaf_half: int = max(1, self.leaf_set_size // 2)
        self.repair_interval: float = float(options.get("repair_interval", 5.0))
        self.table_probe_interval: float = float(options.get("table_probe_interval", 8.0))
        self.hop_timeout: float = float(options.get("hop_timeout", 1.5))
        self.hop_retries: int = int(options.get("hop_retries", 1))
        self.join_window: float = float(options.get("join_window", 30.0))
        self.max_hops: int = int(options.get("max_hops", 3 * self.digits + 8))

        self.me = instance.me.with_id(
            hash_key(f"{instance.me.ip}:{instance.me.port}", self.bits))
        #: known leaf-set candidates, keyed by endpoint (trimmed to the
        #: closest ``leaf_half`` on each side after every merge)
        self.leaves: Dict[Tuple[str, int], NodeRef] = {}
        #: routing table: ``table[row][column]`` — row = shared prefix
        #: length, column = next digit of the destination
        self.table: List[List[Optional[NodeRef]]] = [
            [None] * (1 << self.base_bits) for _ in range(self.digits)]
        self.joined = False
        self.stats = PastryStats()
        self._rng = substream(self.events.sim.seed, "pastry",
                              instance.job.job_id, instance.instance_id)

        rpc = self.rpc
        rpc.register("step", self._rpc_step)
        rpc.register("claim", self._rpc_claim)
        rpc.register("find_owner", self._rpc_find_owner)
        rpc.register("leafset", self._rpc_leafset)
        rpc.register("table_dump", self._rpc_table_dump)
        rpc.register("notify", self._rpc_notify)

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Create the overlay (first node of the job) or schedule a join."""
        members = self.instance.job.shared.setdefault("pastry_members", [])
        if not self.instance.job.shared.get("pastry_created"):
            self.instance.job.shared["pastry_created"] = True
            self._become_member()
        else:
            delay = self._rng.uniform(0.0, self.join_window) if self.join_window > 0 else 0.0
            self.events.thread(self._join_main, name=f"{self.instance.context.name}.join",
                               delay=delay)
        self.instance.context.add_cleanup(
            lambda: members.remove(self.me) if self.me in members else None)

    def _become_member(self) -> None:
        self.joined = True
        members = self.instance.job.shared["pastry_members"]
        if self.me not in members:
            members.append(self.me)
        self.events.periodic(self._leafset_repair, self.repair_interval,
                             jitter=self.repair_interval * 0.25)
        self.events.periodic(self._table_maintenance, self.table_probe_interval,
                             jitter=self.table_probe_interval * 0.25)
        self.log.info(f"node {self.me} up (id={self.me.id:0{self.digits}x})")

    def _join_main(self) -> Generator:
        """Join: route to our own id, adopt the owner's leaf set and tables."""
        for attempt in range(1, 16):
            self.stats.join_attempts += 1
            bootstrap = self._pick_bootstrap()
            if bootstrap is None:
                yield 2.0
                continue
            try:
                owner = yield self.rpc.call(bootstrap, "find_owner", self.me.id,
                                            timeout=self.hop_timeout * 8, retries=1)
                owner = NodeRef.coerce(owner)
                leafset = yield self.rpc.call(owner, "leafset",
                                              timeout=self.hop_timeout, retries=1)
            except RpcError as exc:
                self.log.debug(f"join attempt {attempt} via {bootstrap} failed: {exc}")
                yield 1.0 + self._rng.uniform(0.0, 1.0)
                continue
            self._learned(bootstrap)
            self._learned(owner)
            for entry in leafset:
                self._learned(NodeRef.coerce(entry))
            # Seed the routing table: rows from the bootstrap (long prefixes
            # are unlikely there, but early rows are) and from the owner
            # (whose table is close to what ours should be).
            for source in ([bootstrap, owner] if bootstrap != owner else [bootstrap]):
                try:
                    dump = yield self.rpc.call(source, "table_dump",
                                               timeout=self.hop_timeout, retries=0)
                except RpcError:
                    continue
                for entry in dump:
                    self._learned(NodeRef.coerce(entry))
            self._become_member()
            for leaf in self._leaf_nodes():
                self.rpc.a_call(leaf, "notify", self.me,
                                timeout=self.hop_timeout, retries=0)
            return
        self.log.error(f"node {self.me} could not join, giving up")
        self.events.exit()

    def _pick_bootstrap(self) -> Optional[NodeRef]:
        members = [m for m in self.instance.job.shared.get("pastry_members", [])
                   if m != self.me]
        if not members:
            return None
        return self._rng.choice(members)

    # ------------------------------------------------------------ RPC handlers
    def _rpc_step(self, key: int, avoid: Optional[list] = None) -> dict:
        """One hop of an iterative lookup: done with the owner, or forward."""
        key = int(key) % (1 << self.bits)
        avoided = set(avoid or ())
        leaves = [n for n in self._leaf_nodes() if n.id not in avoided]
        if self._leaf_covers(key):
            best = min(leaves + [self.me], key=self._closeness_key(key))
            return {"done": True, "node": best}
        row = shared_prefix_length(key, self.me.id, self.digits, self.base_bits)
        entry = self.table[row][digit_at(key, row, self.digits, self.base_bits)]
        if entry is not None and entry.id not in avoided and entry != self.me:
            return {"done": False, "node": entry}
        # Rare case: any known node with an equal-or-longer shared prefix
        # that is strictly numerically closer to the key than we are.
        fallback = self._rare_case(key, row, avoided)
        if fallback is not None:
            return {"done": False, "node": fallback}
        return {"done": True, "node": self.me}

    def _rpc_claim(self, key: int) -> dict:
        """Ownership check: are we the numerically closest among our leaves?

        A node that recently joined next to the key may be invisible to a
        stale router; its neighbours know it through leaf-set exchange, so
        asking the claimed owner to confirm (and bounce to the closer leaf
        otherwise) repairs stale-route errors.
        """
        key = int(key) % (1 << self.bits)
        best = min(self._leaf_nodes() + [self.me], key=self._closeness_key(key))
        if best == self.me:
            return {"mine": True}
        return {"mine": False, "node": best}

    def _rpc_find_owner(self, key: int) -> Generator:
        """Full lookup on behalf of a caller (used by joins)."""
        owner, _hops = yield from self.lookup(int(key))
        return owner

    def _rpc_leafset(self) -> List[NodeRef]:
        return self._leaf_nodes()

    def _rpc_table_dump(self) -> List[NodeRef]:
        return [entry for row in self.table for entry in row if entry is not None]

    def _rpc_notify(self, node) -> bool:
        self._learned(NodeRef.coerce(node))
        return True

    # ------------------------------------------------------------ maintenance
    def _leafset_repair(self) -> Generator:
        """Exchange leaf sets with the nearest live neighbour on each side."""
        self.stats.repair_rounds += 1
        cw, ccw = self._cw(), self._ccw()
        neighbours = []
        if cw:
            neighbours.append(cw[0])
        if ccw and (not cw or ccw[0] != cw[0]):
            neighbours.append(ccw[0])
        if not neighbours:
            yield from self._reseed()
            return
        for neighbour in neighbours:
            try:
                remote = yield self.rpc.call(neighbour, "leafset",
                                             timeout=self.hop_timeout,
                                             retries=self.hop_retries)
            except RpcError:
                self._note_dead(neighbour)
                continue
            for entry in remote:
                self._learned(NodeRef.coerce(entry))
            self.rpc.a_call(neighbour, "notify", self.me,
                            timeout=self.hop_timeout, retries=0)

    def _table_maintenance(self) -> Generator:
        """Probe one random routing-table entry; refresh one random row."""
        occupied = [(r, c) for r, row in enumerate(self.table)
                    for c, entry in enumerate(row) if entry is not None]
        if occupied:
            row, column = self._rng.choice(occupied)
            entry = self.table[row][column]
            if entry is not None:
                alive = yield self.rpc.ping(entry, timeout=self.hop_timeout)
                if not alive:
                    self._note_dead(entry)
        # Route towards a random key to (re)populate a table slot, the same
        # way Chord refreshes fingers.
        probe_key = self._rng.randrange(1 << self.bits)
        try:
            owner, _hops = yield from self.lookup(probe_key)
            self._learned(owner)
        except RouteFailed:
            pass

    def _reseed(self) -> Generator:
        """Every leaf died: fall back to the member list and re-anchor."""
        bootstrap = self._pick_bootstrap()
        if bootstrap is None:
            return
        try:
            owner = yield self.rpc.call(bootstrap, "find_owner", self.me.id,
                                        timeout=self.hop_timeout * 8, retries=1)
            owner = NodeRef.coerce(owner)
            self._learned(bootstrap)
            self._learned(owner)
            remote = yield self.rpc.call(owner, "leafset",
                                         timeout=self.hop_timeout, retries=0)
            for entry in remote:
                self._learned(NodeRef.coerce(entry))
        except RpcError:
            pass

    # ---------------------------------------------------------------- lookups
    def lookup(self, key: int) -> Generator:
        """Iteratively find the node owning ``key`` (numerically closest).

        Returns ``(owner, hops)``.  Dead hops are added to an ``avoid`` set
        and the walk restarts from the local node, so a lookup survives nodes
        failing underneath it as long as the overlay stays connected.
        """
        key = key % (1 << self.bits)
        self.stats.lookups_started += 1
        avoid: set = set()
        current = self.me
        hops = 0
        while hops < self.max_hops:
            if current == self.me:
                response = self._rpc_step(key, list(avoid))
            else:
                try:
                    response = yield self.rpc.call(current, "step", key, list(avoid),
                                                   timeout=self.hop_timeout,
                                                   retries=self.hop_retries)
                except RpcError:
                    avoid.add(current.id)
                    self._note_dead(current)
                    current = self.me
                    hops += 1
                    continue
            hops += 1
            node = NodeRef.coerce(response["node"])
            self._learned(node)
            if response["done"]:
                owner = node
                confirmed = None
                for _bounce in range(4):
                    if owner == self.me:
                        claim = self._rpc_claim(key)
                    else:
                        try:
                            claim = yield self.rpc.call(owner, "claim", key,
                                                        timeout=self.hop_timeout,
                                                        retries=self.hop_retries)
                        except RpcError:
                            avoid.add(owner.id)
                            self._note_dead(owner)
                            break  # restart the walk from the local node
                    hops += 1
                    if claim["mine"]:
                        confirmed = owner
                        break
                    candidate = NodeRef.coerce(claim["node"])
                    self._learned(candidate)
                    if candidate == owner or candidate.id in avoid:
                        confirmed = owner  # stale bounce; accept the claimer
                        break
                    owner = candidate
                else:
                    confirmed = owner  # bounce budget spent; best known owner
                if confirmed is not None:
                    self.stats.lookups_completed += 1
                    self.stats.hops_total += hops
                    return confirmed, hops
                current = self.me
                continue
            if node == current or (node == self.me and current != self.me):
                avoid.add(node.id)
                current = self.me
                continue
            current = node
        self.stats.lookups_failed += 1
        raise RouteFailed(f"lookup({key}) from {self.me} exceeded {self.max_hops} hops")

    # ----------------------------------------------------------------- helpers
    def _closeness_key(self, key: int):
        """Deterministic total order on 'numerically closest to ``key``'."""
        return lambda n: (numeric_distance(key, n.id, self.bits), n.id, n.ip, n.port)

    def _leaf_nodes(self) -> List[NodeRef]:
        return sorted(self.leaves.values(), key=lambda n: (n.ip, n.port))

    def _cw(self) -> List[NodeRef]:
        """Leaves ordered by clockwise distance from us (nearest first)."""
        return sorted(self.leaves.values(),
                      key=lambda n: (ring_distance(self.me.id, n.id, self.bits),
                                     n.ip, n.port))[: self.leaf_half]

    def _ccw(self) -> List[NodeRef]:
        """Leaves ordered by counter-clockwise distance from us (nearest first)."""
        return sorted(self.leaves.values(),
                      key=lambda n: (ring_distance(n.id, self.me.id, self.bits),
                                     n.ip, n.port))[: self.leaf_half]

    def _leaf_covers(self, key: int) -> bool:
        """True when ``key`` falls inside the span of our leaf set."""
        cw, ccw = self._cw(), self._ccw()
        if not cw and not ccw:
            return True  # alone on the ring: we own everything
        if len(self.leaves) < 2 * self.leaf_half:
            # The leaf set is not saturated, so it holds every member we
            # know of — ownership is decided by numeric closeness directly.
            return True
        low = ccw[-1].id if ccw else self.me.id
        high = cw[-1].id if cw else self.me.id
        return between(key, low, high, include_low=True, include_high=True)

    def _rare_case(self, key: int, row: int, avoided: set) -> Optional[NodeRef]:
        """Any known node with prefix >= ``row`` strictly closer to ``key``."""
        mine = numeric_distance(key, self.me.id, self.bits)
        best: Optional[NodeRef] = None
        best_key = None
        for node in self._known_nodes():
            if node.id in avoided or node == self.me:
                continue
            if shared_prefix_length(key, node.id, self.digits, self.base_bits) < row:
                continue
            candidate_key = self._closeness_key(key)(node)
            if candidate_key[0] >= mine:
                continue
            if best is None or candidate_key < best_key:
                best, best_key = node, candidate_key
        return best

    def _known_nodes(self) -> List[NodeRef]:
        known = {(n.ip, n.port): n for n in self.leaves.values()}
        for table_row in self.table:
            for entry in table_row:
                if entry is not None:
                    known.setdefault((entry.ip, entry.port), entry)
        return [known[k] for k in sorted(known)]

    def _learned(self, node: NodeRef) -> None:
        """Fold a freshly observed node into the leaf set and routing table."""
        if node is None or node.id is None or node == self.me:
            return
        self.leaves[(node.ip, node.port)] = node
        self._trim_leaves()
        row = shared_prefix_length(node.id, self.me.id, self.digits, self.base_bits)
        if row < self.digits:
            column = digit_at(node.id, row, self.digits, self.base_bits)
            if self.table[row][column] is None:
                self.table[row][column] = node

    def _trim_leaves(self) -> None:
        keep = {(n.ip, n.port) for n in self._cw()} | {(n.ip, n.port) for n in self._ccw()}
        if len(keep) < len(self.leaves):
            self.leaves = {k: v for k, v in self.leaves.items() if k in keep}

    def _note_dead(self, node: NodeRef) -> None:
        """Purge a dead node from local routing state."""
        if node == self.me:
            return
        self.stats.dead_nodes_noticed += 1
        self.leaves.pop((node.ip, node.port), None)
        for table_row in self.table:
            for column, entry in enumerate(table_row):
                if entry == node:
                    table_row[column] = None

    def routing_snapshot(self) -> dict:
        """Debug/report view of this node's routing state."""
        return {
            "me": self.me,
            "leaves": self._leaf_nodes(),
            "table_entries": sum(1 for row in self.table for e in row if e is not None),
            "joined": self.joined,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PastryNode {self.me} joined={self.joined}>"


def pastry_factory(**options):
    """Build a :class:`JobSpec`-compatible application factory."""

    def _factory(instance: "Instance") -> PastryNode:
        node = PastryNode(instance, **options)
        node.start()
        return node

    return _factory


# ----------------------------------------------------------------- scenario
#: the Chord flagship script: same relative timeline for a fair comparison
from repro.apps.harness import FLAGSHIP_CHURN_SCRIPT as DEFAULT_CHURN_SCRIPT  # noqa: E402


def expected_owner(job, key: int, bits: int) -> Optional[NodeRef]:
    """Ground truth: the numerically closest current member to ``key``."""
    members = job.shared.get("pastry_members", [])
    if not members:
        return None
    return min(members, key=lambda m: (numeric_distance(key, m.id, bits),
                                       m.id, m.ip, m.port))


def run_pastry_scenario(nodes: int = 50, hosts: Optional[int] = None, seed: int = 0,
                        churn: bool = False, churn_script: Optional[str] = None,
                        lookups: int = 200, bits: int = 32, base_bits: int = 4,
                        join_window: Optional[float] = None,
                        settle: Optional[float] = None, spacing: float = 0.25,
                        probe_interval: float = 2.0, kernel: str = "wheel",
                        duration: str = "full", ctl_shards: int = 1,
                        testbed: str = "transit-stub",
                        churn_trace: Optional[str] = None,
                        sanitize: bool = False, metrics: bool = False,
                        trace_out: Optional[str] = None, profile: bool = False,
                        log_level: str = "INFO",
                        bw_alloc: str = "max-min",
                        bw_global: bool = False,
                        gc_policy: str = "tuned",
                        store_caches: bool = True) -> dict:
    """Run Pastry under (optional) churn and return the report dict."""
    from repro.apps import harness
    from repro.sim.process import Process

    join_window, settle = harness.scaled_windows(nodes, join_window, settle, duration)
    lookups = harness.scaled_ops(lookups, duration)
    script = churn_script if churn_script is not None else (
        DEFAULT_CHURN_SCRIPT if churn else None)
    deployment = harness.deploy(
        "pastry", pastry_factory(), nodes=nodes, hosts=hosts, seed=seed,
        kernel=kernel, churn_script=script, churn_trace=churn_trace,
        testbed=testbed, options={"bits": bits, "base_bits": base_bits},
        join_window=join_window, settle=settle, ctl_shards=ctl_shards,
        sanitize=sanitize, metrics=metrics, trace_out=trace_out,
        profile=profile, log_level=log_level, bw_alloc=bw_alloc,
        bw_global=bw_global, gc_policy=gc_policy, store_caches=store_caches)
    sim, job = deployment.sim, deployment.job

    def _owner(job, key):
        return expected_owner(job, key, bits)

    probe_results: List["harness.OpResult"] = []
    if (script or churn_trace) and deployment.churn_end > deployment.warmup_end:
        probe_count = int((deployment.churn_end - deployment.warmup_end) / probe_interval)
        probe = Process(sim, harness.lookup_stream(
            sim, job, probe_count, probe_interval, bits,
            substream(seed, "workload-churn"), probe_results, _owner,
            failure=RouteFailed), name="workload.under-churn")
        probe.start(delay=deployment.warmup_end)

    results: List["harness.OpResult"] = []
    driver = Process(sim, harness.lookup_stream(
        sim, job, lookups, spacing, bits, substream(seed, "workload"),
        results, _owner, failure=RouteFailed), name="workload.measured")
    driver.start(delay=deployment.measure_start)

    hard_cap = deployment.measure_start + lookups * (spacing + 30.0) + 300.0
    harness.drain(sim, driver, hard_cap, deployment=deployment)

    report = harness.base_report("pastry", deployment, bits=bits)
    report["workload"] = {"base_bits": base_bits, "digits": bits // base_bits,
                          "leaf_set_size": DEFAULT_LEAF_SET_SIZE}
    report["under_churn"] = harness.summarise(probe_results) if probe_results else None
    report["measured"] = harness.summarise(results)
    report["cdf_samples_ms"] = sorted(
        round(1000.0 * r.latency, 3) for r in results if r.completed)
    return report


def _register() -> None:
    from repro.apps import registry

    def _add_arguments(parser) -> None:
        parser.add_argument("--lookups", type=int, default=200,
                            help="measured lookups after the overlay re-converges")
        parser.add_argument("--bits", type=int, default=32, help="identifier width")
        parser.add_argument("--base-bits", type=int, default=4,
                            help="bits per routing digit (b; routing base is 2^b)")

    registry.register(registry.ScenarioSpec(
        name="pastry",
        help="Pastry prefix routing with leaf sets under churn",
        runner=run_pastry_scenario,
        default_churn_script=DEFAULT_CHURN_SCRIPT,
        add_arguments=_add_arguments,
        make_kwargs=lambda args: {"lookups": args.lookups, "bits": args.bits,
                                  "base_bits": args.base_bits},
        ops_param="lookups",
        ops_label="lookup",
        default_min_success=0.95,
    ))


_register()
