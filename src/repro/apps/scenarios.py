"""End-to-end experiment scenarios (``python -m repro.apps.scenarios``).

The flagship scenario reproduces the paper's Chord-under-churn experiment:
deploy Chord through the controller onto splayd daemons spread over a
transit-stub (ModelNet-style) topology, replay a churn script against the
job, then measure lookup correctness and latency once the ring re-converges.

Everything is driven by one root seed: topology, placement, join staggering,
churn victim selection and the lookup workload all draw from deterministic
substreams, so a given command line always produces the same report.
"""

from __future__ import annotations

import argparse
import math
import sys
from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.apps.chord import LookupFailed, chord_factory
from repro.core.churn import parse_churn_script
from repro.core.jobs import JobSpec
from repro.lib.ring import ring_distance
from repro.net.latency import TopologyLatency
from repro.net.network import Network
from repro.net.topology import TransitStubTopology
from repro.runtime.controller import Controller
from repro.runtime.splayd import Splayd, SplaydLimits
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.rng import substream

#: the flagship churn script: a crash burst, a continuous-replacement
#: window, then a join wave — times are relative to job start
DEFAULT_CHURN_SCRIPT = """\
at 150s crash 10%
from 180s to 300s every 30s replace 5%
at 330s join 5
"""


@dataclass
class LookupResult:
    """Outcome of one measured lookup."""

    key: int
    started_at: float
    latency: float
    hops: int
    completed: bool
    correct: bool


def _host_ips(count: int) -> List[str]:
    if count > 65536:
        raise ValueError("scenario supports at most 65536 hosts")
    return [f"10.{i // 256}.{i % 256}.1" for i in range(count)]


def _expected_owner(job, key: int, bits: int):
    """Ground truth: the successor of ``key`` among current ring members."""
    members = job.shared.get("chord_members", [])
    if not members:
        return None
    return min(members, key=lambda m: (ring_distance(key, m.id, bits), m.ip, m.port))


def _lookup_stream(sim: Simulator, job, count: int, spacing: float, bits: int,
                   rng, results: List[LookupResult]) -> Generator:
    """Coroutine issuing ``count`` lookups from random live nodes."""
    for _ in range(count):
        apps = [i.app for i in job.live_instances()
                if i.app is not None and getattr(i.app, "joined", False)]
        if not apps:
            yield spacing
            continue
        origin = rng.choice(sorted(apps, key=lambda a: (a.me.ip, a.me.port)))
        key = rng.randrange(1 << bits)
        started = sim.now
        try:
            owner, hops = yield from origin.lookup(key)
        except LookupFailed:
            results.append(LookupResult(key, started, sim.now - started, 0, False, False))
        except Exception:  # noqa: BLE001 - origin died mid-lookup (churn)
            results.append(LookupResult(key, started, sim.now - started, 0, False, False))
        else:
            expected = _expected_owner(job, key, bits)
            correct = (expected is not None and owner.ip == expected.ip
                       and owner.port == expected.port)
            results.append(LookupResult(key, started, sim.now - started, hops, True, correct))
        yield spacing


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def _summarise(results: List[LookupResult]) -> dict:
    issued = len(results)
    completed = [r for r in results if r.completed]
    correct = [r for r in results if r.correct]
    latencies = [r.latency for r in completed]
    hops = [r.hops for r in completed]
    return {
        "issued": issued,
        "completed": len(completed),
        "correct": len(correct),
        "success_rate": (len(correct) / issued) if issued else 0.0,
        "latency_mean_ms": 1000.0 * (sum(latencies) / len(latencies)) if latencies else 0.0,
        "latency_p50_ms": 1000.0 * _percentile(latencies, 0.50),
        "latency_p95_ms": 1000.0 * _percentile(latencies, 0.95),
        "latency_max_ms": 1000.0 * (max(latencies) if latencies else 0.0),
        "hops_mean": (sum(hops) / len(hops)) if hops else 0.0,
        "hops_max": max(hops) if hops else 0,
    }


def run_chord_scenario(nodes: int = 50, hosts: Optional[int] = None, seed: int = 0,
                       churn: bool = False, churn_script: Optional[str] = None,
                       lookups: int = 200, bits: int = 32,
                       join_window: Optional[float] = None,
                       settle: Optional[float] = None, spacing: float = 0.25,
                       probe_interval: float = 2.0) -> dict:
    """Run the flagship scenario and return the report dict.

    ``join_window`` and ``settle`` default to values scaled with the ring
    size — big rings need proportionally longer to join and re-converge.
    """
    if join_window is None:
        join_window = max(60.0, 0.8 * nodes)
    if settle is None:
        settle = max(90.0, 0.6 * nodes)
    sim = Simulator(seed)
    host_count = hosts if hosts is not None else max(8, nodes // 2)
    ips = _host_ips(host_count)

    # ModelNet-style substrate: the paper's 500-node transit-stub topology
    # parameters, 10 Mbps access links, hosts round-robined onto stub nodes.
    topology = TransitStubTopology(seed=seed)
    attachment = topology.attach_hosts(ips)
    network = Network(sim, latency=TopologyLatency(topology, attachment), seed=seed)
    for ip in ips:
        network.bandwidth.set_capacity(ip, topology.link_bandwidth_bps,
                                       topology.link_bandwidth_bps)

    controller = Controller(sim, network, seed=seed)
    slots = max(2, math.ceil(nodes / host_count) + 2)
    for ip in ips:
        controller.register_daemon(
            Splayd(sim, network, ip, SplaydLimits(max_instances=slots)))

    script = churn_script if churn_script is not None else (
        DEFAULT_CHURN_SCRIPT if churn else None)
    spec = JobSpec(
        name="chord",
        app_factory=chord_factory(),
        instances=nodes,
        base_port=20000,
        log_level="INFO",
        log_max_bytes=256_000,
        churn_script=script,
        options={"bits": bits, "join_window": join_window},
    )
    job = controller.submit(spec)
    controller.start(job)

    warmup_end = join_window + 60.0
    churn_end = warmup_end
    if script:
        actions = parse_churn_script(script)
        if actions:
            churn_end = max(warmup_end, max(a.time for a in actions))
    measure_start = churn_end + settle

    # Probe lookups issued while churn is active (reported, not gating).
    probe_results: List[LookupResult] = []
    if script and churn_end > warmup_end:
        probe_count = int((churn_end - warmup_end) / probe_interval)
        probe = Process(sim, _lookup_stream(sim, job, probe_count, probe_interval, bits,
                                            substream(seed, "workload-churn"),
                                            probe_results),
                        name="workload.under-churn")
        probe.start(delay=warmup_end)

    # The measured workload starts once the ring has re-converged.
    results: List[LookupResult] = []
    driver = Process(sim, _lookup_stream(sim, job, lookups, spacing, bits,
                                         substream(seed, "workload"), results),
                     name="workload.measured")
    driver.start(delay=measure_start)

    # Run until the measured workload drains (lookups take several RTTs each,
    # so a fixed horizon would truncate the stream); a hard cap bounds runaway.
    hard_cap = measure_start + lookups * (spacing + 30.0) + 300.0
    while not driver.done.done() and sim.now < hard_cap:
        sim.run(until=min(hard_cap, sim.now + 60.0))

    churn_manager = controller.churn_managers.get(job.job_id)
    report = {
        "scenario": "chord",
        "seed": seed,
        "nodes": nodes,
        "hosts": host_count,
        "bits": bits,
        "topology": topology.describe(),
        "virtual_time": sim.now,
        "events_executed": sim.executed_events,
        "job": controller.job_status(job),
        "churn": None,
        "under_churn": _summarise(probe_results) if probe_results else None,
        "measured": _summarise(results),
        "network": {
            "messages_sent": network.stats.messages_sent,
            "messages_delivered": network.stats.messages_delivered,
            "messages_dropped": network.stats.messages_dropped,
            "bytes_sent": network.stats.bytes_sent,
        },
        "log_records_collected": len(controller.logs.get(job.job_id, [])),
    }
    if churn_manager is not None:
        stats = churn_manager.stats
        report["churn"] = {
            "actions_applied": stats.actions_applied,
            "joined": stats.instances_joined,
            "left": stats.instances_left,
            "crashed": stats.instances_crashed,
        }
    return report


def _print_report(report: dict) -> None:
    job = report["job"]
    measured = report["measured"]
    print(f"=== SPLAY scenario: {report['scenario']} "
          f"(seed={report['seed']}, nodes={report['nodes']}, hosts={report['hosts']}, "
          f"bits={report['bits']}) ===")
    print(f"virtual time: {report['virtual_time']:.0f}s   "
          f"events: {report['events_executed']}")
    print(f"job: state={job['state']} live={job['live_instances']} "
          f"started={job['instances_started']} "
          f"churn(+{job['churn_joins']}/-{job['churn_leaves']}) "
          f"logs={report['log_records_collected']}")
    if report["churn"]:
        churn = report["churn"]
        print(f"churn: {churn['actions_applied']} actions, "
              f"{churn['crashed']} crashed, {churn['left']} left, "
              f"{churn['joined']} joined")
    if report["under_churn"]:
        under = report["under_churn"]
        print(f"lookups under churn: {under['correct']}/{under['issued']} correct "
              f"({100 * under['success_rate']:.1f}%), "
              f"latency p50={under['latency_p50_ms']:.0f}ms "
              f"p95={under['latency_p95_ms']:.0f}ms")
    print(f"measured lookups: {measured['correct']}/{measured['issued']} correct "
          f"-> success rate {100 * measured['success_rate']:.2f}%")
    print(f"lookup latency: mean={measured['latency_mean_ms']:.0f}ms "
          f"p50={measured['latency_p50_ms']:.0f}ms "
          f"p95={measured['latency_p95_ms']:.0f}ms "
          f"max={measured['latency_max_ms']:.0f}ms")
    print(f"lookup hops: mean={measured['hops_mean']:.2f} max={measured['hops_max']}")
    network = report["network"]
    print(f"network: {network['messages_sent']} sent, "
          f"{network['messages_delivered']} delivered, "
          f"{network['messages_dropped']} dropped, "
          f"{network['bytes_sent']} bytes")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.scenarios",
        description="SPLAY reproduction scenarios")
    sub = parser.add_subparsers(dest="scenario", required=True)

    chord = sub.add_parser("chord", help="Chord on a transit-stub network under churn")
    chord.add_argument("--nodes", type=int, default=50, help="Chord instances to deploy")
    chord.add_argument("--hosts", type=int, default=None,
                       help="physical hosts (default: nodes/2, min 8)")
    chord.add_argument("--seed", type=int, default=0, help="root determinism seed")
    chord.add_argument("--churn", action="store_true",
                       help="replay the default churn script against the job")
    chord.add_argument("--churn-script", type=str, default=None, metavar="FILE",
                       help="replay a churn script from FILE instead of the default")
    chord.add_argument("--lookups", type=int, default=200,
                       help="measured lookups after the ring re-converges")
    chord.add_argument("--bits", type=int, default=32, help="identifier width")
    chord.add_argument("--join-window", type=float, default=None,
                       help="joins are staggered over this many seconds "
                            "(default: scales with --nodes)")
    chord.add_argument("--settle", type=float, default=None,
                       help="grace period after churn before measuring "
                            "(default: scales with --nodes)")
    chord.add_argument("--min-success", type=float, default=0.99,
                       help="exit non-zero below this measured success rate")

    args = parser.parse_args(argv)
    if args.scenario == "chord":
        script = None
        if args.churn_script:
            try:
                with open(args.churn_script, "r", encoding="utf-8") as handle:
                    script = handle.read()
            except OSError as exc:
                print(f"error: cannot read churn script: {exc}", file=sys.stderr)
                return 2
            try:
                parse_churn_script(script)
            except ValueError as exc:
                print(f"error: invalid churn script {args.churn_script}: {exc}",
                      file=sys.stderr)
                return 2
        report = run_chord_scenario(
            nodes=args.nodes, hosts=args.hosts, seed=args.seed,
            churn=args.churn, churn_script=script, lookups=args.lookups,
            bits=args.bits, join_window=args.join_window, settle=args.settle)
        _print_report(report)
        ok = report["measured"]["success_rate"] >= args.min_success
        if not ok:
            print(f"FAIL: success rate below {100 * args.min_success:.0f}%",
                  file=sys.stderr)
        return 0 if ok else 2
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
