"""End-to-end experiment scenarios (``python -m repro.apps.scenarios``).

The flagship scenario reproduces the paper's Chord-under-churn experiment:
deploy Chord through the controller onto splayd daemons spread over a
transit-stub (ModelNet-style) topology, replay a churn script against the
job, then measure lookup correctness and latency once the ring re-converges.

Everything is driven by one root seed: topology, placement, join staggering,
churn victim selection and the lookup workload all draw from deterministic
substreams, so a given command line always produces the same report.
"""

from __future__ import annotations

import argparse
import csv
import hashlib
import json
import math
import sys
import time
from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.apps.chord import LookupFailed, chord_factory
from repro.core.churn import parse_churn_script, synthetic_churn_script
from repro.core.jobs import JobSpec
from repro.lib.ring import ring_distance
from repro.net.latency import TopologyLatency
from repro.net.network import Network
from repro.net.topology import TransitStubTopology
from repro.runtime.controller import Controller
from repro.runtime.splayd import Splayd, SplaydLimits
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.rng import substream

#: the flagship churn script: a crash burst, a continuous-replacement
#: window, then a join wave — times are relative to job start
DEFAULT_CHURN_SCRIPT = """\
at 150s crash 10%
from 180s to 300s every 30s replace 5%
at 330s join 5
"""


@dataclass
class LookupResult:
    """Outcome of one measured lookup."""

    key: int
    started_at: float
    latency: float
    hops: int
    completed: bool
    correct: bool


def _host_ips(count: int) -> List[str]:
    if count > 65536:
        raise ValueError("scenario supports at most 65536 hosts")
    return [f"10.{i // 256}.{i % 256}.1" for i in range(count)]


def _expected_owner(job, key: int, bits: int):
    """Ground truth: the successor of ``key`` among current ring members."""
    members = job.shared.get("chord_members", [])
    if not members:
        return None
    return min(members, key=lambda m: (ring_distance(key, m.id, bits), m.ip, m.port))


def _lookup_stream(sim: Simulator, job, count: int, spacing: float, bits: int,
                   rng, results: List[LookupResult]) -> Generator:
    """Coroutine issuing ``count`` lookups from random live nodes."""
    for _ in range(count):
        apps = [i.app for i in job.live_instances()
                if i.app is not None and getattr(i.app, "joined", False)]
        if not apps:
            yield spacing
            continue
        origin = rng.choice(sorted(apps, key=lambda a: (a.me.ip, a.me.port)))
        key = rng.randrange(1 << bits)
        started = sim.now
        try:
            owner, hops = yield from origin.lookup(key)
        except LookupFailed:
            results.append(LookupResult(key, started, sim.now - started, 0, False, False))
        except Exception:  # noqa: BLE001 - origin died mid-lookup (churn)
            results.append(LookupResult(key, started, sim.now - started, 0, False, False))
        else:
            expected = _expected_owner(job, key, bits)
            correct = (expected is not None and owner.ip == expected.ip
                       and owner.port == expected.port)
            results.append(LookupResult(key, started, sim.now - started, hops, True, correct))
        yield spacing


def _percentile(values: List[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def _summarise(results: List[LookupResult]) -> dict:
    issued = len(results)
    completed = [r for r in results if r.completed]
    correct = [r for r in results if r.correct]
    latencies = [r.latency for r in completed]
    hops = [r.hops for r in completed]
    return {
        "issued": issued,
        "completed": len(completed),
        "correct": len(correct),
        "success_rate": (len(correct) / issued) if issued else 0.0,
        "latency_mean_ms": 1000.0 * (sum(latencies) / len(latencies)) if latencies else 0.0,
        "latency_p50_ms": 1000.0 * _percentile(latencies, 0.50),
        "latency_p95_ms": 1000.0 * _percentile(latencies, 0.95),
        "latency_max_ms": 1000.0 * (max(latencies) if latencies else 0.0),
        "hops_mean": (sum(hops) / len(hops)) if hops else 0.0,
        "hops_max": max(hops) if hops else 0,
    }


def run_chord_scenario(nodes: int = 50, hosts: Optional[int] = None, seed: int = 0,
                       churn: bool = False, churn_script: Optional[str] = None,
                       lookups: int = 200, bits: int = 32,
                       join_window: Optional[float] = None,
                       settle: Optional[float] = None, spacing: float = 0.25,
                       probe_interval: float = 2.0, kernel: str = "wheel") -> dict:
    """Run the flagship scenario and return the report dict.

    ``join_window`` and ``settle`` default to values scaled with the ring
    size — big rings need proportionally longer to join and re-converge.
    ``kernel`` selects the event-queue implementation (``"wheel"`` or the
    baseline ``"heap"``); both produce byte-identical results for one seed.
    """
    if join_window is None:
        join_window = max(60.0, 0.8 * nodes)
    if settle is None:
        settle = max(90.0, 0.6 * nodes)
    sim = Simulator(seed, kernel=kernel)
    host_count = hosts if hosts is not None else max(8, nodes // 2)
    ips = _host_ips(host_count)

    # ModelNet-style substrate: the paper's 500-node transit-stub topology
    # parameters, 10 Mbps access links, hosts round-robined onto stub nodes.
    topology = TransitStubTopology(seed=seed)
    attachment = topology.attach_hosts(ips)
    network = Network(sim, latency=TopologyLatency(topology, attachment), seed=seed)
    for ip in ips:
        network.bandwidth.set_capacity(ip, topology.link_bandwidth_bps,
                                       topology.link_bandwidth_bps)

    controller = Controller(sim, network, seed=seed)
    slots = max(2, math.ceil(nodes / host_count) + 2)
    for ip in ips:
        controller.register_daemon(
            Splayd(sim, network, ip, SplaydLimits(max_instances=slots)))

    script = churn_script if churn_script is not None else (
        DEFAULT_CHURN_SCRIPT if churn else None)
    spec = JobSpec(
        name="chord",
        app_factory=chord_factory(),
        instances=nodes,
        base_port=20000,
        log_level="INFO",
        log_max_bytes=256_000,
        churn_script=script,
        options={"bits": bits, "join_window": join_window},
    )
    job = controller.submit(spec)
    controller.start(job)

    warmup_end = join_window + 60.0
    churn_end = warmup_end
    if script:
        actions = parse_churn_script(script)
        if actions:
            churn_end = max(warmup_end, max(a.time for a in actions))
    measure_start = churn_end + settle

    # Probe lookups issued while churn is active (reported, not gating).
    probe_results: List[LookupResult] = []
    if script and churn_end > warmup_end:
        probe_count = int((churn_end - warmup_end) / probe_interval)
        probe = Process(sim, _lookup_stream(sim, job, probe_count, probe_interval, bits,
                                            substream(seed, "workload-churn"),
                                            probe_results),
                        name="workload.under-churn")
        probe.start(delay=warmup_end)

    # The measured workload starts once the ring has re-converged.
    results: List[LookupResult] = []
    driver = Process(sim, _lookup_stream(sim, job, lookups, spacing, bits,
                                         substream(seed, "workload"), results),
                     name="workload.measured")
    driver.start(delay=measure_start)

    # Run until the measured workload drains (lookups take several RTTs each,
    # so a fixed horizon would truncate the stream); a hard cap bounds runaway.
    hard_cap = measure_start + lookups * (spacing + 30.0) + 300.0
    while not driver.done.done() and sim.now < hard_cap:
        sim.run(until=min(hard_cap, sim.now + 60.0))

    churn_manager = controller.churn_managers.get(job.job_id)
    rpc_totals = {"calls_sent": 0, "calls_received": 0, "retries": 0,
                  "timeouts": 0, "remote_errors": 0, "send_failures": 0}
    for instance in job.live_instances():
        stats = instance.rpc.stats
        for key in rpc_totals:
            rpc_totals[key] += getattr(stats, key)
    report = {
        "scenario": "chord",
        "seed": seed,
        "kernel": kernel,
        "nodes": nodes,
        "hosts": host_count,
        "bits": bits,
        "topology": topology.describe(),
        "virtual_time": sim.now,
        "events_executed": sim.executed_events,
        "job": controller.job_status(job),
        "churn": None,
        "under_churn": _summarise(probe_results) if probe_results else None,
        "measured": _summarise(results),
        "network": {
            "messages_sent": network.stats.messages_sent,
            "messages_delivered": network.stats.messages_delivered,
            "messages_dropped": network.stats.messages_dropped,
            "bytes_sent": network.stats.bytes_sent,
        },
        #: aggregated over instances alive at the end of the run
        "rpc": rpc_totals,
        "log_records_collected": len(controller.logs.get(job.job_id, [])),
    }
    if churn_manager is not None:
        stats = churn_manager.stats
        report["churn"] = {
            "actions_applied": stats.actions_applied,
            "joined": stats.instances_joined,
            "left": stats.instances_left,
            "crashed": stats.instances_crashed,
        }
    return report


def _print_report(report: dict) -> None:
    job = report["job"]
    measured = report["measured"]
    print(f"=== SPLAY scenario: {report['scenario']} "
          f"(seed={report['seed']}, nodes={report['nodes']}, hosts={report['hosts']}, "
          f"bits={report['bits']}) ===")
    print(f"virtual time: {report['virtual_time']:.0f}s   "
          f"events: {report['events_executed']}")
    print(f"job: state={job['state']} live={job['live_instances']} "
          f"started={job['instances_started']} "
          f"churn(+{job['churn_joins']}/-{job['churn_leaves']}"
          f"/x{job['churn_crashes']}) "
          f"logs={report['log_records_collected']}")
    if report["churn"]:
        churn = report["churn"]
        print(f"churn: {churn['actions_applied']} actions, "
              f"{churn['crashed']} crashed, {churn['left']} left, "
              f"{churn['joined']} joined")
    if report["under_churn"]:
        under = report["under_churn"]
        print(f"lookups under churn: {under['correct']}/{under['issued']} correct "
              f"({100 * under['success_rate']:.1f}%), "
              f"latency p50={under['latency_p50_ms']:.0f}ms "
              f"p95={under['latency_p95_ms']:.0f}ms")
    print(f"measured lookups: {measured['correct']}/{measured['issued']} correct "
          f"-> success rate {100 * measured['success_rate']:.2f}%")
    print(f"lookup latency: mean={measured['latency_mean_ms']:.0f}ms "
          f"p50={measured['latency_p50_ms']:.0f}ms "
          f"p95={measured['latency_p95_ms']:.0f}ms "
          f"max={measured['latency_max_ms']:.0f}ms")
    print(f"lookup hops: mean={measured['hops_mean']:.2f} max={measured['hops_max']}")
    network = report["network"]
    print(f"network: {network['messages_sent']} sent, "
          f"{network['messages_delivered']} delivered, "
          f"{network['messages_dropped']} dropped, "
          f"{network['bytes_sent']} bytes")


# --------------------------------------------------------------------- bench
#: CSV columns emitted by ``scenarios bench`` (one row per grid cell+kernel)
BENCH_CSV_COLUMNS = [
    "row_type", "kernel", "nodes", "churn_rate", "seed",
    "wall_sec", "virtual_time", "events_executed", "events_per_sec",
    "wall_per_virtual_sec",
    "lookups_issued", "lookups_correct", "success_rate",
    "latency_p50_ms", "latency_p95_ms", "hops_mean",
    "rpc_calls_sent", "rpc_retries", "rpc_timeouts",
    "messages_sent", "messages_dropped", "bytes_sent",
    "churn_joins", "churn_leaves", "churn_crashes",
    "report_digest",
]


def _report_digest(report: dict) -> str:
    """Seed-stable digest of a scenario report (kernel choice excluded)."""
    data = {k: v for k, v in report.items() if k != "kernel"}
    encoded = json.dumps(data, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:16]


def _kernel_timer_churn(kernel: str, nodes: int, duration: float = 60.0,
                        seed: int = 7) -> dict:
    """Kernel-isolated benchmark: the scenario's timer workload, no app code.

    Replays the hot event pattern the runtime generates per node — RPC
    timeout timers that are almost always cancelled shortly after (the reply
    arrived), immediate process-step events, and short network-latency
    delays — so the measured events/sec is the queue machinery itself.
    """
    sim = Simulator(seed, kernel=kernel)
    rng = sim.rng

    def noop() -> None:
        return None

    def rpc_fire(index: int) -> None:
        timer = sim.schedule(3.0, noop)  # RPC timeout guard
        if rng.random() < 0.9:
            # the reply arrives: cancel the timeout shortly after issue
            sim.schedule(0.05 + rng.random() * 0.15, timer.cancel)
        sim.schedule(0.0, noop)  # coroutine step
        sim.schedule(0.0, noop)  # future resumption
        sim.schedule(0.01 + rng.random() * 0.2, noop)  # message delivery
        sim.schedule(0.5 + rng.random(), rpc_fire, index)  # next round

    for index in range(nodes):
        sim.schedule(rng.random(), rpc_fire, index)
    start = time.perf_counter()
    sim.run(until=duration)
    wall = time.perf_counter() - start
    return {
        "row_type": "kernel",
        "kernel": kernel,
        "nodes": nodes,
        "churn_rate": "",
        "seed": seed,
        "wall_sec": round(wall, 4),
        "virtual_time": duration,
        "events_executed": sim.executed_events,
        "events_per_sec": round(sim.executed_events / wall, 1) if wall > 0 else 0.0,
        "wall_per_virtual_sec": round(wall / duration, 6),
    }


def _bench_scenario_row(kernel: str, nodes: int, churn_rate: float, seed: int,
                        report: dict, wall: float) -> dict:
    measured = report["measured"]
    network = report["network"]
    job = report["job"]
    virtual = report["virtual_time"]
    return {
        "row_type": "scenario",
        "kernel": kernel,
        "nodes": nodes,
        "churn_rate": churn_rate,
        "seed": seed,
        "wall_sec": round(wall, 4),
        "virtual_time": round(virtual, 3),
        "events_executed": report["events_executed"],
        "events_per_sec": round(report["events_executed"] / wall, 1) if wall > 0 else 0.0,
        "wall_per_virtual_sec": round(wall / virtual, 6) if virtual else 0.0,
        "lookups_issued": measured["issued"],
        "lookups_correct": measured["correct"],
        "success_rate": round(measured["success_rate"], 6),
        "latency_p50_ms": round(measured["latency_p50_ms"], 3),
        "latency_p95_ms": round(measured["latency_p95_ms"], 3),
        "hops_mean": round(measured["hops_mean"], 4),
        "rpc_calls_sent": report["rpc"]["calls_sent"],
        "rpc_retries": report["rpc"]["retries"],
        "rpc_timeouts": report["rpc"]["timeouts"],
        "messages_sent": network["messages_sent"],
        "messages_dropped": network["messages_dropped"],
        "bytes_sent": network["bytes_sent"],
        "churn_joins": job["churn_joins"],
        "churn_leaves": job["churn_leaves"],
        "churn_crashes": job["churn_crashes"],
        "report_digest": _report_digest(report),
    }


def run_bench(nodes_list: List[int], churn_rates: List[float],
              kernels: List[str], seed: int = 0, lookups: int = 100,
              micro_duration: float = 60.0, quiet: bool = False) -> dict:
    """Sweep the scenario grid and the kernel microbenchmark; return the summary.

    For every ``(nodes, churn_rate)`` cell the scenario runs once per kernel
    and the two reports must be byte-identical (``mismatches`` collects any
    divergence — a correctness failure, not a perf number).
    """
    def say(text: str) -> None:
        if not quiet:
            print(text, flush=True)

    rows: List[dict] = []
    mismatches: List[str] = []
    for nodes in nodes_list:
        for rate in churn_rates:
            script = synthetic_churn_script(duration=120.0, period=30.0,
                                            fraction=rate) if rate > 0 else None
            digests = {}
            for kernel in kernels:
                start = time.perf_counter()
                report = run_chord_scenario(nodes=nodes, seed=seed,
                                            churn_script=script,
                                            lookups=lookups, kernel=kernel)
                wall = time.perf_counter() - start
                row = _bench_scenario_row(kernel, nodes, rate, seed, report, wall)
                rows.append(row)
                digests[kernel] = row["report_digest"]
                say(f"scenario nodes={nodes} churn={rate:g} kernel={kernel}: "
                    f"{row['events_per_sec']:.0f} ev/s, "
                    f"success={row['success_rate']:.3f}, wall={wall:.2f}s")
            if len(set(digests.values())) > 1:
                mismatches.append(
                    f"nodes={nodes} churn={rate:g}: kernel reports diverge {digests}")
    for nodes in nodes_list:
        per_kernel = {}
        for kernel in kernels:
            row = _kernel_timer_churn(kernel, nodes, duration=micro_duration)
            rows.append(row)
            per_kernel[kernel] = row["events_per_sec"]
            say(f"kernel-timer-churn nodes={nodes} kernel={kernel}: "
                f"{row['events_per_sec']:.0f} ev/s")
        if "wheel" in per_kernel and "heap" in per_kernel and per_kernel["heap"]:
            say(f"kernel-timer-churn nodes={nodes}: wheel/heap speedup "
                f"{per_kernel['wheel'] / per_kernel['heap']:.2f}x")

    summary = {
        "bench": "kernel",
        "config": {
            "nodes": nodes_list,
            "churn_rates": churn_rates,
            "kernels": kernels,
            "seed": seed,
            "lookups": lookups,
            "micro_duration": micro_duration,
        },
        "rows": rows,
        "speedups": _bench_speedups(rows),
        "mismatches": mismatches,
    }
    return summary


def _bench_speedups(rows: List[dict]) -> dict:
    """wheel-over-heap events/sec ratios, keyed by row type and grid cell."""
    speedups: dict = {"scenario": {}, "kernel": {}}
    by_cell: dict = {}
    for row in rows:
        cell = (row["row_type"], row["nodes"], row.get("churn_rate", ""))
        by_cell.setdefault(cell, {})[row["kernel"]] = row["events_per_sec"]
    for (row_type, nodes, rate), per_kernel in sorted(by_cell.items(), key=str):
        if "wheel" in per_kernel and per_kernel.get("heap"):
            key = f"nodes={nodes}" + (f",churn={rate}" if rate != "" else "")
            speedups[row_type][key] = round(per_kernel["wheel"] / per_kernel["heap"], 3)
    return speedups


def write_bench_csv(path: str, rows: List[dict]) -> None:
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=BENCH_CSV_COLUMNS, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def check_bench_regression(summary: dict, baseline: dict,
                           tolerance: float = 0.30) -> List[str]:
    """Compare events/sec against a committed baseline (same grid cells only).

    Returns a list of human-readable failures for rows whose throughput
    dropped more than ``tolerance`` below the baseline.
    """
    def index(rows: List[dict]) -> dict:
        # The workload signature (lookups, virtual duration) is part of the
        # key: rows are only comparable when they ran the same experiment.
        return {(r["row_type"], r["kernel"], r["nodes"], r.get("churn_rate", ""),
                 r.get("lookups_issued", ""), r.get("virtual_time", "")): r
                for r in rows}

    current = index(summary.get("rows", []))
    failures: List[str] = []
    for key, base_row in index(baseline.get("rows", [])).items():
        row = current.get(key)
        if row is None:
            continue  # baseline covers a larger grid than this run
        base = base_row.get("events_per_sec") or 0.0
        seen = row.get("events_per_sec") or 0.0
        if base > 0 and seen < base * (1.0 - tolerance):
            failures.append(
                f"{key}: {seen:.0f} ev/s is {100 * (1 - seen / base):.0f}% below "
                f"baseline {base:.0f} ev/s (tolerance {100 * tolerance:.0f}%)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.scenarios",
        description="SPLAY reproduction scenarios")
    sub = parser.add_subparsers(dest="scenario", required=True)

    chord = sub.add_parser("chord", help="Chord on a transit-stub network under churn")
    chord.add_argument("--nodes", type=int, default=50, help="Chord instances to deploy")
    chord.add_argument("--hosts", type=int, default=None,
                       help="physical hosts (default: nodes/2, min 8)")
    chord.add_argument("--seed", type=int, default=0, help="root determinism seed")
    chord.add_argument("--churn", action="store_true",
                       help="replay the default churn script against the job")
    chord.add_argument("--churn-script", type=str, default=None, metavar="FILE",
                       help="replay a churn script from FILE instead of the default")
    chord.add_argument("--lookups", type=int, default=200,
                       help="measured lookups after the ring re-converges")
    chord.add_argument("--bits", type=int, default=32, help="identifier width")
    chord.add_argument("--join-window", type=float, default=None,
                       help="joins are staggered over this many seconds "
                            "(default: scales with --nodes)")
    chord.add_argument("--settle", type=float, default=None,
                       help="grace period after churn before measuring "
                            "(default: scales with --nodes)")
    chord.add_argument("--min-success", type=float, default=0.99,
                       help="exit non-zero below this measured success rate")
    chord.add_argument("--kernel", choices=("wheel", "heap"), default="wheel",
                       help="event-queue implementation (results are identical)")

    bench = sub.add_parser(
        "bench", help="sweep nodes x churn-rate grids over both kernels and "
                      "emit CSV + JSON perf numbers")
    bench.add_argument("--nodes", type=int, nargs="+", default=[50, 100, 200],
                       help="ring sizes to sweep")
    bench.add_argument("--churn-rates", type=float, nargs="+", default=[0.0, 0.05],
                       help="fraction of live nodes replaced every 30s "
                            "(0 disables churn)")
    bench.add_argument("--kernels", choices=("wheel", "heap"), nargs="+",
                       default=["wheel", "heap"], help="kernels to compare")
    bench.add_argument("--seed", type=int, default=0, help="root determinism seed")
    bench.add_argument("--lookups", type=int, default=100,
                       help="measured lookups per scenario run")
    bench.add_argument("--micro-duration", type=float, default=60.0,
                       help="virtual seconds of the kernel timer-churn microbench")
    bench.add_argument("--csv", type=str, default="bench_kernel.csv",
                       help="CSV output path")
    bench.add_argument("--json", type=str, default="BENCH_kernel.json",
                       help="JSON summary output path")
    bench.add_argument("--check", type=str, default=None, metavar="BASELINE",
                       help="compare events/sec against a committed baseline "
                            "JSON and exit non-zero on regression")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed fractional events/sec drop for --check")
    bench.add_argument("--quiet", action="store_true", help="suppress progress lines")

    args = parser.parse_args(argv)
    if args.scenario == "bench":
        summary = run_bench(nodes_list=args.nodes, churn_rates=args.churn_rates,
                            kernels=list(dict.fromkeys(args.kernels)), seed=args.seed,
                            lookups=args.lookups, micro_duration=args.micro_duration,
                            quiet=args.quiet)
        write_bench_csv(args.csv, summary["rows"])
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"bench: wrote {len(summary['rows'])} rows to {args.csv} "
              f"and summary to {args.json}")
        for row_type, ratios in summary["speedups"].items():
            for cell, ratio in ratios.items():
                print(f"speedup[{row_type}] {cell}: {ratio:.2f}x")
        status = 0
        if summary["mismatches"]:
            for line in summary["mismatches"]:
                print(f"DETERMINISM FAIL: {line}", file=sys.stderr)
            status = 3
        if args.check:
            try:
                with open(args.check, "r", encoding="utf-8") as handle:
                    baseline = json.load(handle)
            except (OSError, ValueError) as exc:
                print(f"error: cannot read baseline {args.check}: {exc}",
                      file=sys.stderr)
                return 2
            failures = check_bench_regression(summary, baseline,
                                              tolerance=args.tolerance)
            for line in failures:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            if failures:
                status = status or 4
        return status
    if args.scenario == "chord":
        script = None
        if args.churn_script:
            try:
                with open(args.churn_script, "r", encoding="utf-8") as handle:
                    script = handle.read()
            except OSError as exc:
                print(f"error: cannot read churn script: {exc}", file=sys.stderr)
                return 2
            try:
                parse_churn_script(script)
            except ValueError as exc:
                print(f"error: invalid churn script {args.churn_script}: {exc}",
                      file=sys.stderr)
                return 2
        report = run_chord_scenario(
            nodes=args.nodes, hosts=args.hosts, seed=args.seed,
            churn=args.churn, churn_script=script, lookups=args.lookups,
            bits=args.bits, join_window=args.join_window, settle=args.settle,
            kernel=args.kernel)
        _print_report(report)
        ok = report["measured"]["success_rate"] >= args.min_success
        if not ok:
            print(f"FAIL: success rate below {100 * args.min_success:.0f}%",
                  file=sys.stderr)
        return 0 if ok else 2
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
