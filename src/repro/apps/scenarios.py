"""End-to-end experiment scenarios (``python -m repro.apps.scenarios``).

Every registered workload (Chord, Pastry, epidemic gossip, BitTorrent-style
dissemination — see :mod:`repro.apps.registry`) gets a subcommand with the
same deployment/churn/measurement plumbing: deploy through the controller
onto splayd daemons spread over the selected testbed preset (``--testbed``:
transit-stub by default, or cluster / planetlab / mixed — see
:mod:`repro.testbeds`), replay a churn script (``--churn`` /
``--churn-script``) and/or an Overnet-style availability trace
(``--churn-trace``) against the job, then measure the workload once the
system re-converges.  ``--cdf PATH`` dumps the measured latency
distribution as a ``(latency_ms, fraction)`` CSV — the shape of the paper's
Figures 7-13.

Everything is driven by one root seed: topology, placement, join staggering,
churn victim selection and the workload all draw from deterministic
substreams, so a given command line always produces the same report (and
prints the same ``report digest``).

``scenarios bench`` sweeps nodes x churn-rate (and optionally host-count)
grids for any registered workload over both kernels and emits CSV + JSON
perf numbers with a regression gate.  ``--jobs N`` spreads the grid cells
over an N-worker process pool (deterministic columns stay byte-identical
with the serial run); ``--scale`` switches to the large-deployment profile
(Chord at 1k/5k/10k nodes with fixed windows, per-cell peak RSS).
"""

from __future__ import annotations

import argparse
import csv
import json
import math
import sys
import time
from typing import List, Optional

try:  # resource is POSIX-only; peak-RSS columns degrade to 0 elsewhere
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

from repro.apps import harness, registry
# Re-exported for compatibility: the flagship runner and its churn script
# historically lived in this module.
from repro.apps.chord import DEFAULT_CHURN_SCRIPT, run_chord_scenario  # noqa: F401
from repro.core.churn import (
    parse_availability_trace,
    parse_churn_script,
    synthetic_churn_script,
)
from repro.net.bwalloc import allocator_names
from repro.sim.kernel import Simulator
from repro.testbeds import testbed_names

#: historical aliases (the implementations moved to ``repro.apps.harness``)
LookupResult = harness.OpResult
_host_ips = harness.host_ips
_percentile = harness.percentile
_summarise = harness.summarise
_report_digest = harness.report_digest


# ------------------------------------------------------------------ reporting
def _print_report(report: dict, spec: registry.ScenarioSpec) -> None:
    job = report["job"]
    measured = report["measured"]
    label = spec.ops_label
    bits = f", bits={report['bits']}" if report.get("bits") is not None else ""
    print(f"=== SPLAY scenario: {report['scenario']} "
          f"(seed={report['seed']}, nodes={report['nodes']}, "
          f"hosts={report['hosts']}{bits}, "
          f"testbed={report.get('testbed', 'transit-stub')}) ===")
    print(f"virtual time: {report['virtual_time']:.0f}s   "
          f"events: {report['events_executed']}")
    print(f"job: state={job['state']} live={job['live_instances']} "
          f"started={job['instances_started']} "
          f"churn(+{job['churn_joins']}/-{job['churn_leaves']}"
          f"/x{job['churn_crashes']}) "
          f"logs={report['log_records_collected']}")
    shards = (report.get("control_plane") or {}).get("shards") or []
    if shards:
        batches = sum(s["batches_sent"] for s in shards)
        commands = sum(s["commands_sent"] for s in shards)
        print(f"control plane: {len(shards)} shard(s), "
              f"{commands} daemon commands in {batches} batches, "
              f"logs dropped={report.get('log_records_dropped', 0)}")
    if report["churn"]:
        churn = report["churn"]
        hosts = ""
        if churn.get("hosts_failed") or churn.get("hosts_recovered"):
            hosts = (f", {churn.get('hosts_failed', 0)} hosts failed / "
                     f"{churn.get('hosts_recovered', 0)} recovered")
        print(f"churn: {churn['actions_applied']} actions, "
              f"{churn['crashed']} crashed, {churn['left']} left, "
              f"{churn['joined']} joined{hosts}")
    if report["under_churn"]:
        under = report["under_churn"]
        print(f"{label}s under churn: {under['correct']}/{under['issued']} correct "
              f"({100 * under['success_rate']:.1f}%), "
              f"latency p50={under['latency_p50_ms']:.0f}ms "
              f"p95={under['latency_p95_ms']:.0f}ms")
    print(f"measured {label}s: {measured['correct']}/{measured['issued']} correct "
          f"-> success rate {100 * measured['success_rate']:.2f}%")
    print(f"{label} latency: mean={measured['latency_mean_ms']:.0f}ms "
          f"p50={measured['latency_p50_ms']:.0f}ms "
          f"p95={measured['latency_p95_ms']:.0f}ms "
          f"max={measured['latency_max_ms']:.0f}ms")
    print(f"{label} hops: mean={measured['hops_mean']:.2f} max={measured['hops_max']}")
    workload = report.get("workload") or {}
    for key in spec.extra_report_lines:
        if key in workload:
            value = workload[key]
            if isinstance(value, float):
                value = f"{value:.4f}"
            print(f"{spec.name} {key.replace('_', ' ')}: {value}")
    network = report["network"]
    print(f"network: {network['messages_sent']} sent, "
          f"{network['messages_delivered']} delivered, "
          f"{network['messages_dropped']} dropped, "
          f"{network['bytes_sent']} bytes")
    print(f"report digest: {harness.report_digest(report)}")


# --------------------------------------------------------------------- bench
#: CSV columns emitted by ``scenarios bench`` (one row per grid cell+kernel)
BENCH_CSV_COLUMNS = [
    "row_type", "workload", "testbed", "kernel", "nodes", "hosts", "churn_rate",
    "ctl_shards", "bw_alloc", "seed", "seeds", "jobs",
    "wall_sec", "virtual_time", "events_executed", "events_per_sec",
    "events_per_sec_ci95", "wall_per_virtual_sec", "peak_rss_kb",
    "wall_deploy_s", "wall_run_s", "wall_drain_s",
    "lookups_issued", "lookups_correct", "success_rate",
    "latency_p50_ms", "latency_p95_ms", "hops_mean",
    "rpc_calls_sent", "rpc_retries", "rpc_timeouts",
    "messages_sent", "messages_dropped", "bytes_sent",
    "churn_joins", "churn_leaves", "churn_crashes",
    "report_digest",
    "profile_wall_s", "profile_sites", "profile_top_site", "profile_top_share",
]

#: columns that legitimately differ between runs, machines and ``--jobs``
#: settings — everything else must be byte-identical for the same grid cell
#: whatever the worker count (tests compare :func:`deterministic_row_view`)
BENCH_TIMING_COLUMNS = frozenset({
    "wall_sec", "events_per_sec", "events_per_sec_ci95",
    "wall_per_virtual_sec", "peak_rss_kb", "jobs",
    "wall_deploy_s", "wall_run_s", "wall_drain_s",
    "profile_wall_s", "profile_sites", "profile_top_site", "profile_top_share",
})


def deterministic_row_view(row: dict) -> dict:
    """A bench row minus its timing/measurement columns.

    This is the parallelism contract: for the same grid cell this view is
    byte-identical whether the cell ran serially, on a process pool, or on
    another machine.
    """
    return {key: value for key, value in row.items()
            if key not in BENCH_TIMING_COLUMNS}


def _peak_rss_kb() -> int:
    """This process's peak resident set size in KB (0 where unsupported)."""
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KB on Linux
        peak //= 1024
    return int(peak)

#: two-sided 95 % Student-t critical values by degrees of freedom (n - 1);
#: beyond 30 the normal approximation is close enough
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
        13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
        19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
        25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042}


def mean_ci95(values: List[float]) -> tuple:
    """Sample mean and the half-width of its 95 % confidence interval."""
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    t = _T95.get(n - 1, 1.96)
    return mean, t * math.sqrt(variance / n)


#: numeric bench columns averaged over a multi-seed sweep (name -> digits)
_SEED_MEAN_COLUMNS = {
    "wall_sec": 4, "virtual_time": 3, "events_per_sec": 1,
    "wall_per_virtual_sec": 6, "success_rate": 6,
    "latency_p50_ms": 3, "latency_p95_ms": 3, "hops_mean": 4,
}


def _aggregate_seed_rows(per_seed: List[dict]) -> dict:
    """Fold one cell's per-seed rows into one row of means.

    The emitted ``events_per_sec`` is the across-seed mean (what ``--check``
    gates on) with its 95 % CI half-width in ``events_per_sec_ci95``; other
    latency/quality columns are seed means too.  Count-like columns (and the
    ``report_digest``) are kept from the first seed — digests are per-seed
    values and have no meaningful aggregate.
    """
    row = dict(per_seed[0])
    row["seeds"] = len(per_seed)
    row["events_per_sec_ci95"] = 0.0
    if len(per_seed) > 1:
        for key, digits in _SEED_MEAN_COLUMNS.items():
            values = [r[key] for r in per_seed
                      if isinstance(r.get(key), (int, float))]
            if values:
                row[key] = round(sum(values) / len(values), digits)
        row["events_executed"] = round(
            sum(r["events_executed"] for r in per_seed) / len(per_seed))
        _mean, ci = mean_ci95([r["events_per_sec"] for r in per_seed])
        row["events_per_sec_ci95"] = round(ci, 1)
    return row


def _kernel_timer_churn(kernel: str, nodes: int, duration: float = 60.0,
                        seed: int = 7, repeats: int = 3) -> dict:
    """Kernel-isolated benchmark: the scenario's timer workload, no app code.

    Replays the hot event pattern the runtime generates per node — RPC
    timeout timers that are almost always cancelled shortly after (the reply
    arrived), immediate process-step events, and short network-latency
    delays — so the measured events/sec is the queue machinery itself.
    The identical (seeded) event stream runs ``repeats`` times and the best
    wall time is reported: the microbench is short enough that scheduler /
    frequency-scaling noise otherwise dominates the regression gate.
    """
    def noop() -> None:
        return None

    wall = float("inf")
    sim = None
    for _ in range(max(1, repeats)):
        sim = Simulator(seed, kernel=kernel)
        rng = sim.rng

        def rpc_fire(index: int) -> None:
            timer = sim.schedule(3.0, noop)  # RPC timeout guard
            if rng.random() < 0.9:
                # the reply arrives: cancel the timeout shortly after issue
                sim.schedule(0.05 + rng.random() * 0.15, timer.cancel)
            sim.schedule(0.0, noop)  # coroutine step
            sim.schedule(0.0, noop)  # future resumption
            sim.schedule(0.01 + rng.random() * 0.2, noop)  # message delivery
            sim.schedule(0.5 + rng.random(), rpc_fire, index)  # next round

        for index in range(nodes):
            sim.schedule(rng.random(), rpc_fire, index)
        start = time.perf_counter()  # det: ignore[DET102] -- bench wall timing
        sim.run(until=duration)
        wall = min(wall, time.perf_counter() - start)  # det: ignore[DET102] -- bench wall timing
    return {
        "row_type": "kernel",
        "workload": "",
        "testbed": "",
        "kernel": kernel,
        "nodes": nodes,
        "hosts": "",
        "churn_rate": "",
        "ctl_shards": "",
        "seed": seed,
        "seeds": 1,
        "events_per_sec_ci95": "",
        "wall_sec": round(wall, 4),
        "virtual_time": duration,
        "events_executed": sim.executed_events,
        "events_per_sec": round(sim.executed_events / wall, 1) if wall > 0 else 0.0,
        "wall_per_virtual_sec": round(wall / duration, 6),
    }


def _bench_scenario_row(spec: registry.ScenarioSpec, kernel: str, nodes: int,
                        churn_rate: float, seed: int, report: dict,
                        wall: float) -> dict:
    network = report["network"]
    job = report["job"]
    virtual = report["virtual_time"]
    row = {
        "row_type": "scenario",
        "workload": spec.name,
        "testbed": report.get("testbed", "transit-stub"),
        "kernel": kernel,
        "nodes": nodes,
        "hosts": report["hosts"],
        "churn_rate": churn_rate,
        "ctl_shards": report.get("ctl_shards", 1),
        "bw_alloc": (report.get("bw_alloc") or {}).get("allocator", "max-min"),
        "seed": seed,
        "wall_sec": round(wall, 4),
        "virtual_time": round(virtual, 3),
        "events_executed": report["events_executed"],
        "events_per_sec": round(report["events_executed"] / wall, 1) if wall > 0 else 0.0,
        "wall_per_virtual_sec": round(wall / virtual, 6) if virtual else 0.0,
        "rpc_calls_sent": report["rpc"]["calls_sent"],
        "rpc_retries": report["rpc"]["retries"],
        "rpc_timeouts": report["rpc"]["timeouts"],
        "messages_sent": network["messages_sent"],
        "messages_dropped": network["messages_dropped"],
        "bytes_sent": network["bytes_sent"],
        "churn_joins": job["churn_joins"],
        "churn_leaves": job["churn_leaves"],
        "churn_crashes": job["churn_crashes"],
        "report_digest": harness.report_digest(report),
    }
    # Phase wall attribution (deploy vs run vs drain): where the cell's host
    # time went, not how long the experiment was — digest-excluded upstream.
    phase = report.get("phase_wall") or {}
    row["wall_deploy_s"] = phase.get("deploy", "")
    row["wall_run_s"] = phase.get("run", "")
    row["wall_drain_s"] = phase.get("drain", "")
    profile = report.get("profile") or {}
    top = profile["top"][0] if profile.get("top") else {}
    row["profile_wall_s"] = profile.get("wall_s", "")
    row["profile_sites"] = profile.get("sites", "")
    row["profile_top_site"] = top.get("site", "")
    row["profile_top_share"] = top.get("wall_share", "")
    row.update(spec.bench_metrics(report))
    return row


def _bench_task_row(task: dict) -> dict:
    """Execute one bench task descriptor and return its row.

    Top-level (picklable) so ``--jobs N`` can ship tasks to pool workers;
    descriptors are pure data (the workload name, kernel, grid coordinates
    and runner kwargs), so a task produces the same deterministic columns in
    any process.  ``kind`` selects the task type: a ``scenario`` grid cell,
    a ``scale`` profile cell, or the kernel ``micro`` benchmark.
    """
    registry.load_builtin()
    kind = task["kind"]
    if kind == "micro":
        row = _kernel_timer_churn(task["kernel"], task["nodes"],
                                  duration=task["duration"])
    elif kind == "bwalloc":
        row = _bwalloc_step_bench(task["allocator"], task["flows"],
                                  task["mode"], seed=task["seed"],
                                  steps=task["steps"])
    else:
        spec = registry.get_spec(task["workload"])
        start = time.perf_counter()  # det: ignore[DET102] -- bench wall timing
        report = spec.runner(**task["runner_kwargs"])
        wall = time.perf_counter() - start  # det: ignore[DET102] -- bench wall timing
        row = _bench_scenario_row(spec, task["kernel"], task["nodes"],
                                  task["churn_rate"], task["seed"], report, wall)
        if kind == "scale":
            row["row_type"] = "scale"
    # Meaningful per cell only with fresh workers (scale mode); in a serial
    # or shared-worker run this is the process's cumulative high-water mark.
    row["peak_rss_kb"] = _peak_rss_kb()
    for column in ("wall_deploy_s", "wall_run_s", "wall_drain_s",
                   "profile_wall_s", "profile_sites",
                   "profile_top_site", "profile_top_share"):
        row.setdefault(column, "")
    return row


def _run_bench_tasks(tasks: List[dict], jobs: int,
                     fresh_workers: bool = False) -> List[dict]:
    """Run bench tasks serially or on a process pool, preserving task order.

    ``jobs <= 1`` without ``fresh_workers`` runs in-process (the historical
    serial path).  Otherwise a ``ProcessPoolExecutor`` executes the tasks;
    ``map(..., chunksize=1)`` keeps results in submission order, so row
    assembly is identical for any worker count.  ``fresh_workers`` recycles
    the worker after every task (``max_tasks_per_child=1``) so each cell's
    peak RSS is its own; on Python < 3.11 (no such parameter) workers are
    shared and RSS becomes cumulative per worker.
    """
    if jobs <= 1 and not fresh_workers:
        return [_bench_task_row(task) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor

    executor = None
    if fresh_workers:
        try:
            executor = ProcessPoolExecutor(max_workers=max(1, jobs),
                                           max_tasks_per_child=1)
        except TypeError:  # pragma: no cover - Python < 3.11
            executor = None
    if executor is None:
        executor = ProcessPoolExecutor(max_workers=max(1, jobs))
    with executor:
        return list(executor.map(_bench_task_row, tasks, chunksize=1))


def run_bench(nodes_list: List[int], churn_rates: List[float],
              kernels: List[str], seed: int = 0, lookups: int = 100,
              micro_duration: float = 60.0, quiet: bool = False,
              workload: str = "chord",
              hosts_list: Optional[List[Optional[int]]] = None,
              ctl_shards: int = 1, testbed: str = "transit-stub",
              seeds: int = 1, jobs: int = 1, sanitize: bool = False,
              profile: bool = False, gc_policy: str = "tuned",
              store_caches: bool = True) -> dict:
    """Sweep the scenario grid and the kernel microbenchmark; return the summary.

    For every ``(nodes, hosts, churn_rate)`` cell the scenario runs once per
    kernel and the reports must be byte-identical (``mismatches`` collects
    any divergence — a correctness failure, not a perf number).
    ``hosts_list`` adds a host-count sweep dimension (``None`` = the
    workload's default of nodes/2); ``ctl_shards`` runs every scenario cell
    with that many controller front-ends (the digest cross-check still
    applies — shard count must never change workload results); ``testbed``
    selects the environment preset every cell deploys on.  With
    ``seeds > 1`` each cell runs once per root seed (``seed .. seed+N-1``)
    and its row carries the across-seed mean ``events_per_sec`` plus a 95 %
    CI half-width — the kernel digest cross-check then applies per seed.

    ``jobs > 1`` runs the flattened task list (grid cells x kernels x seeds,
    then the microbench cells) on a process pool.  Each task seeds its own
    simulator from pure descriptor data, so every deterministic column (see
    :data:`BENCH_TIMING_COLUMNS` for the exclusions) and every report digest
    is byte-identical with the serial run; only wall-clock-derived numbers
    move.  Progress lines print after the sweep in grid order.
    """
    def say(text: str) -> None:
        if not quiet:
            print(text, flush=True)

    if seeds < 1:
        raise ValueError("bench needs at least one seed")
    if jobs < 1:
        raise ValueError("bench needs at least one worker")
    spec = registry.get_spec(workload)
    hosts_sweep: List[Optional[int]] = hosts_list if hosts_list else [None]
    # Flatten the grid into pure task descriptors first: execution (serial or
    # pooled) is separated from row assembly, which walks the same nested
    # loops over the ordered results so rows come out identical either way.
    tasks: List[dict] = []
    for nodes in nodes_list:
        for hosts in hosts_sweep:
            for rate in churn_rates:
                script = synthetic_churn_script(duration=120.0, period=30.0,
                                                fraction=rate) if rate > 0 else None
                for kernel in kernels:
                    for offset in range(seeds):
                        kwargs = dict(nodes=nodes, hosts=hosts, seed=seed + offset,
                                      churn_script=script, kernel=kernel,
                                      ctl_shards=ctl_shards, testbed=testbed,
                                      sanitize=sanitize, profile=profile,
                                      gc_policy=gc_policy,
                                      store_caches=store_caches)
                        if spec.ops_param is not None:
                            kwargs[spec.ops_param] = lookups
                        tasks.append({"kind": "scenario", "workload": workload,
                                      "kernel": kernel, "nodes": nodes,
                                      "churn_rate": rate, "seed": seed + offset,
                                      "runner_kwargs": kwargs})
    # micro_duration <= 0 skips the kernel microbenchmark entirely
    micro_nodes = nodes_list if micro_duration > 0 else []
    for nodes in micro_nodes:
        for kernel in kernels:
            tasks.append({"kind": "micro", "kernel": kernel, "nodes": nodes,
                          "duration": micro_duration})

    results = iter(_run_bench_tasks(tasks, jobs))
    rows: List[dict] = []
    mismatches: List[str] = []
    for nodes in nodes_list:
        for hosts in hosts_sweep:
            for rate in churn_rates:
                digests = {}
                for kernel in kernels:
                    per_seed = [next(results) for _ in range(seeds)]
                    row = _aggregate_seed_rows(per_seed)
                    row["jobs"] = jobs
                    rows.append(row)
                    digests[kernel] = tuple(r["report_digest"] for r in per_seed)
                    ci = (f" ±{row['events_per_sec_ci95']:.0f}"
                          if seeds > 1 else "")
                    say(f"scenario workload={spec.name} testbed={testbed} "
                        f"nodes={nodes} hosts={row['hosts']} churn={rate:g} "
                        f"kernel={kernel} shards={ctl_shards} seeds={seeds}: "
                        f"{row['events_per_sec']:.0f}{ci} ev/s, "
                        f"success={row['success_rate']:.3f}, "
                        f"wall={row['wall_sec']:.2f}s")
                if len(set(digests.values())) > 1:
                    mismatches.append(
                        f"workload={spec.name} testbed={testbed} nodes={nodes} "
                        f"hosts={hosts} churn={rate:g}: kernel reports "
                        f"diverge {digests}")
    for nodes in micro_nodes:
        per_kernel = {}
        for kernel in kernels:
            row = next(results)
            row["jobs"] = jobs
            rows.append(row)
            per_kernel[kernel] = row["events_per_sec"]
            say(f"kernel-timer-churn nodes={nodes} kernel={kernel}: "
                f"{row['events_per_sec']:.0f} ev/s")
        if "wheel" in per_kernel and "heap" in per_kernel and per_kernel["heap"]:
            say(f"kernel-timer-churn nodes={nodes}: wheel/heap speedup "
                f"{per_kernel['wheel'] / per_kernel['heap']:.2f}x")

    summary = {
        "bench": "kernel",
        "config": {
            "workload": workload,
            "testbed": testbed,
            "nodes": nodes_list,
            "hosts": hosts_list,
            "churn_rates": churn_rates,
            "kernels": kernels,
            "ctl_shards": ctl_shards,
            "seed": seed,
            "seeds": seeds,
            "jobs": jobs,
            "lookups": lookups,
            "micro_duration": micro_duration,
            "sanitize": sanitize,
            "profile": profile,
            "gc_policy": gc_policy,
            "store_caches": store_caches,
        },
        "rows": rows,
        "speedups": _bench_speedups(rows),
        "mismatches": mismatches,
    }
    return summary


# --------------------------------------------------------------------- scale
#: default node counts of the large-deployment profile (``bench --scale``)
DEFAULT_SCALE_NODES = [1000, 5000, 10000]
#: base windows for scale cells at the reference size (1k nodes); unlike the
#: grid bench (whose windows scale linearly with the ring size), scale cells
#: grow these only with log10 of the node count — see :func:`scale_windows` —
#: so a 10k-node cell measures per-event and per-node overhead rather than a
#: proportionally longer experiment, while the join wave still has time to
#: stabilise O(log N) ring state per node
SCALE_JOIN_WINDOW = 30.0
SCALE_SETTLE = 20.0
#: node count whose windows are exactly the base values above
SCALE_REFERENCE_NODES = 1000


def scale_windows(nodes: int) -> tuple:
    """``(join_window, settle)`` for one scale cell, growing with log10(N).

    Chord's per-join stabilisation work is O(log N) (successor/finger
    repair), so a window fixed at the 1k-node value starves large rings:
    joins pile up faster than pointers repair and measured success craters
    (0.47 at 1k fell to 0.22 at 5k+ with flat 30 s/20 s windows).  Growing
    the windows by ``1 + log10(N / 1000)`` — 1k: 30/20, 5k: ~51/34,
    10k: 60/40 — keeps the *per-node* join pressure comparable across the
    sweep without reverting to the grid bench's linear windows, which would
    turn a 10k cell into a 10x-longer experiment and hide per-event cost.
    """
    factor = max(1.0, 1.0 + math.log10(max(1, nodes) / SCALE_REFERENCE_NODES))
    return (round(SCALE_JOIN_WINDOW * factor, 3),
            round(SCALE_SETTLE * factor, 3))


def scale_efficiency(rows: List[dict]) -> Optional[float]:
    """events/sec at the largest node count over events/sec at the smallest.

    The machine-independent flatness number ``bench --scale`` exists to
    produce: 1.0 means per-event cost is constant in N, 0.6 means events at
    the largest scale cost ~1.67x what they cost at the smallest.  ``None``
    when the sweep has fewer than two distinct node counts.
    """
    by_nodes = {row["nodes"]: row["events_per_sec"]
                for row in rows if row.get("row_type") == "scale"}
    if len(by_nodes) < 2:
        return None
    smallest, largest = min(by_nodes), max(by_nodes)
    if not by_nodes[smallest]:
        return None
    return round(by_nodes[largest] / by_nodes[smallest], 4)


def run_scale_bench(scales: Optional[List[int]] = None, jobs: int = 1,
                    seed: int = 0, lookups: int = 100, kernel: str = "wheel",
                    testbed: str = "transit-stub", quiet: bool = False,
                    gc_policy: str = "tuned",
                    store_caches: bool = True) -> dict:
    """The large-deployment profile: Chord at 1k/5k/10k nodes, peak RSS per cell.

    Every cell runs in a *fresh* pool worker (``max_tasks_per_child=1``,
    even with ``jobs=1``) so its ``peak_rss_kb`` is that deployment's own
    high-water mark rather than the run's cumulative maximum.  Rows carry
    ``row_type="scale"`` and flow through the same CSV schema and
    :func:`check_bench_regression` gate as the grid bench — the committed
    ``BENCH_scale.json`` baseline gates both events/sec (floor) and peak
    RSS (ceiling) — plus the scale-only ``scale_efficiency`` summary number
    (largest-over-smallest events/sec ratio) that ``--min-scale-efficiency``
    gates without needing a baseline file.  Join/settle windows grow with
    log10(N) per :func:`scale_windows`; ``gc_policy``/``store_caches``
    forward the perf knobs to every cell (results are byte-identical for
    any setting — that is what the digest column proves).
    """
    def say(text: str) -> None:
        if not quiet:
            print(text, flush=True)

    if jobs < 1:
        raise ValueError("bench needs at least one worker")
    scale_list = list(scales) if scales else list(DEFAULT_SCALE_NODES)
    tasks = []
    for nodes in scale_list:
        join_window, settle = scale_windows(nodes)
        kwargs = dict(nodes=nodes, hosts=None, seed=seed, churn_script=None,
                      kernel=kernel, ctl_shards=1, testbed=testbed,
                      lookups=lookups, join_window=join_window,
                      settle=settle, gc_policy=gc_policy,
                      store_caches=store_caches)
        tasks.append({"kind": "scale", "workload": "chord", "kernel": kernel,
                      "nodes": nodes, "churn_rate": 0.0, "seed": seed,
                      "runner_kwargs": kwargs})
    rows = []
    for row in _run_bench_tasks(tasks, jobs, fresh_workers=True):
        row["seeds"] = 1
        row["jobs"] = jobs
        rows.append(row)
        say(f"scale nodes={row['nodes']} hosts={row['hosts']} kernel={kernel}: "
            f"{row['events_per_sec']:.0f} ev/s, wall={row['wall_sec']:.1f}s "
            f"(deploy={row['wall_deploy_s'] or 0:.1f}s "
            f"run={row['wall_run_s'] or 0:.1f}s "
            f"drain={row['wall_drain_s'] or 0:.1f}s), "
            f"success={row['success_rate']:.3f}, "
            f"peak_rss={row['peak_rss_kb']} KB, "
            f"digest={row['report_digest']}")
    efficiency = scale_efficiency(rows)
    if efficiency is not None:
        say(f"scale efficiency ({max(scale_list)} vs {min(scale_list)} "
            f"nodes): {efficiency:.3f}")
    return {
        "bench": "scale",
        "config": {
            "workload": "chord",
            "testbed": testbed,
            "scales": scale_list,
            "kernel": kernel,
            "seed": seed,
            "lookups": lookups,
            "join_window": SCALE_JOIN_WINDOW,
            "settle": SCALE_SETTLE,
            "windows": {str(nodes): list(scale_windows(nodes))
                        for nodes in scale_list},
            "gc_policy": gc_policy,
            "store_caches": store_caches,
            "jobs": jobs,
        },
        "rows": rows,
        "scale_efficiency": efficiency,
        "speedups": _bench_speedups(rows),
        "mismatches": [],
    }


# -------------------------------------------------------------------- bwalloc
#: concurrent-flow counts of the allocation-step profile (``bench --bwalloc``)
DEFAULT_BWALLOC_FLOWS = [100, 500]


def _bwalloc_step_bench(allocator: str, flows: int, mode: str, seed: int = 7,
                        steps: int = 300, repeats: int = 3) -> dict:
    """Allocation-step microbenchmark: flow churn against one allocator.

    Builds a standalone :class:`~repro.net.bandwidth.BandwidthModel` with one
    10 Mbps host per flow, ramps up to ``flows`` concurrent never-finishing
    transfers with random endpoints, then measures the wall time of ``steps``
    churn steps (cancel one random flow, start a replacement — two rate
    recomputations each).  ``mode`` selects incremental component-walk
    recomputation or the ``--bw-global`` brute force; the reported
    events/sec is *reallocations per second*, the number the incremental
    engine exists to raise.  Incremental cells also verify the final rate
    vector bit-identically matches a global recompute (``rates_match``) —
    the runtime half of the oracle test in ``tests/test_bwalloc.py``.
    """
    from repro.net.bandwidth import BandwidthModel
    from repro.sim.rng import substream

    incremental = mode == "incremental"
    host_count = flows
    ips = harness.host_ips(host_count)
    wall = float("inf")
    rates_match = True
    realloc_steps = 0
    for _ in range(max(1, repeats)):
        sim = Simulator(seed)
        model = BandwidthModel(sim)
        model.configure(allocator=allocator, incremental=incremental)
        for ip in ips:
            model.set_capacity(ip, 10_000_000, 10_000_000)
        rng = substream(seed, "bwalloc-bench", allocator, mode, str(flows))

        def start_flow():
            src = rng.randrange(host_count)
            dst = rng.randrange(host_count - 1)
            if dst >= src:
                dst += 1
            # Large enough that no flow finishes during the measured loop:
            # every recomputation is driven by the churn steps themselves.
            return model.transfer(ips[src], ips[dst], 1e15)

        active = [start_flow() for _ in range(flows)]
        before = model.reallocations
        start = time.perf_counter()  # det: ignore[DET102] -- bench wall timing
        for _ in range(steps):
            victim = active.pop(rng.randrange(len(active)))
            model.cancel_transfer(victim)
            active.append(start_flow())
        elapsed = time.perf_counter() - start  # det: ignore[DET102] -- bench wall timing
        realloc_steps = model.reallocations - before
        wall = min(wall, elapsed)
        if incremental:
            # Oracle cross-check: replaying the final state through a global
            # recompute must reproduce the incremental rates bit for bit.
            expected = [(t.transfer_id, t.rate_bps) for t in model._active]
            model._incremental = False
            model._reallocate()
            got = [(t.transfer_id, t.rate_bps) for t in model._active]
            if got != expected:
                rates_match = False
    return {
        "row_type": "bwalloc",
        "workload": "",
        "testbed": "",
        "kernel": mode,
        "nodes": flows,
        "hosts": host_count,
        "churn_rate": "",
        "ctl_shards": "",
        "bw_alloc": allocator,
        "seed": seed,
        "seeds": 1,
        "events_per_sec_ci95": "",
        "wall_sec": round(wall, 4),
        "virtual_time": "",
        "events_executed": realloc_steps,
        "events_per_sec": round(realloc_steps / wall, 1) if wall > 0 else 0.0,
        "wall_per_virtual_sec": "",
        "success_rate": 1.0 if rates_match else 0.0,
    }


def run_bwalloc_bench(allocators: Optional[List[str]] = None,
                      flows_list: Optional[List[int]] = None,
                      steps: int = 300, seed: int = 7, jobs: int = 1,
                      quiet: bool = False) -> dict:
    """The allocation-step profile: incremental vs global recompute throughput.

    Every ``(allocator, flows)`` cell runs in both recomputation modes; the
    summary's ``speedups["bwalloc"]`` carries the incremental/global
    reallocations-per-second ratio per cell (the machine-independent number
    the CI leg gates with ``--bwalloc-min-speedup``).  Incremental cells
    whose final rates diverge from the global oracle land in ``mismatches``
    — a correctness failure, not a perf number.
    """
    def say(text: str) -> None:
        if not quiet:
            print(text, flush=True)

    if jobs < 1:
        raise ValueError("bench needs at least one worker")
    allocator_list = list(allocators) if allocators else ["max-min"]
    flows_sweep = list(flows_list) if flows_list else list(DEFAULT_BWALLOC_FLOWS)
    tasks = []
    for allocator in allocator_list:
        for flows in flows_sweep:
            for mode in ("incremental", "global"):
                tasks.append({"kind": "bwalloc", "allocator": allocator,
                              "flows": flows, "mode": mode, "seed": seed,
                              "steps": steps})
    results = iter(_run_bench_tasks(tasks, jobs))
    rows: List[dict] = []
    mismatches: List[str] = []
    for allocator in allocator_list:
        for flows in flows_sweep:
            per_mode = {}
            for mode in ("incremental", "global"):
                row = next(results)
                row["jobs"] = jobs
                rows.append(row)
                per_mode[mode] = row["events_per_sec"]
                say(f"bwalloc allocator={allocator} flows={flows} mode={mode}: "
                    f"{row['events_per_sec']:.0f} reallocations/s, "
                    f"wall={row['wall_sec']:.3f}s")
                if mode == "incremental" and row["success_rate"] < 1.0:
                    mismatches.append(
                        f"allocator={allocator} flows={flows}: incremental "
                        f"rates diverge from the global recompute oracle")
            if per_mode.get("global"):
                say(f"bwalloc allocator={allocator} flows={flows}: "
                    f"incremental/global speedup "
                    f"{per_mode['incremental'] / per_mode['global']:.2f}x")
    return {
        "bench": "bwalloc",
        "config": {
            "allocators": allocator_list,
            "flows": flows_sweep,
            "steps": steps,
            "seed": seed,
            "jobs": jobs,
        },
        "rows": rows,
        "speedups": _bench_speedups(rows),
        "mismatches": mismatches,
    }


def _bwalloc_speedup_failures(summary: dict, min_speedup: float) -> List[str]:
    """Cells whose incremental/global ratio falls below ``min_speedup``."""
    failures = []
    for cell, ratio in (summary.get("speedups", {}).get("bwalloc") or {}).items():
        if ratio < min_speedup:
            failures.append(f"{cell}: incremental/global speedup {ratio:.2f}x "
                            f"is below the required {min_speedup:.1f}x")
    return failures


def _bench_speedups(rows: List[dict]) -> dict:
    """Events/sec ratios keyed by row type and grid cell.

    For scenario/kernel/scale rows the ratio is wheel over heap; for
    ``bwalloc`` rows (whose ``kernel`` column carries the recomputation
    mode) it is incremental over global — the number the allocation-step
    CI leg gates.
    """
    speedups: dict = {"scenario": {}, "kernel": {}}
    by_cell: dict = {}
    for row in rows:
        cell = (row["row_type"], row.get("workload", ""), row["nodes"],
                row.get("hosts", ""), row.get("churn_rate", ""),
                row.get("bw_alloc", ""))
        by_cell.setdefault(cell, {})[row["kernel"]] = row["events_per_sec"]
    for (row_type, workload, nodes, hosts, rate, bw_alloc), per_kernel in sorted(
            by_cell.items(), key=str):
        if row_type == "bwalloc":
            if per_kernel.get("global"):
                key = f"allocator={bw_alloc},flows={nodes}"
                speedups.setdefault(row_type, {})[key] = round(
                    per_kernel["incremental"] / per_kernel["global"], 3)
            continue
        if "wheel" in per_kernel and per_kernel.get("heap"):
            key = f"nodes={nodes}"
            if workload:
                key = f"workload={workload}," + key
            if hosts != "":
                key += f",hosts={hosts}"
            if rate != "":
                key += f",churn={rate}"
            speedups.setdefault(row_type, {})[key] = round(
                per_kernel["wheel"] / per_kernel["heap"], 3)
    return speedups


def write_bench_csv(path: str, rows: List[dict]) -> None:
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=BENCH_CSV_COLUMNS, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def check_bench_regression(summary: dict, baseline: dict,
                           tolerance: float = 0.30,
                           rss_tolerance: float = 0.50) -> List[str]:
    """Compare events/sec against a committed baseline (same grid cells only).

    Returns a list of human-readable failures for rows whose throughput
    dropped more than ``tolerance`` below the baseline.  Multi-seed rows
    carry the across-seed *mean* in ``events_per_sec``, so that is what the
    gate compares (seed count is part of the cell signature: a 3-seed mean
    is only compared against a 3-seed baseline).  ``scale`` rows (whose
    ``peak_rss_kb`` is a per-cell measurement from a fresh worker) are
    additionally gated on memory: growing more than ``rss_tolerance`` above
    the baseline's peak RSS is a failure too.
    """
    def index(rows: List[dict]) -> dict:
        # The workload signature (testbed, seeds, lookups, virtual duration)
        # is part of the key: rows are only comparable when they ran the
        # same experiment.
        return {(r["row_type"], r.get("workload", ""), r.get("testbed", ""),
                 r["kernel"], r["nodes"],
                 r.get("hosts", ""), r.get("churn_rate", ""),
                 r.get("ctl_shards", ""), r.get("seeds", ""),
                 r.get("lookups_issued", ""), r.get("virtual_time", "")): r
                for r in rows}

    current = index(summary.get("rows", []))
    failures: List[str] = []
    for key, base_row in index(baseline.get("rows", [])).items():
        row = current.get(key)
        if row is None:
            continue  # baseline covers a larger grid than this run
        base = base_row.get("events_per_sec") or 0.0
        seen = row.get("events_per_sec") or 0.0
        if base > 0 and seen < base * (1.0 - tolerance):
            failures.append(
                f"{key}: {seen:.0f} ev/s is {100 * (1 - seen / base):.0f}% below "
                f"baseline {base:.0f} ev/s (tolerance {100 * tolerance:.0f}%)")
        if row.get("row_type") == "scale":
            base_rss = base_row.get("peak_rss_kb") or 0
            seen_rss = row.get("peak_rss_kb") or 0
            if base_rss > 0 and seen_rss > base_rss * (1.0 + rss_tolerance):
                failures.append(
                    f"{key}: peak RSS {seen_rss} KB is "
                    f"{100 * (seen_rss / base_rss - 1):.0f}% above baseline "
                    f"{base_rss} KB (tolerance {100 * rss_tolerance:.0f}%)")
    return failures


# ----------------------------------------------------------------------- CLI
def _add_common_arguments(parser: argparse.ArgumentParser,
                          spec: registry.ScenarioSpec) -> None:
    parser.add_argument("--nodes", type=int, default=50,
                        help="application instances to deploy")
    parser.add_argument("--hosts", type=int, default=None,
                        help="physical hosts (default: nodes/2, min 8)")
    parser.add_argument("--seed", type=int, default=0, help="root determinism seed")
    parser.add_argument("--churn", action="store_true",
                        help="replay the workload's default churn script")
    parser.add_argument("--churn-script", type=str, default=None, metavar="FILE",
                        help="replay a churn script from FILE instead of the default")
    parser.add_argument("--churn-trace", type=str, default=None, metavar="FILE",
                        help="replay an Overnet-style availability trace "
                             "('host_id start end' lines) as host-level churn")
    parser.add_argument("--testbed", choices=testbed_names(),
                        default="transit-stub",
                        help="deployment environment preset to build")
    parser.add_argument("--join-window", type=float, default=None,
                        help="joins are staggered over this many seconds "
                             "(default: scales with --nodes)")
    parser.add_argument("--settle", type=float, default=None,
                        help="grace period after churn before measuring "
                             "(default: scales with --nodes)")
    parser.add_argument("--duration", choices=("full", "short"), default="full",
                        help="'short' shrinks windows and op counts for CI smoke")
    parser.add_argument("--min-success", type=float,
                        default=spec.default_min_success,
                        help="exit non-zero below this measured success rate")
    parser.add_argument("--kernel", choices=("wheel", "heap"), default="wheel",
                        help="event-queue implementation (results are identical)")
    parser.add_argument("--ctl-shards", type=int, default=1, metavar="N",
                        help="controller front-ends sharing the job store "
                             "(results are identical for any N >= 1)")
    parser.add_argument("--sanitize", action="store_true",
                        help="enable runtime invariant checks (clock "
                             "monotonicity, free-list integrity, future "
                             "legality, listener/bandwidth consistency); "
                             "observation-only, results are identical")
    parser.add_argument("--bw-alloc", choices=allocator_names(),
                        default="max-min", metavar="NAME",
                        help="flow-level bandwidth allocation strategy "
                             f"({', '.join(allocator_names())}; the default "
                             "max-min keeps the historical digests)")
    parser.add_argument("--bw-global", action="store_true",
                        help="recompute every flow's rate on each change "
                             "instead of only the changed flow's connected "
                             "component (bit-identical results, slower)")
    parser.add_argument("--cdf", type=str, default=None, metavar="PATH",
                        help="write the measured latency CDF as "
                             "(latency_ms, fraction) CSV to PATH")
    parser.add_argument("--metrics", action="store_true",
                        help="collect sim-time metrics (counters/gauges/"
                             "histograms, aggregated per job); digest-"
                             "excluded, results are identical")
    parser.add_argument("--metrics-out", type=str, default=None, metavar="FILE",
                        help="write the metrics report section as JSON to "
                             "FILE (implies --metrics)")
    parser.add_argument("--trace-out", type=str, default=None, metavar="FILE",
                        help="record causal RPC/lookup spans and write "
                             "Chrome trace-event JSON (Perfetto-loadable, "
                             "one track per host) to FILE")
    parser.add_argument("--profile", action="store_true",
                        help="attribute wall time and event counts to kernel "
                             "callback sites; prints a top-N table")
    parser.add_argument("--gc-policy", choices=("off", "tuned", "manual"),
                        default="tuned",
                        help="host-interpreter GC discipline (repro.sim."
                             "gcpolicy): 'tuned' freezes the post-deploy "
                             "heap and raises collector thresholds, "
                             "'manual' additionally disables ambient "
                             "collection and collects at drain checkpoints; "
                             "results are byte-identical for any setting")
    parser.add_argument("--no-store-caches", action="store_true",
                        help="disable the job store's incrementally "
                             "maintained alive/live sets and bucketed "
                             "placement (the O(N)-scan kill switch; "
                             "bit-identical results, slower)")
    parser.add_argument("--log-level", choices=("DEBUG", "INFO", "WARN", "ERROR"),
                        default="INFO",
                        help="minimum severity the job's instances record")


def _run_scenario_cli(spec: registry.ScenarioSpec, args: argparse.Namespace) -> int:
    script = None
    if args.churn_script:
        try:
            with open(args.churn_script, "r", encoding="utf-8") as handle:
                script = handle.read()
        except OSError as exc:
            print(f"error: cannot read churn script: {exc}", file=sys.stderr)
            return 2
        try:
            parse_churn_script(script)
        except ValueError as exc:
            print(f"error: invalid churn script {args.churn_script}: {exc}",
                  file=sys.stderr)
            return 2
    trace = None
    if args.churn_trace:
        try:
            with open(args.churn_trace, "r", encoding="utf-8") as handle:
                trace = handle.read()
        except OSError as exc:
            print(f"error: cannot read churn trace: {exc}", file=sys.stderr)
            return 2
        try:
            parse_availability_trace(trace)
        except ValueError as exc:
            print(f"error: invalid churn trace {args.churn_trace}: {exc}",
                  file=sys.stderr)
            return 2
    kwargs = dict(nodes=args.nodes, hosts=args.hosts, seed=args.seed,
                  churn=args.churn, churn_script=script, churn_trace=trace,
                  testbed=args.testbed,
                  join_window=args.join_window, settle=args.settle,
                  kernel=args.kernel, duration=args.duration,
                  ctl_shards=args.ctl_shards, sanitize=args.sanitize,
                  metrics=args.metrics or bool(args.metrics_out),
                  trace_out=args.trace_out, profile=args.profile,
                  log_level=args.log_level, bw_alloc=args.bw_alloc,
                  bw_global=args.bw_global, gc_policy=args.gc_policy,
                  store_caches=not args.no_store_caches)
    kwargs.update(spec.make_kwargs(args))
    report = spec.runner(**kwargs)
    _print_report(report, spec)
    _print_observability(report, args)
    if args.sanitize:
        sanitizer = report.get("sanitizer") or {}
        count = sanitizer.get("violations", 0)
        print(f"sanitizer: {count} violation(s)"
              + (f" {sanitizer.get('by_kind')}" if count else ""))
        for line in sanitizer.get("reports", []):
            print(f"  {line}", file=sys.stderr)
        if count:
            print("FAIL: sanitizer recorded invariant violations", file=sys.stderr)
            _dump_flight_recorder(report)
            return 2
    if args.cdf:
        samples = report.get("cdf_samples_ms", [])
        if samples:
            count = harness.write_cdf(args.cdf, samples)
            print(f"cdf: wrote {count} samples to {args.cdf}")
        else:
            print(f"cdf: no completed {spec.ops_label}s, nothing written to {args.cdf}")
    ok = report["measured"]["success_rate"] >= args.min_success
    if not ok:
        print(f"FAIL: success rate below {100 * args.min_success:.0f}%",
              file=sys.stderr)
        _dump_flight_recorder(report)
    return 0 if ok else 2


def _print_observability(report: dict, args: argparse.Namespace) -> None:
    """Summarise the metrics/trace/profile sections (and write --metrics-out)."""
    metrics = report.get("metrics")
    if metrics:
        kernel = metrics["kernel"]
        network = metrics["network"]
        registry_size = len(metrics["job"]["registry"])
        print(f"metrics: kernel {kernel['events_dispatched']} dispatched "
              f"/ {kernel['events_recycled']} recycled "
              f"/ {kernel['events_cancelled']} cancelled; "
              f"drops loss={network['drops_loss']} "
              f"dead-host={network['drops_dead_host']} "
              f"no-listener={network['drops_no_listener']}; "
              f"{registry_size} job metric(s)")
    if args.metrics_out and metrics:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        print(f"metrics: wrote section to {args.metrics_out}")
    trace = report.get("trace")
    if trace:
        where = (f", written to {trace['written_to']}"
                 if trace.get("written_to") else "")
        print(f"trace: {trace['spans']} span(s) over {trace['hosts']} "
              f"host track(s), {trace['dropped']} dropped{where}")
    profile = report.get("profile")
    if profile:
        from repro.obs import KernelProfiler
        for line in KernelProfiler.format_table(profile):
            print(line)


def _dump_flight_recorder(report: dict) -> None:
    """Print the report's flight-recorder ring (failure context) to stderr."""
    for line in report.get("flight_recorder") or []:
        print(line, file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    registry.load_builtin()
    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.scenarios",
        description="SPLAY reproduction scenarios")
    sub = parser.add_subparsers(dest="scenario", required=True)

    for spec in registry.all_specs():
        scenario_parser = sub.add_parser(spec.name, help=spec.help)
        _add_common_arguments(scenario_parser, spec)
        spec.add_arguments(scenario_parser)

    bench = sub.add_parser(
        "bench", help="sweep nodes x churn-rate (x hosts) grids over both "
                      "kernels and emit CSV + JSON perf numbers")
    bench.add_argument("--workload", choices=registry.scenario_names(),
                       default="chord", help="registered workload to sweep")
    bench.add_argument("--nodes", type=int, nargs="+", default=[50, 100, 200],
                       help="deployment sizes to sweep")
    bench.add_argument("--hosts-list", type=int, nargs="+", default=None,
                       metavar="HOSTS",
                       help="host counts to sweep (default: the workload's "
                            "nodes/2 heuristic only)")
    bench.add_argument("--churn-rates", type=float, nargs="+", default=[0.0, 0.05],
                       help="fraction of live nodes replaced every 30s "
                            "(0 disables churn)")
    bench.add_argument("--kernels", choices=("wheel", "heap"), nargs="+",
                       default=["wheel", "heap"], help="kernels to compare")
    bench.add_argument("--ctl-shards", type=int, default=1, metavar="N",
                       help="controller front-ends per scenario run")
    bench.add_argument("--testbed", choices=testbed_names(),
                       default="transit-stub",
                       help="deployment environment preset for scenario cells")
    bench.add_argument("--seed", type=int, default=0, help="root determinism seed")
    bench.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="seeds per scenario cell; N > 1 emits the "
                            "across-seed mean events/sec ± 95%% CI "
                            "(--check gates on the mean)")
    bench.add_argument("--lookups", type=int, default=100,
                       help="measured operations per scenario run")
    bench.add_argument("--micro-duration", type=float, default=60.0,
                       help="virtual seconds of the kernel timer-churn microbench")
    bench.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run grid cells x seeds on an N-worker process "
                            "pool (deterministic columns and digests are "
                            "byte-identical with --jobs 1)")
    bench.add_argument("--scale", action="store_true",
                       help="large-deployment profile instead of the grid: "
                            "chord at --scales node counts with fixed "
                            "windows, peak RSS per cell (fresh worker each)")
    bench.add_argument("--scales", type=int, nargs="+",
                       default=DEFAULT_SCALE_NODES, metavar="NODES",
                       help="node counts swept by --scale")
    bench.add_argument("--min-scale-efficiency", type=float, default=0.0,
                       metavar="RATIO",
                       help="fail (exit 4) when the --scale sweep's "
                            "largest-over-smallest events/sec ratio is "
                            "below RATIO (baseline-free flatness gate)")
    bench.add_argument("--gc-policy", choices=("off", "tuned", "manual"),
                       default="tuned",
                       help="GC discipline for every scenario/scale cell "
                            "(digests are unchanged)")
    bench.add_argument("--no-store-caches", action="store_true",
                       help="run every scenario/scale cell with the job "
                            "store's cached alive/live sets disabled "
                            "(measures the O(N)-scan kill switch; digests "
                            "are unchanged)")
    bench.add_argument("--bwalloc", action="store_true",
                       help="allocation-step profile instead of the grid: "
                            "flow churn against standalone bandwidth models, "
                            "incremental vs global recompute per cell")
    bench.add_argument("--bwalloc-flows", type=int, nargs="+",
                       default=DEFAULT_BWALLOC_FLOWS, metavar="FLOWS",
                       help="concurrent-flow counts swept by --bwalloc")
    bench.add_argument("--bwalloc-allocators", choices=allocator_names(),
                       nargs="+", default=["max-min"], metavar="NAME",
                       help="allocators swept by --bwalloc")
    bench.add_argument("--bwalloc-steps", type=int, default=300, metavar="N",
                       help="churn steps measured per --bwalloc cell")
    bench.add_argument("--bwalloc-min-speedup", type=float, default=0.0,
                       metavar="RATIO",
                       help="fail (exit 4) when any --bwalloc cell's "
                            "incremental/global speedup is below RATIO")
    bench.add_argument("--csv", type=str, default=None,
                       help="CSV output path (default bench_kernel.csv, or "
                            "bench_scale.csv with --scale)")
    bench.add_argument("--json", type=str, default=None,
                       help="JSON summary output path (default "
                            "BENCH_kernel.json, or BENCH_scale.json "
                            "with --scale)")
    bench.add_argument("--check", type=str, default=None, metavar="BASELINE",
                       help="compare events/sec against a committed baseline "
                            "JSON and exit non-zero on regression")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed fractional events/sec drop for --check")
    bench.add_argument("--rss-tolerance", type=float, default=0.50,
                       help="allowed fractional peak-RSS growth for --check "
                            "of scale rows")
    bench.add_argument("--sanitize", action="store_true",
                       help="run every scenario cell with the runtime "
                            "sanitizer enabled (measures its overhead; "
                            "digests are unchanged)")
    bench.add_argument("--profile", action="store_true",
                       help="run every scenario cell with the kernel "
                            "profiler; adds profile_* columns to the CSV "
                            "(digests are unchanged)")
    bench.add_argument("--quiet", action="store_true", help="suppress progress lines")

    args = parser.parse_args(argv)
    if args.scenario == "bench":
        csv_path = args.csv or ("bench_scale.csv" if args.scale
                                else "bench_bwalloc.csv" if args.bwalloc
                                else "bench_kernel.csv")
        json_path = args.json or ("BENCH_scale.json" if args.scale
                                  else "BENCH_bwalloc.json" if args.bwalloc
                                  else "BENCH_kernel.json")
        if args.bwalloc:
            summary = run_bwalloc_bench(allocators=args.bwalloc_allocators,
                                        flows_list=args.bwalloc_flows,
                                        steps=args.bwalloc_steps,
                                        seed=args.seed, jobs=args.jobs,
                                        quiet=args.quiet)
        elif args.scale:
            summary = run_scale_bench(scales=args.scales, jobs=args.jobs,
                                      seed=args.seed, lookups=args.lookups,
                                      kernel=args.kernels[0],
                                      testbed=args.testbed, quiet=args.quiet,
                                      gc_policy=args.gc_policy,
                                      store_caches=not args.no_store_caches)
        else:
            summary = run_bench(nodes_list=args.nodes, churn_rates=args.churn_rates,
                                kernels=list(dict.fromkeys(args.kernels)),
                                seed=args.seed,
                                lookups=args.lookups,
                                micro_duration=args.micro_duration,
                                quiet=args.quiet, workload=args.workload,
                                hosts_list=args.hosts_list,
                                ctl_shards=args.ctl_shards,
                                testbed=args.testbed, seeds=args.seeds,
                                jobs=args.jobs, sanitize=args.sanitize,
                                profile=args.profile,
                                gc_policy=args.gc_policy,
                                store_caches=not args.no_store_caches)
        write_bench_csv(csv_path, summary["rows"])
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"bench: wrote {len(summary['rows'])} rows to {csv_path} "
              f"and summary to {json_path}")
        for row_type, ratios in summary["speedups"].items():
            for cell, ratio in ratios.items():
                print(f"speedup[{row_type}] {cell}: {ratio:.2f}x")
        status = 0
        if summary["mismatches"]:
            for line in summary["mismatches"]:
                print(f"DETERMINISM FAIL: {line}", file=sys.stderr)
            status = 3
        if args.scale and args.min_scale_efficiency > 0:
            efficiency = summary.get("scale_efficiency")
            if efficiency is None:
                print("PERF REGRESSION: --min-scale-efficiency needs at "
                      "least two distinct --scales node counts",
                      file=sys.stderr)
                status = status or 4
            elif efficiency < args.min_scale_efficiency:
                print(f"PERF REGRESSION: scale_efficiency {efficiency:.3f} "
                      f"is below the required "
                      f"{args.min_scale_efficiency:.2f} (events/sec at the "
                      f"largest scale fell too far below the smallest)",
                      file=sys.stderr)
                status = status or 4
        if args.bwalloc and args.bwalloc_min_speedup > 0:
            failures = _bwalloc_speedup_failures(summary,
                                                 args.bwalloc_min_speedup)
            for line in failures:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            if failures:
                status = status or 4
        if args.check:
            try:
                with open(args.check, "r", encoding="utf-8") as handle:
                    baseline = json.load(handle)
            except (OSError, ValueError) as exc:
                print(f"error: cannot read baseline {args.check}: {exc}",
                      file=sys.stderr)
                return 2
            failures = check_bench_regression(summary, baseline,
                                              tolerance=args.tolerance,
                                              rss_tolerance=args.rss_tolerance)
            for line in failures:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            if failures:
                status = status or 4
        return status
    return _run_scenario_cli(registry.get_spec(args.scenario), args)


if __name__ == "__main__":
    raise SystemExit(main())
