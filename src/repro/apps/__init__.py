"""Reproduced SPLAY applications.

Applications are written against the sandboxed libraries only — they receive
a runtime :class:`~repro.runtime.splayd.Instance` and talk to the world
through ``instance.rpc`` / ``instance.events`` / ``instance.fs`` /
``instance.logger``, never through the raw network.

* :mod:`repro.apps.chord` — the paper's flagship: Chord with join,
  stabilization, finger maintenance and fault-tolerant lookups;
* :mod:`repro.apps.scenarios` — end-to-end experiment entry points
  (``python -m repro.apps.scenarios chord --nodes 50 --churn``).
"""

from repro.apps.chord import ChordNode, LookupFailed, chord_factory

__all__ = ["ChordNode", "LookupFailed", "chord_factory"]
