"""Reproduced SPLAY applications.

Applications are written against the sandboxed libraries only — they receive
a runtime :class:`~repro.runtime.splayd.Instance` and talk to the world
through ``instance.rpc`` / ``instance.events`` / ``instance.fs`` /
``instance.logger``, never through the raw network.

* :mod:`repro.apps.chord` — the paper's flagship: Chord with join,
  stabilization, finger maintenance and fault-tolerant lookups;
* :mod:`repro.apps.pastry` — Pastry prefix routing with leaf sets and
  churn repair;
* :mod:`repro.apps.gossip` — Cyclon membership shuffling plus anti-entropy
  epidemic broadcast;
* :mod:`repro.apps.dissemination` — BitTorrent-style rarest-first chunk
  swarming over the flow-level bandwidth model;
* :mod:`repro.apps.registry` / :mod:`repro.apps.harness` — the pluggable
  scenario registry and the shared deploy/churn/measure/report pipeline;
* :mod:`repro.apps.scenarios` — end-to-end experiment entry points
  (``python -m repro.apps.scenarios chord|pastry|gossip|dissemination``).
"""

from repro.apps.chord import ChordNode, LookupFailed, chord_factory

__all__ = ["ChordNode", "LookupFailed", "chord_factory"]
