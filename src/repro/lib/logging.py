"""The ``log`` library: local and remote (collector-based) logging.

"The log library allows the developer to print information either locally
(screen, file) or, more interestingly, send it over the network to a log
collector managed by the controller.  If need be, the amount of data sent to
the log collector can be restricted by a splayd, as instructed by the
controller."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


class LogLevel(enum.IntEnum):
    """Log severity levels, ordered."""

    DEBUG = 10
    INFO = 20
    WARN = 30
    ERROR = 40

    @classmethod
    def coerce(cls, value: "LogLevel | str | int") -> "LogLevel":
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls[value.upper()]
        return cls(value)


@dataclass(slots=True)
class LogRecord:
    """One structured log entry produced by an application instance.

    Carries the simulated emission time, the severity, the emitting
    instance's ``source`` label and ``host`` address, and — once routed
    through a collector — the job id.  ``fields`` holds optional structured
    key/value context attached at the call site.
    """

    time: float
    level: LogLevel
    source: str
    message: str
    job_id: Optional[int] = None
    #: address of the emitting host (``""`` for loggers outside a daemon)
    host: str = ""
    #: structured context (``logger.info("joined", ring=7)``), or None
    fields: Optional[dict] = None


@dataclass(slots=True)
class LogBudget:
    """Restriction on the amount of data an instance may ship to the collector."""

    max_bytes: Optional[int] = None
    sent_bytes: int = 0
    dropped_records: int = 0

    def admit(self, record_size: int) -> bool:
        if self.max_bytes is not None and self.sent_bytes + record_size > self.max_bytes:
            self.dropped_records += 1
            return False
        self.sent_bytes += record_size
        return True


class SplayLogger:
    """Per-instance logger with local buffering and optional remote shipping.

    Parameters
    ----------
    source:
        Identifier of the emitting instance (e.g. ``"job3/10.0.0.7:30001"``).
    level:
        Minimum severity to record.
    remote_sink:
        Callable invoked with each admitted :class:`LogRecord`; the daemon
        wires this to the controller's log collector.
    budget:
        Restriction (in bytes) on remote shipping, enforced by the daemon.
    clock:
        Callable returning the current virtual time.
    """

    __slots__ = ("source", "host", "level", "remote_sink", "_budget", "clock",
                 "keep_local", "_records", "enabled")

    def __init__(self, source: str, level: LogLevel | str = LogLevel.INFO,
                 remote_sink: Optional[Callable[[LogRecord], None]] = None,
                 budget: Optional[LogBudget] = None,
                 clock: Callable[[], float] = lambda: 0.0,
                 keep_local: int = 1000, host: str = ""):
        self.source = source
        self.host = host
        self.level = LogLevel.coerce(level)
        self.remote_sink = remote_sink
        self._budget = budget
        self.clock = clock
        self.keep_local = keep_local
        # The local buffer and the shipping budget are allocated on first use:
        # at 10k nodes, most instances log a handful of records (or none).
        self._records: Optional[List[LogRecord]] = None
        self.enabled = True

    @property
    def budget(self) -> LogBudget:
        if self._budget is None:
            self._budget = LogBudget()
        return self._budget

    @property
    def records(self) -> List[LogRecord]:
        if self._records is None:
            self._records = []
        return self._records

    # -------------------------------------------------------------- emitters
    def log(self, level: LogLevel | str, message: Any,
            **fields: Any) -> Optional[LogRecord]:
        """Record ``message`` at ``level``; returns the record if admitted.

        Keyword arguments become the record's structured ``fields`` —
        ``logger.info("lookup done", hops=4)`` — shipped to the collector
        with the record itself (the route is unchanged: same sink, same
        bounded queue, same budget).
        """
        if not self.enabled:
            return None
        level = LogLevel.coerce(level)
        if level < self.level:
            return None
        record = LogRecord(time=self.clock(), level=level, source=self.source,
                           message=str(message), host=self.host,
                           fields=fields or None)
        records = self._records
        if records is None:
            records = self._records = []
        records.append(record)
        if len(records) > self.keep_local:
            del records[0]
        if self.remote_sink is not None and self.budget.admit(len(record.message) + 32):
            self.remote_sink(record)
        return record

    def debug(self, message: Any, **fields: Any) -> Optional[LogRecord]:
        return self.log(LogLevel.DEBUG, message, **fields)

    def info(self, message: Any, **fields: Any) -> Optional[LogRecord]:
        return self.log(LogLevel.INFO, message, **fields)

    def warn(self, message: Any, **fields: Any) -> Optional[LogRecord]:
        return self.log(LogLevel.WARN, message, **fields)

    def error(self, message: Any, **fields: Any) -> Optional[LogRecord]:
        return self.log(LogLevel.ERROR, message, **fields)

    print = info  # the paper's applications use log.print

    # --------------------------------------------------------------- control
    def set_level(self, level: LogLevel | str) -> None:
        """Dynamically adjust the minimum severity."""
        self.level = LogLevel.coerce(level)

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def tail(self, count: int = 10) -> List[LogRecord]:
        """The last ``count`` locally buffered records."""
        return self._records[-count:] if self._records else []
