"""The SPLAY standard libraries.

These modules mirror the library stack in Figure 5 of the paper:

* :mod:`repro.lib.serializer` — ``llenc`` + ``json``: message framing and
  data-interchange encoding;
* :mod:`repro.lib.rpc` — remote procedure calls (``call``, ``a_call``,
  ``ping``, :class:`RpcService`);
* :mod:`repro.lib.sbsocket` — the restricted (sandboxed) socket layer;
* :mod:`repro.lib.sbfs` — the sandboxed virtual filesystem;
* :mod:`repro.lib.logging` — local and remote (collector-based) logging;
* :mod:`repro.lib.crypto` — hashing and digest helpers;
* :mod:`repro.lib.misc` — containers, conversions, timers and helpers;
* :mod:`repro.lib.ring` — identifier-ring arithmetic (``between`` et al.).
"""

from repro.lib.ring import between, hash_key, ring_add, ring_distance
from repro.lib.serializer import LLEncStream, SerializationError, decode, encode, estimate_size
from repro.lib.rpc import RpcError, RpcService, RpcStats, RpcTimeout, a_call, call
from repro.lib.sbfs import SandboxedFS, SandboxFSError
from repro.lib.sbsocket import (
    RestrictedSocket,
    SocketPolicy,
    SocketRestrictionError,
    SocketStats,
)
from repro.lib.logging import LogBudget, LogLevel, LogRecord, SplayLogger
from repro.lib import crypto, misc

__all__ = [
    "LLEncStream",
    "LogBudget",
    "LogLevel",
    "LogRecord",
    "RestrictedSocket",
    "RpcError",
    "RpcService",
    "RpcStats",
    "RpcTimeout",
    "SandboxFSError",
    "SandboxedFS",
    "SerializationError",
    "SocketPolicy",
    "SocketRestrictionError",
    "SocketStats",
    "SplayLogger",
    "a_call",
    "between",
    "call",
    "crypto",
    "decode",
    "encode",
    "estimate_size",
    "hash_key",
    "misc",
    "ring_add",
    "ring_distance",
]
