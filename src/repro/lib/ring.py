"""Identifier-ring arithmetic (part of the ``misc`` library in the paper).

The paper's Chord listing relies on ``misc.between_c`` to decide whether an
identifier falls within a (possibly wrapping) interval of the ring.  The same
primitives are used by Pastry's leafset management and by the cooperative web
cache's key placement.
"""

from __future__ import annotations

import hashlib
from typing import Union

Bytes = Union[bytes, str]


def between(value: int, low: int, high: int, include_low: bool = False,
            include_high: bool = False, modulus: int | None = None) -> bool:
    """True if ``value`` lies in the ring interval from ``low`` to ``high``.

    The interval is traversed clockwise from ``low`` to ``high``; it may wrap
    around zero.  When ``low == high`` the interval covers the whole ring
    (excluding the endpoints unless included), which matches the behaviour
    needed by Chord when a node is its own successor.
    """
    if modulus is not None:
        value %= modulus
        low %= modulus
        high %= modulus
    if value == low:
        return include_low or (low == high and include_high)
    if value == high:
        return include_high
    if low == high:
        # Whole-ring interval: everything except the endpoint qualifies.
        return True
    if low < high:
        return low < value < high
    # Wrapping interval.
    return value > low or value < high


def ring_distance(a: int, b: int, bits: int) -> int:
    """Clockwise distance from ``a`` to ``b`` on a ``2**bits`` ring."""
    modulus = 1 << bits
    return (b - a) % modulus


def ring_add(a: int, offset: int, bits: int) -> int:
    """``a + offset`` modulo the ring size."""
    return (a + offset) % (1 << bits)


def hash_key(data: Bytes, bits: int = 160) -> int:
    """Map arbitrary data to a ``bits``-wide identifier using SHA-1.

    This is the standard consistent-hashing step used by Chord/Pastry to
    assign node identifiers (hash of ``ip:port``) and key identifiers (hash
    of the application key).
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    digest = hashlib.sha1(data).digest()
    value = int.from_bytes(digest, "big")
    if bits >= 160:
        return value
    return value >> (160 - bits)


def numeric_distance(a: int, b: int, bits: int) -> int:
    """Shortest distance between two identifiers on a ``2**bits`` ring.

    Unlike :func:`ring_distance` this is direction-free — it is the metric
    Pastry uses for leaf-set membership and final-hop ownership (the node
    *numerically closest* to the key owns it).
    """
    modulus = 1 << bits
    forward = (b - a) % modulus
    return min(forward, modulus - forward)


def shared_prefix_length(a: int, b: int, digits: int, base_bits: int) -> int:
    """Length of the common prefix of two identifiers written in base ``2**base_bits``.

    Used by Pastry's prefix routing: identifiers are treated as ``digits``
    digits of ``base_bits`` bits each (most significant digit first).
    """
    if a == b:
        return digits
    prefix = 0
    for position in range(digits - 1, -1, -1):
        shift = position * base_bits
        digit_a = (a >> shift) & ((1 << base_bits) - 1)
        digit_b = (b >> shift) & ((1 << base_bits) - 1)
        if digit_a != digit_b:
            break
        prefix += 1
    return prefix


def digit_at(identifier: int, position: int, digits: int, base_bits: int) -> int:
    """The ``position``-th most significant digit of ``identifier``.

    ``position`` counts from 0 (most significant) to ``digits - 1``.
    """
    if not 0 <= position < digits:
        raise ValueError(f"digit position out of range: {position}")
    shift = (digits - 1 - position) * base_bits
    return (identifier >> shift) & ((1 << base_bits) - 1)
