"""The ``rpc`` library: remote procedure calls over the restricted socket.

"Communication between remote processes can also use ... RPCs, as this is
the most common paradigm for distributed applications.  Communications use
the sandboxed socket layer.  Errors (timeouts) are reported to the caller."

The service-side object is :class:`RpcService`: it registers named handlers
and dispatches incoming ``rpc`` messages addressed to its endpoint.  The
client side offers two calling conventions mirroring the paper's API:

* ``call`` — *synchronous* from the application's point of view: the
  returned :class:`~repro.sim.futures.Future` is meant to be ``yield``-ed by
  the calling coroutine, which resumes with the remote return value (or has
  :class:`RpcTimeout`/:class:`RpcError` raised at the yield point);
* ``a_call`` — *asynchronous*: the future is observed via callbacks (or
  simply ignored, fire-and-forget);
* ``batch_call`` — several ``(method, *args)`` invocations in one
  request/reply round trip (the wire counterpart of the controller's
  batched daemon commands).

Both take per-call ``timeout`` and ``retries``.  Retries reuse the same call
identifier, so a late reply to an earlier attempt still completes the call
(at-least-once, idempotent-handler semantics — exactly what UDP RPC gives
the original system).  All traffic flows through the
:class:`~repro.lib.sbsocket.RestrictedSocket`, never the raw network, so
socket policies apply uniformly to RPC traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import GeneratorType
from typing import Any, Callable, Dict, Optional

from repro.lib.sbsocket import RestrictedSocket, SocketRestrictionError
from repro.net.address import Address, NodeRef
from repro.net.bwalloc import CONTROL
from repro.net.message import Message
from repro.sim.events_api import Events
from repro.sim.futures import Future, FutureState
from repro.sim.kernel import ScheduledEvent


class RpcError(Exception):
    """A remote handler raised, the method is unknown, or sending failed."""


class RpcTimeout(RpcError):
    """The call received no reply within its timeout (after all retries)."""


@dataclass(slots=True)
class RpcStats:
    """Per-service counters (exposed to the daemon and to tests)."""

    calls_sent: int = 0
    calls_received: int = 0
    replies_sent: int = 0
    replies_received: int = 0
    retries: int = 0
    timeouts: int = 0
    remote_errors: int = 0
    send_failures: int = 0


#: payload keys — kept short since they travel in every RPC message
_CALL, _REPLY = "call", "reply"
_PENDING = FutureState.PENDING


class RpcService:
    """Bidirectional RPC endpoint bound to one restricted socket.

    Parameters
    ----------
    socket:
        The instance's :class:`RestrictedSocket`; the service starts
        listening on it immediately.
    events:
        The instance's :class:`Events` API, used to run generator handlers
        as coroutines and to track timeout timers on the app context.
    default_timeout / default_retries:
        Applied when a call does not specify its own.  ``retries`` counts
        *re*-transmissions: ``retries=2`` means up to three attempts.
    """

    __slots__ = ("socket", "events", "sim", "default_timeout", "default_retries",
                 "_stats", "_handlers", "_pending", "_call_ids", "_metrics",
                 "_tracer")

    def __init__(self, socket: RestrictedSocket, events: Events,
                 default_timeout: float = 3.0, default_retries: int = 1):
        self.socket = socket
        self.events = events
        self.sim = events.sim
        self.default_timeout = default_timeout
        self.default_retries = default_retries
        # Per-instance counters materialise on first touch (services that
        # only ever answer pings pay nothing until then).
        self._stats: Optional[RpcStats] = None
        self._handlers: Dict[str, Callable[..., Any]] = {
            "__ping__": lambda: True,
            "__batch__": self._serve_batch,
        }
        #: call_id -> in-flight _PendingCall
        self._pending: Dict[int, "_PendingCall"] = {}
        # Call ids are per-service: uniqueness is only needed to match replies
        # in our own _pending table, and a process-wide counter would leak
        # nondeterministic payload sizes across co-hosted seeded simulations.
        self._call_ids = 0
        # Observability (repro.obs): the tracer is discovered from the
        # simulator; the per-job metrics registry is bound by the daemon at
        # spawn (the service itself does not know its job).  Both stay None
        # unless explicitly enabled — the hot paths pay one pointer test.
        self._metrics = None
        obs = getattr(events.sim, "_obs", None)
        self._tracer = obs.tracer if obs is not None else None
        socket.listen(self._on_message)
        events.context.add_cleanup(self._cancel_pending)

    def bind_metrics(self, registry) -> None:
        """Attach the job's metrics registry (wired by ``Splayd.spawn``)."""
        self._metrics = registry

    @property
    def stats(self) -> RpcStats:
        stats = self._stats
        if stats is None:
            stats = self._stats = RpcStats()
        return stats

    # ------------------------------------------------------------ server side
    def register(self, name: str, handler: Callable[..., Any]) -> None:
        """Expose ``handler`` under ``name``; generators run as coroutines."""
        self._handlers[name] = handler

    def handler(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Decorator form of :meth:`register` (uses the function name)."""
        self.register(fn.__name__, fn)
        return fn

    def expose(self, obj: Any, names: Optional[list] = None) -> None:
        """Register public bound methods of ``obj`` (or the listed ones)."""
        for name in names or [n for n in dir(obj) if not n.startswith("_")]:
            method = getattr(obj, name)
            if callable(method):
                self.register(name, method)

    def _on_message(self, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, dict) or "rpc" not in payload:
            return  # not RPC traffic; other listeners may handle it
        if payload["rpc"] == _CALL:
            self._serve_call(message, payload)
        elif payload["rpc"] == _REPLY:
            self._accept_reply(payload)

    def _serve_call(self, message: Message, payload: dict) -> None:
        self.stats.calls_received += 1
        call_id = payload.get("id")
        method = payload.get("method", "")
        args = payload.get("args", [])
        handler = self._handlers.get(method)
        if handler is None:
            self._send_reply(message.src, call_id, ok=False,
                             error=f"unknown method: {method}")
            return
        try:
            result = handler(*args)
        except Exception as exc:  # noqa: BLE001 - shipped back to the caller
            self._send_reply(message.src, call_id, ok=False, error=repr(exc))
            return
        tracer = self._tracer
        if _is_generator(result):
            # Coroutine handler: run it on the app context, reply when done.
            started = self.sim.now
            process = self.events.thread(lambda: result,
                                         name=f"{self.events.context.name}.rpc.{method}")

            def _finish(fut: Future) -> None:
                if tracer is not None:
                    tracer.add(self.socket.local.ip, f"serve.{method}",
                               started, self.sim.now - started, cat="rpc")
                if fut.state is FutureState.DONE:
                    self._send_reply(message.src, call_id, ok=True, value=fut.result())
                elif fut.state is FutureState.FAILED:
                    self._send_reply(message.src, call_id, ok=False,
                                     error=repr(fut.exception()))
                # Cancelled (instance killed): no reply — the caller times out,
                # exactly as with a crashed remote process.

            process.done.add_done_callback(_finish)
        else:
            if tracer is not None:
                # Synchronous handler: zero-duration span at the serve instant.
                tracer.add(self.socket.local.ip, f"serve.{method}",
                           self.sim.now, 0.0, cat="rpc")
            self._send_reply(message.src, call_id, ok=True, value=result)

    def _serve_batch(self, calls: list) -> Any:
        """Handler behind :meth:`batch_call`: run the sub-calls in order.

        Runs as a coroutine so generator sub-handlers block only the batch,
        not the simulator.  Each sub-call yields one outcome dict
        (``{"ok": True, "value": ...}`` or ``{"ok": False, "error": ...}``);
        a failing sub-call never aborts the rest of the batch.
        """
        def _run():
            outcomes = []
            for entry in calls:
                method = entry.get("method", "") if isinstance(entry, dict) else ""
                args = entry.get("args", []) if isinstance(entry, dict) else []
                handler = self._handlers.get(method)
                if handler is None:
                    outcomes.append({"ok": False, "error": f"unknown method: {method}"})
                    continue
                try:
                    value = handler(*args)
                    if _is_generator(value):
                        value = yield from value
                except Exception as exc:  # noqa: BLE001 - shipped to the caller
                    outcomes.append({"ok": False, "error": repr(exc)})
                    continue
                outcomes.append({"ok": True, "value": value})
            return outcomes

        return _run()

    def _send_reply(self, dst: Address, call_id: Any, ok: bool,
                    value: Any = None, error: Optional[str] = None) -> None:
        payload: Dict[str, Any] = {"rpc": _REPLY, "id": call_id, "ok": ok}
        if ok:
            payload["value"] = value
        else:
            payload["error"] = error
        try:
            self.socket.send(dst, payload, kind="rpc", priority=CONTROL)
            self.stats.replies_sent += 1
        except SocketRestrictionError:
            # The instance died or hit its budget mid-reply; the caller will
            # observe a timeout, as with any crashed peer.
            self.stats.send_failures += 1

    # ------------------------------------------------------------ client side
    def a_call(self, dst: "Address | NodeRef | dict | str", method: str, *args: Any,
               timeout: Optional[float] = None, retries: Optional[int] = None) -> Future:
        """Asynchronous variant of :meth:`call` (observe the future, or ignore it)."""
        timeout = timeout if timeout is not None else self.default_timeout
        attempts = (retries if retries is not None else self.default_retries) + 1
        self._call_ids = call_id = self._call_ids + 1
        result = Future()
        payload = {"rpc": _CALL, "id": call_id, "method": method, "args": list(args)}
        _PendingCall(self, dst, method, payload, result,
                     timeout, attempts, call_id).attempt()
        return result

    #: ``call`` is the *synchronous* convention from the application's point
    #: of view: the returned future is meant to be ``yield``-ed, so the
    #: calling coroutine resumes with the remote return value (or has
    #: :class:`RpcTimeout`/:class:`RpcError` raised at the yield point).  It
    #: is the very same implementation as :meth:`a_call` — a forwarding
    #: wrapper here cost a measurable slice of every RPC at 10k nodes.
    call = a_call

    def batch_call(self, dst: "Address | NodeRef | dict | str",
                   calls: "list[tuple]", timeout: Optional[float] = None,
                   retries: Optional[int] = None) -> Future:
        """Issue several calls to ``dst`` as one request/reply round trip.

        ``calls`` is a list of ``(method, *args)`` tuples; the future
        resolves to a list of outcome dicts (``{"ok": True, "value": ...}``
        or ``{"ok": False, "error": ...}``), one per sub-call, in order.
        This is the wire-level counterpart of the controller shards'
        per-daemon command batching: one message and one reply amortise the
        round trip over the whole batch, so ``stats.calls_sent`` counts the
        batch as a single call.
        """
        if self._metrics is not None:
            from repro.obs.metrics import COUNT_BOUNDS
            self._metrics.observe("rpc.batch_size", len(calls),
                                  bounds=COUNT_BOUNDS)
        payload = [{"method": call[0], "args": list(call[1:])} for call in calls]
        return self.a_call(dst, "__batch__", payload, timeout=timeout, retries=retries)

    def ping(self, dst: "Address | NodeRef | dict | str",
             timeout: Optional[float] = None) -> Future:
        """Liveness probe: the future completes with ``True``/``False`` (never raises)."""
        result = Future(name="rpc.ping")
        inner = self.a_call(dst, "__ping__", timeout=timeout, retries=0)
        inner.add_done_callback(
            lambda fut: result.set_result(fut.state is FutureState.DONE))
        return result

    def _accept_reply(self, payload: dict) -> None:
        pending = self._pending.pop(payload.get("id"), None)
        if pending is None:
            return  # duplicate reply after a retry already completed the call
        future, timer = pending.result, pending.timer
        # Drop the event back-reference before cancelling: the timer's
        # callback is a bound method holding this _PendingCall, so keeping
        # ``.timer`` set would close a reference cycle that pins the
        # cancelled event past the kernel's refcount-gated recycling check.
        pending.timer = None
        if timer is not None:
            timer.cancel()
        self.stats.replies_received += 1
        if self._metrics is not None or self._tracer is not None:
            self._observe_round_trip(pending)
        if payload.get("ok"):
            future.set_result(payload.get("value"))
        else:
            self.stats.remote_errors += 1
            future.set_exception(RpcError(str(payload.get("error"))))

    def _observe_round_trip(self, pending: "_PendingCall") -> None:
        """Latency histogram + client span for one completed call (cold path)."""
        elapsed = self.sim.now - pending.sent_at
        if self._metrics is not None:
            self._metrics.observe(f"rpc.latency_s.{pending.method}", elapsed)
        tracer = self._tracer
        if tracer is not None:
            args = ({"issued_by": pending.issued_by}
                    if pending.issued_by is not None else None)
            tracer.add(self.socket.local.ip, f"rpc.{pending.method}",
                       pending.sent_at, elapsed, cat="rpc", args=args)

    def _cancel_pending(self) -> None:
        """Instance teardown: cancel timers and outstanding calls."""
        pending, self._pending = self._pending, {}
        for call in pending.values():
            timer, call.timer = call.timer, None
            if timer is not None:
                timer.cancel()
            call.result.cancel()

    @property
    def pending_calls(self) -> int:
        return len(self._pending)


class _PendingCall:
    """One in-flight client call: retry/timeout state without per-call closures.

    ``a_call`` used to close over a state dict and two nested functions;
    building those per call dominated the RPC client path at 10k nodes.  A
    slotted object with two bound-method callbacks carries the same state.
    """

    __slots__ = ("service", "dst", "method", "payload", "result", "timeout",
                 "attempts", "attempts_left", "call_id", "timer", "sent_at",
                 "issued_by")

    def __init__(self, service: RpcService, dst: Any, method: str, payload: dict,
                 result: Future, timeout: float, attempts: int, call_id: int):
        self.service = service
        self.dst = dst
        self.method = method
        self.payload = payload
        self.result = result
        self.timeout = timeout
        self.attempts = attempts
        self.attempts_left = attempts
        self.call_id = call_id
        #: current timeout timer (replaced on every attempt)
        self.timer: Optional[ScheduledEvent] = None
        #: first-attempt issue time — round-trip latency is measured from
        #: here, so retries lengthen (not reset) the observed latency
        self.sent_at = service.sim._now
        # Provenance of the issuing event (tracing only: string formatting
        # per call is not free, so it stays None when the tracer is off).
        tracer = service._tracer
        self.issued_by = tracer.current_label() if tracer is not None else None

    def attempt(self) -> None:
        result = self.result
        if result._state is not _PENDING:
            return
        service = self.service
        stats = service.stats
        self.attempts_left -= 1
        if self.attempts_left < self.attempts - 1:
            stats.retries += 1
        stats.calls_sent += 1
        try:
            service.socket.send(self.dst, self.payload, kind="rpc",
                                priority=CONTROL)
        except SocketRestrictionError as exc:
            stats.send_failures += 1
            service._pending.pop(self.call_id, None)
            result.set_exception(RpcError(f"{self.method} to {self.dst}: {exc}"))
            return
        self.timer = service.sim.schedule(self.timeout, self.on_timeout)
        service._pending[self.call_id] = self

    def on_timeout(self) -> None:
        # The firing event holds our bound method; clear the back-reference
        # so the kernel can recycle it the moment this callback returns
        # (attempt() installs a fresh timer on retry).
        self.timer = None
        result = self.result
        if result._state is not _PENDING:
            return
        if self.attempts_left > 0:
            self.attempt()
            return
        service = self.service
        service.stats.timeouts += 1
        service._pending.pop(self.call_id, None)
        if service._metrics is not None:
            service._metrics.inc(f"rpc.timeout.{self.method}")
        tracer = service._tracer
        if tracer is not None:
            tracer.add(service.socket.local.ip, f"rpc.{self.method}.timeout",
                       self.sent_at, service.sim.now - self.sent_at, cat="rpc",
                       args=({"issued_by": self.issued_by}
                             if self.issued_by is not None else None))
        result.set_exception(RpcTimeout(
            f"{self.method} to {self.dst} timed out "
            f"({self.timeout:g}s x {self.attempts} attempts)"))


def call(service: RpcService, dst: Any, method: str, *args: Any, **kwargs: Any) -> Future:
    """Module-level convenience mirroring the paper's ``rpc.call(node, ...)``."""
    return service.call(dst, method, *args, **kwargs)


def a_call(service: RpcService, dst: Any, method: str, *args: Any, **kwargs: Any) -> Future:
    """Module-level convenience mirroring the paper's ``rpc.a_call(node, ...)``."""
    return service.a_call(dst, method, *args, **kwargs)


def _is_generator(value: Any) -> bool:
    return isinstance(value, GeneratorType)
