"""The ``misc`` library: containers, conversions, timers, synchronisation helpers.

The original ``misc`` library "provides common containers, functions for
format conversion, bit manipulation, high-precision timers and distributed
synchronization".  The pieces needed by the reproduced applications and by
the framework are implemented here.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Any, Dict, Generic, Iterator, Optional, Tuple, TypeVar

from repro.lib.ring import between as between  # re-exported, mirrors misc.between_c

K = TypeVar("K")
V = TypeVar("V")

_DURATION_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*(ms|s|m|h|d)?\s*$")
_DURATION_FACTORS = {"ms": 0.001, "s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, None: 1.0}

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*(b|kb|mb|gb)?\s*$", re.IGNORECASE)
_SIZE_FACTORS = {"b": 1, "kb": 1024, "mb": 1024 ** 2, "gb": 1024 ** 3, None: 1}


def parse_duration(text: str | float | int) -> float:
    """Parse durations such as ``"30s"``, ``"5m"``, ``"1h"``, ``"250ms"`` into seconds.

    Bare numbers (or numeric types) are interpreted as seconds — this is the
    format used by the churn script language of Section 3.2.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _DURATION_RE.match(text)
    if not match:
        raise ValueError(f"cannot parse duration: {text!r}")
    value, unit = match.groups()
    return float(value) * _DURATION_FACTORS[unit]


def format_duration(seconds: float) -> str:
    """Human-readable rendering of a duration in seconds."""
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 120.0:
        return f"{seconds:.1f}s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds / 3600.0:.1f}h"


def parse_size(text: str | int) -> int:
    """Parse sizes such as ``"16KB"``, ``"24MB"`` into bytes."""
    if isinstance(text, int):
        return text
    match = _SIZE_RE.match(text)
    if not match:
        raise ValueError(f"cannot parse size: {text!r}")
    value, unit = match.groups()
    return int(float(value) * _SIZE_FACTORS[unit.lower() if unit else None])


def format_size(nbytes: float) -> str:
    """Human-readable rendering of a byte count."""
    for unit, factor in (("GB", 1024 ** 3), ("MB", 1024 ** 2), ("KB", 1024)):
        if nbytes >= factor:
            return f"{nbytes / factor:.1f}{unit}"
    return f"{nbytes:.0f}B"


class LRUCache(Generic[K, V]):
    """A fixed-capacity LRU map (used by the cooperative web cache)."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("LRU capacity must be positive")
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.evictions = 0

    def get(self, key: K) -> Optional[V]:
        if key not in self._data:
            return None
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key: K, value: V) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def pop(self, key: K) -> Optional[V]:
        return self._data.pop(key, None)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> Iterator[Tuple[K, V]]:
        return iter(self._data.items())


class TokenBucket:
    """A token bucket used by the restricted socket layer for bandwidth caps.

    Tokens are bytes; the bucket refills at ``rate_bytes_per_s`` up to
    ``capacity_bytes``.  ``consume`` returns the delay (seconds) the caller
    must wait before the requested amount is available, charging the bucket
    immediately (so concurrent callers queue up behind each other).
    """

    def __init__(self, rate_bytes_per_s: float, capacity_bytes: Optional[float] = None):
        if rate_bytes_per_s <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = rate_bytes_per_s
        self.capacity = capacity_bytes if capacity_bytes is not None else rate_bytes_per_s
        self._tokens = self.capacity
        self._last_refill = 0.0

    def consume(self, amount: float, now: float) -> float:
        """Charge ``amount`` bytes; return how long the caller must wait."""
        self._refill(now)
        self._tokens -= amount
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate

    def available(self, now: float) -> float:
        self._refill(now)
        return max(0.0, self._tokens)

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_refill)
        self._last_refill = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)


class Counter:
    """A tiny labelled counter map (stats aggregation helper)."""

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def add(self, label: str, amount: float = 1.0) -> None:
        self._counts[label] = self._counts.get(label, 0.0) + amount

    def get(self, label: str) -> float:
        return self._counts.get(label, 0.0)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self._counts})"


def chunk_count(total_size: int, chunk_size: int) -> int:
    """Number of chunks needed to cover ``total_size`` bytes."""
    if chunk_size <= 0:
        raise ValueError("chunk size must be positive")
    return (total_size + chunk_size - 1) // chunk_size


def flatten(nested: Any) -> list:
    """Flatten one level of nesting from a list of lists."""
    result = []
    for item in nested:
        if isinstance(item, (list, tuple)):
            result.extend(item)
        else:
            result.append(item)
    return result
