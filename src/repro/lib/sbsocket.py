"""The restricted socket layer (``sb_socket``).

The wrapped socket library "includes a security layer that can be controlled
by the local administrator ... and further restricted remotely by the
controller.  This secure layer allows us to limit: (1) the total bandwidth
available for SPLAY applications; (2) the maximum number of sockets used by
an application and (3) the addresses that an application can or cannot
connect to."  The library is also the place where an artificial drop rate can
be injected to emulate lossy links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.core.blacklist import Blacklist
from repro.lib.serializer import estimate_size
from repro.net.address import Address, NodeRef
from repro.net.bwalloc import BULK, LOOKUP
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.events_api import AppContext
from repro.sim.futures import Future
from repro.sim.rng import substream


class SocketRestrictionError(Exception):
    """Raised when an operation would violate the socket policy."""


@dataclass(slots=True)
class SocketPolicy:
    """Restrictions applied to one application instance's networking.

    ``max_total_bytes`` caps the cumulative traffic (the paper limits the
    *total* bandwidth available to applications and kills I/O beyond it);
    ``max_sockets`` caps concurrently open sockets/listeners; ``drop_rate``
    emulates lossy links; ``blacklist`` holds forbidden addresses or masks.
    """

    max_total_bytes: Optional[int] = None
    max_sockets: Optional[int] = None
    drop_rate: float = 0.0
    blacklist: Optional[Blacklist] = None

    def merged_with(self, stricter: "SocketPolicy") -> "SocketPolicy":
        """Combine with controller-imposed restrictions (stricter wins)."""
        if self.blacklist is None:
            blacklist = stricter.blacklist
        elif stricter.blacklist is None:
            blacklist = self.blacklist
        else:
            blacklist = self.blacklist.merged_with(stricter.blacklist)
        return SocketPolicy(
            max_total_bytes=_stricter_limit(self.max_total_bytes, stricter.max_total_bytes),
            max_sockets=_stricter_limit(self.max_sockets, stricter.max_sockets),
            drop_rate=max(self.drop_rate, stricter.drop_rate),
            blacklist=blacklist,
        )


def _stricter_limit(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


@dataclass(slots=True)
class SocketStats:
    """Per-instance traffic accounting, read by the sandbox and the daemon."""

    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    messages_refused: int = 0
    messages_dropped_locally: int = 0


class RestrictedSocket:
    """The application-facing socket API.

    One instance is bound to one application endpoint.  All higher-level
    communication (the RPC library, application message passing, bulk
    transfers) goes through it, so the policy is enforced uniformly.
    """

    __slots__ = ("network", "context", "local", "policy", "stats", "_handlers",
                 "_listening", "_open_sockets", "_seed", "_rng", "_closed")

    def __init__(self, network: Network, context: AppContext, local: Address,
                 policy: Optional[SocketPolicy] = None, seed: int = 0):
        self.network = network
        self.context = context
        self.local = local
        self.policy = policy or SocketPolicy()
        self.stats = SocketStats()
        self._handlers: List[Callable[[Message], Any]] = []
        self._listening = False
        self._open_sockets = 0
        self._seed = seed
        # The drop-rate RNG is derived on first use: a Mersenne Twister state
        # is ~2.5 KB, and most deployments never inject local loss.  The
        # substream depends only on (seed, local), so laziness cannot change
        # any draw.
        self._rng = None
        self._closed = False

    # ------------------------------------------------------------- listening
    def listen(self, handler: Callable[[Message], Any]) -> None:
        """Register ``handler`` for incoming messages on the local endpoint."""
        self._check_closed()
        self._handlers.append(handler)
        if not self._listening:
            self._charge_socket()
            self.network.listen(self.local, self._dispatch, context=self.context)
            self._listening = True

    def _dispatch(self, message: Message) -> None:
        stats = self.stats
        stats.messages_received += 1
        stats.bytes_received += message.size
        handlers = self._handlers
        if len(handlers) == 1:
            # Nearly every socket has exactly one handler (the RPC service);
            # skip the defensive copy that guards mutation during iteration.
            handlers[0](message)
            return
        for handler in list(handlers):
            handler(message)

    # ---------------------------------------------------------------- sending
    def send(self, dst: "Address | NodeRef | dict | str", payload: Any,
             size: Optional[int] = None, kind: str = "data",
             priority: int = LOOKUP) -> Future:
        """Send one message to ``dst``; returns the network delivery future."""
        self._check_closed()
        dst_address = _coerce_address(dst)
        size = size if size is not None else estimate_size(payload)
        self._enforce_destination(dst_address)
        self._enforce_budget(size)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        if self.policy.drop_rate > 0 and self._drop_rng().random() < self.policy.drop_rate:
            # Locally injected loss (lossy-link emulation requested at deploy time).
            self.stats.messages_dropped_locally += 1
            dropped = Future(name="sbsocket.drop")
            dropped.set_result(False)
            return dropped
        return self.network.send(self.local, dst_address, payload, size, kind=kind,
                                 priority=priority)

    def transfer(self, dst: "Address | NodeRef | dict | str", nbytes: float,
                 priority: int = BULK) -> Future:
        """Bulk transfer (charged against the traffic budget)."""
        self._check_closed()
        dst_address = _coerce_address(dst)
        self._enforce_destination(dst_address)
        self._enforce_budget(int(nbytes))
        self._charge_socket()
        self.stats.bytes_sent += int(nbytes)
        future = self.network.transfer(self.local, dst_address, nbytes,
                                       priority=priority)
        future.add_done_callback(lambda _f: self._release_socket())
        return future

    def _drop_rng(self):
        rng = self._rng
        if rng is None:
            rng = self._rng = substream(self._seed, "sbsocket", str(self.local))
        return rng

    # ----------------------------------------------------------- enforcement
    def _enforce_destination(self, dst: Address) -> None:
        blacklist = self.policy.blacklist
        if blacklist is not None and blacklist.is_forbidden(dst.ip):
            self.stats.messages_refused += 1
            raise SocketRestrictionError(f"destination is blacklisted: {dst.ip}")

    def _enforce_budget(self, size: int) -> None:
        limit = self.policy.max_total_bytes
        if limit is not None and self.stats.bytes_sent + size > limit:
            self.stats.messages_refused += 1
            raise SocketRestrictionError(
                f"network budget exceeded: {self.stats.bytes_sent + size} > {limit} bytes")

    def _charge_socket(self) -> None:
        limit = self.policy.max_sockets
        if limit is not None and self._open_sockets + 1 > limit:
            raise SocketRestrictionError(f"too many open sockets (limit {limit})")
        self._open_sockets += 1

    def _release_socket(self) -> None:
        self._open_sockets = max(0, self._open_sockets - 1)

    def _check_closed(self) -> None:
        if self._closed or not self.context.alive:
            raise SocketRestrictionError("socket is closed")

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._listening:
            self.network.unlisten(self.local)
            self._listening = False
        self._handlers.clear()

    @property
    def open_sockets(self) -> int:
        return self._open_sockets


def _coerce_address(value: "Address | NodeRef | dict | str") -> Address:
    if type(value) is NodeRef:
        return value.address  # memoized; the dominant case (RPC destinations)
    if isinstance(value, Address):
        return value
    return NodeRef.coerce(value).address
