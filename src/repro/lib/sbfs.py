"""The sandboxed virtual filesystem (``sb_fs``).

"Our wrapped library simulates a file system inside a single directory.  The
library transparently maps a complete path name to the underlying files that
store the actual data, and applications can only read the files located in
their private directory.  The wrapped file handles enforce additional
restrictions, such as limitations on the disk space and the number of opened
files."

The reproduction keeps file contents in memory (per application instance),
normalises path names so escaping the private directory is impossible, and
enforces the disk-space and open-handle quotas set by the daemon or the
controller.  Exceeding the quotas makes I/O operations fail, exactly as in
the paper ("I/O operations fail (disk or network usage)").
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class SandboxFSError(Exception):
    """Raised when an operation violates the sandbox restrictions."""


@dataclass
class _FileData:
    content: bytearray = field(default_factory=bytearray)

    @property
    def size(self) -> int:
        return len(self.content)


class SandboxedFile:
    """An open file handle inside the sandboxed filesystem."""

    def __init__(self, fs: "SandboxedFS", path: str, data: _FileData, mode: str):
        self._fs = fs
        self.path = path
        self._data = data
        self.mode = mode
        self._position = len(data.content) if "a" in mode else 0
        self.closed = False

    # ------------------------------------------------------------------- I/O
    def read(self, size: int = -1) -> bytes:
        self._check_open()
        if "r" not in self.mode and "+" not in self.mode:
            raise SandboxFSError(f"file not open for reading: {self.path}")
        content = bytes(self._data.content)
        if size is None or size < 0:
            chunk = content[self._position:]
        else:
            chunk = content[self._position:self._position + size]
        self._position += len(chunk)
        return chunk

    def write(self, data: bytes | str) -> int:
        self._check_open()
        if "r" in self.mode and "+" not in self.mode:
            raise SandboxFSError(f"file not open for writing: {self.path}")
        if isinstance(data, str):
            data = data.encode("utf-8")
        new_end = self._position + len(data)
        growth = max(0, new_end - self._data.size)
        self._fs._charge_space(growth)
        if new_end > self._data.size:
            self._data.content.extend(b"\x00" * (new_end - self._data.size))
        self._data.content[self._position:new_end] = data
        self._position = new_end
        return len(data)

    def seek(self, position: int) -> None:
        self._check_open()
        if position < 0:
            raise SandboxFSError("cannot seek before the start of the file")
        self._position = position

    def tell(self) -> int:
        return self._position

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._fs._release_handle(self)

    def __enter__(self) -> "SandboxedFile":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise SandboxFSError(f"file is closed: {self.path}")


class SandboxedFS:
    """An in-memory filesystem confined to one application instance.

    Parameters
    ----------
    max_bytes:
        Disk-space quota; writes beyond it raise :class:`SandboxFSError`.
    max_open_files:
        Maximum number of simultaneously open handles.
    """

    def __init__(self, max_bytes: Optional[int] = None, max_open_files: Optional[int] = None):
        self.max_bytes = max_bytes
        self.max_open_files = max_open_files
        self._files: Dict[str, _FileData] = {}
        self._open_handles: List[SandboxedFile] = []
        self.used_bytes = 0

    # --------------------------------------------------------------- helpers
    @staticmethod
    def _normalise(path: str) -> str:
        """Map any path the application provides into the private directory."""
        cleaned = posixpath.normpath("/" + path.replace("\\", "/"))
        # normpath keeps a leading '/'; strip it so keys are relative, and the
        # '..' components collapse against the sandbox root rather than escape it.
        while cleaned.startswith("/"):
            cleaned = cleaned[1:]
        return cleaned or "."

    def _charge_space(self, growth: int) -> None:
        if growth <= 0:
            return
        if self.max_bytes is not None and self.used_bytes + growth > self.max_bytes:
            raise SandboxFSError(
                f"disk quota exceeded: {self.used_bytes + growth} > {self.max_bytes} bytes")
        self.used_bytes += growth

    def _release_handle(self, handle: SandboxedFile) -> None:
        if handle in self._open_handles:
            self._open_handles.remove(handle)

    # ------------------------------------------------------------------- API
    def open(self, path: str, mode: str = "r") -> SandboxedFile:
        """Open a file; creates it for write/append modes."""
        if not any(flag in mode for flag in "rwa"):
            raise SandboxFSError(f"unsupported open mode: {mode!r}")
        if self.max_open_files is not None and len(self._open_handles) >= self.max_open_files:
            raise SandboxFSError(f"too many open files (limit {self.max_open_files})")
        key = self._normalise(path)
        data = self._files.get(key)
        if data is None:
            if "r" in mode and "+" not in mode and "w" not in mode and "a" not in mode:
                raise SandboxFSError(f"no such file: {path}")
            data = _FileData()
            self._files[key] = data
        if "w" in mode:
            self.used_bytes -= data.size
            data.content = bytearray()
        handle = SandboxedFile(self, key, data, mode)
        self._open_handles.append(handle)
        return handle

    def exists(self, path: str) -> bool:
        return self._normalise(path) in self._files

    def remove(self, path: str) -> None:
        key = self._normalise(path)
        data = self._files.pop(key, None)
        if data is None:
            raise SandboxFSError(f"no such file: {path}")
        self.used_bytes -= data.size

    def listdir(self, prefix: str = "") -> List[str]:
        """List file names under ``prefix`` (flat namespace with '/' separators)."""
        key = self._normalise(prefix) if prefix else ""
        names = []
        for name in sorted(self._files):
            if not key or key == "." or name == key or name.startswith(key + "/"):
                names.append(name)
        return names

    def size(self, path: str) -> int:
        key = self._normalise(path)
        if key not in self._files:
            raise SandboxFSError(f"no such file: {path}")
        return self._files[key].size

    def read_all(self, path: str) -> bytes:
        """Convenience: read an entire file."""
        with self.open(path, "r") as handle:
            return handle.read()

    def write_all(self, path: str, data: bytes | str) -> int:
        """Convenience: replace a file's content."""
        with self.open(path, "w") as handle:
            return handle.write(data)

    @property
    def open_files(self) -> int:
        return len(self._open_handles)

    def wipe(self) -> None:
        """Delete every file (used when the instance is undeployed)."""
        self._files.clear()
        self._open_handles.clear()
        self.used_bytes = 0
