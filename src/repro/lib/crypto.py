"""The ``crypto`` library: hashing, digests, signatures.

The paper lists a crypto library with "cryptographic functions for data
encryption and decryption, secure hashing, signatures, etc.".  Applications
in this reproduction use it for key hashing (DHTs), content digests
(BitTorrent piece verification) and log integrity tags.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from typing import Union

Bytes = Union[bytes, str]


def _as_bytes(data: Bytes) -> bytes:
    return data.encode("utf-8") if isinstance(data, str) else data


def sha1(data: Bytes) -> str:
    """Hex SHA-1 digest (used for DHT keys and BitTorrent piece hashes)."""
    return hashlib.sha1(_as_bytes(data)).hexdigest()


def sha256(data: Bytes) -> str:
    """Hex SHA-256 digest."""
    return hashlib.sha256(_as_bytes(data)).hexdigest()


def sha1_int(data: Bytes, bits: int = 160) -> int:
    """SHA-1 digest truncated to ``bits`` bits, as an integer."""
    value = int.from_bytes(hashlib.sha1(_as_bytes(data)).digest(), "big")
    if bits >= 160:
        return value
    return value >> (160 - bits)


def hmac_sha1(key: Bytes, data: Bytes) -> str:
    """Hex HMAC-SHA1 tag (used for daemon/controller authentication keys)."""
    return _hmac.new(_as_bytes(key), _as_bytes(data), hashlib.sha1).hexdigest()


def verify_hmac_sha1(key: Bytes, data: Bytes, tag: str) -> bool:
    """Constant-time verification of an HMAC-SHA1 tag."""
    return _hmac.compare_digest(hmac_sha1(key, data), tag)


def checksum(data: Bytes) -> int:
    """A fast 32-bit checksum for block integrity checks in dissemination apps."""
    digest = hashlib.sha1(_as_bytes(data)).digest()
    return int.from_bytes(digest[:4], "big")
