"""Serialization: the ``json`` and ``llenc`` libraries.

SPLAY's ``llenc`` library "automatically performs message demarcation,
computing buffer sizes and waiting for all packets of a message before
delivery.  It uses the ``json`` library to automate encoding of any type of
data structures using a compact and standardized data-interchange format."

This module provides:

* :func:`encode` / :func:`decode` — JSON encoding with a length prefix
  (``llenc`` framing) and support for the repository's value types
  (:class:`~repro.net.address.Address`, :class:`~repro.net.address.NodeRef`);
* :func:`estimate_size` — the wire size used by the network models;
* :class:`LLEncStream` — incremental demarcation of messages arriving over a
  stream-oriented transport.
"""

from __future__ import annotations

import json
from typing import Any, List

from repro.net.address import Address, NodeRef

#: framing overhead, in bytes, added to every message (length prefix + separators)
FRAMING_OVERHEAD = 10


class SerializationError(Exception):
    """Raised when a value cannot be encoded or a frame cannot be decoded."""


def _default(obj: Any) -> Any:
    if isinstance(obj, NodeRef):
        return {"__noderef__": obj.to_dict()}
    if isinstance(obj, Address):
        return {"__address__": obj.to_dict()}
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(obj, key=repr)}
    if isinstance(obj, tuple):
        return list(obj)
    raise SerializationError(f"cannot serialise {type(obj).__name__}: {obj!r}")


def _object_hook(data: dict) -> Any:
    if "__noderef__" in data:
        return NodeRef.coerce(data["__noderef__"])
    if "__address__" in data:
        inner = data["__address__"]
        return Address(inner["ip"], int(inner["port"]))
    if "__set__" in data:
        return set(data["__set__"])
    return data


def dumps(value: Any) -> str:
    """JSON-encode ``value`` (the ``json`` library)."""
    try:
        return json.dumps(value, default=_default, separators=(",", ":"), sort_keys=False)
    except (TypeError, ValueError) as exc:
        raise SerializationError(str(exc)) from exc


def loads(text: str) -> Any:
    """Decode a JSON document produced by :func:`dumps`."""
    try:
        return json.loads(text, object_hook=_object_hook)
    except json.JSONDecodeError as exc:
        raise SerializationError(str(exc)) from exc


def encode(value: Any) -> bytes:
    """Encode ``value`` as an ``llenc`` frame: ``b"<length>:<json>"``."""
    body = dumps(value).encode("utf-8")
    return str(len(body)).encode("ascii") + b":" + body


def decode(frame: bytes) -> Any:
    """Decode one complete ``llenc`` frame back into a Python value."""
    header, sep, body = frame.partition(b":")
    if not sep:
        raise SerializationError("malformed llenc frame: missing length separator")
    try:
        length = int(header)
    except ValueError as exc:
        raise SerializationError(f"malformed llenc length: {header!r}") from exc
    if length != len(body):
        raise SerializationError(f"llenc length mismatch: header={length} body={len(body)}")
    return loads(body.decode("utf-8"))


#: Memoized sizes of NodeRef / Address values.  Node references repeat
#: enormously across a run (every RPC envelope, successor list and routing
#: table carries them), so their sizes are computed once per distinct
#: (ip, port, id) and reused — the cached value is exactly what the walk
#: would return.  Bounded: the table is dropped wholesale if it ever grows
#: past the cap (distinct refs scale with nodes, not with messages).
_REF_SIZE_CACHE: dict = {}
_REF_SIZE_CACHE_MAX = 1 << 16


def _approx_size(value: Any) -> int:
    """Approximate the JSON-encoded length of ``value`` without encoding it.

    Called once per simulated message (the network models charge transmission
    time by size), so this avoids the full ``json.dumps`` walk that used to
    dominate the send path.  The estimate tracks the compact-separator JSON
    length closely (string escaping and non-ASCII expansion are ignored);
    determinism is what matters — the same value always yields the same size.

    Scalar children of containers are sized inline (most leaves are strings
    and small ints, and the recursive call per leaf was the top cost of the
    whole send path at high node counts).
    """
    kind = type(value)
    if kind is str:
        return len(value) + 2
    if kind is int:
        return len(str(value))
    if kind is bool or value is None:
        return 4 + (value is False)
    if kind is float:
        return len(repr(value))
    if kind is dict:
        if not value:
            return 2
        total = 1 + len(value)  # braces + (len-1) commas + closing bracket
        for key, item in value.items():
            # JSON stringifies scalar non-str keys ({1: ...} -> {"1": ...})
            if type(key) is not str:
                if key is None or isinstance(key, (int, float, bool)):
                    key = str(key)
                else:
                    raise SerializationError(
                        f"cannot serialise dict key {type(key).__name__}: {key!r}")
            item_kind = type(item)
            if item_kind is str:
                total += len(key) + len(item) + 5  # quotes ×2 + colon
            elif item_kind is int:
                total += len(key) + 3 + len(str(item))
            elif item_kind is NodeRef:
                # Inlined cache hit (the common envelope field); misses and
                # unhashable ids fall back to the full walk below.
                size = (_REF_SIZE_CACHE.get((item.ip, item.port, item.id))
                        if type(item.id) in (int, str, type(None)) else None)
                total += len(key) + 3 + (size if size is not None
                                         else _approx_size(item))
            else:
                total += len(key) + 3 + _approx_size(item)  # quotes + colon
        return total
    if kind is list or kind is tuple:
        if not value:
            return 2
        total = 1 + len(value)
        for item in value:
            item_kind = type(item)
            if item_kind is str:
                total += len(item) + 2
            elif item_kind is int:
                total += len(str(item))
            elif item_kind is NodeRef:
                size = (_REF_SIZE_CACHE.get((item.ip, item.port, item.id))
                        if type(item.id) in (int, str, type(None)) else None)
                total += size if size is not None else _approx_size(item)
            else:
                total += _approx_size(item)
        return total
    if kind is NodeRef:
        # {"__noderef__":{"ip":...,"port":...,"id":...}}
        try:
            key = (value.ip, value.port, value.id)
            size = _REF_SIZE_CACHE.get(key)
        except TypeError:  # unhashable id: size it directly
            return 16 + _approx_size(value.to_dict())
        if size is None:
            size = 16 + _approx_size(value.to_dict())
            if len(_REF_SIZE_CACHE) >= _REF_SIZE_CACHE_MAX:
                _REF_SIZE_CACHE.clear()
            _REF_SIZE_CACHE[key] = size
        return size
    if kind is Address:
        key = (value.ip, value.port)
        size = _REF_SIZE_CACHE.get(key)
        if size is None:
            size = 16 + _approx_size(value.to_dict())
            if len(_REF_SIZE_CACHE) >= _REF_SIZE_CACHE_MAX:
                _REF_SIZE_CACHE.clear()
            _REF_SIZE_CACHE[key] = size
        return size
    if isinstance(value, (set, frozenset)):
        return 12 + _approx_size(sorted(value, key=repr))
    # Unknown types go through the real encoder (raises SerializationError
    # for values that could never be sent anyway).
    return len(dumps(value).encode("utf-8"))


def estimate_size(value: Any) -> int:
    """Wire size (bytes) of ``value`` once serialised, including framing overhead."""
    return _approx_size(value) + FRAMING_OVERHEAD


class LLEncStream:
    """Incremental message demarcation over a byte stream.

    Feed arbitrary chunks of bytes (as they would arrive over TCP); complete
    messages are returned as soon as all their bytes are available.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> List[Any]:
        """Append ``chunk`` and return every complete message decoded so far."""
        self._buffer.extend(chunk)
        messages: List[Any] = []
        while True:
            sep_index = self._buffer.find(b":")
            if sep_index < 0:
                break
            try:
                length = int(bytes(self._buffer[:sep_index]))
            except ValueError as exc:
                raise SerializationError(f"corrupt stream header: {bytes(self._buffer[:sep_index])!r}") from exc
            frame_end = sep_index + 1 + length
            if len(self._buffer) < frame_end:
                break
            body = bytes(self._buffer[sep_index + 1:frame_end])
            del self._buffer[:frame_end]
            messages.append(loads(body.decode("utf-8")))
        return messages

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete message."""
        return len(self._buffer)
