"""Causal tracing: lightweight spans exported as Chrome trace-event JSON.

A span is one completed unit of causally related work — an RPC round trip
(call → handler → reply), a server-side handler, a DHT lookup from issue
through per-hop steps to the claim check — recorded in *simulated* time so
the trace is deterministic per seed.  Spans thread on the per-event
``origin`` provenance introduced with the sanitizer: while tracing is
installed the kernel stamps every scheduled event's ``origin`` with the
label of the event that scheduled it, and span emitters capture
``current_label()`` so the viewer shows who issued each call.

The export is the Chrome trace-event format (``{"traceEvents": [...]}``,
``"X"`` complete events with microsecond ``ts``/``dur``), loadable in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Each host
becomes its own ``pid`` with a ``process_name`` metadata record, so the
viewer renders **one track per host**.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.recorder import FlightRecorder, callback_label


class Tracer:
    """Collects completed spans; bounded so huge runs cannot blow memory."""

    __slots__ = ("clock", "max_spans", "spans", "dropped", "current",
                 "recorder")

    def __init__(self, clock, max_spans: int = 200_000,
                 recorder: Optional[FlightRecorder] = None):
        self.clock = clock              # simulated-time callable
        self.max_spans = max_spans
        # Each span: (start_s, duration_s, host, name, cat, args-or-None)
        self.spans: List[tuple] = []
        self.dropped = 0
        # (time, seq, callback) of the event being dispatched right now;
        # maintained by Observability.run_event for provenance stamping.
        self.current = None
        self.recorder = recorder

    def current_label(self) -> str:
        """Label of the currently executing event (provenance for spans)."""
        if self.current is None:
            return "<external>"
        time_, seq, callback = self.current
        return f"{callback_label(callback)} t={time_:.6f} seq={seq}"

    def add(self, host: str, name: str, start: float, duration: float,
            cat: str = "span", args: Optional[dict] = None) -> None:
        """Record a completed span; also mirrored into the flight recorder."""
        if len(self.spans) < self.max_spans:
            self.spans.append((start, duration, host, name, cat, args))
        else:
            self.dropped += 1
        recorder = self.recorder
        if recorder is not None:
            recorder.push_span(start, host, name, duration)

    def hosts(self) -> List[str]:
        return sorted({span[2] for span in self.spans})

    def summary(self) -> dict:
        """The ``trace`` report section (digest-excluded)."""
        return {
            "enabled": True,
            "spans": len(self.spans),
            "dropped": self.dropped,
            "hosts": len(self.hosts()),
        }

    def chrome_trace(self) -> dict:
        """Spans as a Chrome trace-event document, one pid track per host."""
        hosts = self.hosts()
        pids = {host: index + 1 for index, host in enumerate(hosts)}
        events: List[dict] = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": host}}
            for host, pid in pids.items()
        ]
        for start, duration, host, name, cat, args in self.spans:
            event = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": round(start * 1e6, 3),       # trace-event ts is in us
                "dur": round(duration * 1e6, 3),
                "pid": pids[host],
                "tid": 0,
            }
            if args:
                event["args"] = args
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path: str) -> int:
        """Write the Perfetto-loadable JSON file; returns the span count."""
        document = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, separators=(",", ":"))
            handle.write("\n")
        return len(self.spans)


def load_trace(path: str) -> Dict[str, List[dict]]:
    """Read a trace file back into {host: [complete-events]} (tools/tests)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    events = document["traceEvents"]
    names = {event["pid"]: event["args"]["name"]
             for event in events
             if event.get("ph") == "M" and event.get("name") == "process_name"}
    by_host: Dict[str, List[dict]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        host = names.get(event["pid"], str(event["pid"]))
        by_host.setdefault(host, []).append(event)
    return by_host
