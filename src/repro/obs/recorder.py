"""Flight recorder: a bounded ring of the last N dispatched events and spans.

Post-mortem context for failed runs: when a sanitizer violation fires, a
scenario misses ``--min-success``, or the drain deadline overruns, the ring
is rendered oldest-to-newest so CI logs show *what the simulation was doing*
right before the failure — with the per-event ``origin`` provenance stamped
by the sanitizer or tracer.

The ring must never pin ``ScheduledEvent`` objects: the kernels recycle
fired events through a free list gated on ``sys.getrefcount``, so holding a
reference would silently disable recycling (see ``sim/sanitizer.py``).
Entries therefore store plain tuples of scalars plus the *callback* object
(bound methods reference their instance, never the event), and are rendered
lazily only when a dump is actually requested.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


def callback_label(callback) -> str:
    """``module:qualname`` for an event callback (mirrors the sanitizer)."""
    func = getattr(callback, "__func__", callback)
    module = getattr(func, "__module__", "?")
    name = getattr(func, "__qualname__", repr(func))
    return f"{module}:{name}"


class FlightRecorder:
    """Fixed-capacity ring buffer of recent events and spans."""

    __slots__ = ("capacity", "_ring", "_next", "total")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._ring: List[Optional[Tuple]] = [None] * capacity
        self._next = 0          # index the next entry lands in
        self.total = 0          # entries ever pushed (>= live count)

    def push_event(self, time: float, seq: int, callback, origin) -> None:
        """Record a dispatched event. Hot path: one tuple + two int ops."""
        self._ring[self._next] = ("event", time, seq, callback, origin)
        self._next = (self._next + 1) % self.capacity
        self.total += 1

    def push_span(self, time: float, host: str, name: str,
                  duration: float) -> None:
        """Record a completed span (RPC round trip, lookup, handler)."""
        self._ring[self._next] = ("span", time, host, name, duration)
        self._next = (self._next + 1) % self.capacity
        self.total += 1

    def __len__(self) -> int:
        return min(self.total, self.capacity)

    def entries(self) -> List[Tuple]:
        """Live entries, oldest first (raw tuples)."""
        if self.total < self.capacity:
            return [entry for entry in self._ring[:self._next]
                    if entry is not None]
        return ([entry for entry in self._ring[self._next:]]
                + [entry for entry in self._ring[:self._next]])

    def snapshot(self, last: Optional[int] = None) -> List[str]:
        """Rendered entries, oldest first; optionally only the last ``last``."""
        entries = self.entries()
        if last is not None:
            entries = entries[-last:]
        return [self._render(entry) for entry in entries]

    @staticmethod
    def _render(entry: Tuple) -> str:
        kind = entry[0]
        if kind == "event":
            _, time, seq, callback, origin = entry
            line = f"event t={time:.6f} seq={seq} {callback_label(callback)}"
            if origin:
                line += f" [{origin}]"
            return line
        _, time, host, name, duration = entry
        return f"span  t={time:.6f} host={host} {name} dur={duration * 1e3:.3f}ms"

    def dump_lines(self, last: Optional[int] = None,
                   header: str = "flight recorder") -> List[str]:
        rendered = self.snapshot(last=last)
        lines = [f"{header}: last {len(rendered)} of {self.total} entries"]
        lines.extend(f"  {line}" for line in rendered)
        return lines
