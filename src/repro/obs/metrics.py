"""Deterministic metrics primitives: counters, gauges and log-bucket histograms.

The measurement half of the paper's pitch ("the platform does deployment,
log collection *and measurement*"): a small registry of named metrics whose
every timestamp comes from the *simulated* clock, so a snapshot is a pure
function of the seed — byte-identical across kernels, shard counts and
machines.  Histograms use **fixed log-scaled bucket bounds** computed once
at construction (:func:`log_bucket_bounds`), never adapted to the data, so
two runs of the same seed fill exactly the same buckets.

Nothing here draws randomness, schedules events or reads wall clocks; the
registry is observation-only by construction and its report section is
digest-excluded anyway (see ``DIGEST_EXCLUDED_KEYS`` in the harness).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence


def log_bucket_bounds(lo: float, hi: float, per_decade: int = 4) -> List[float]:
    """Fixed log-scaled bucket upper bounds covering ``[lo, hi]``.

    Bounds sit at ``10 ** (k / per_decade)`` for every integer ``k`` with
    ``lo <= bound <= hi`` (``lo`` and ``hi`` themselves are always included
    as the first and last bound).  Values above the last bound land in the
    histogram's overflow bucket.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("log buckets need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    import math

    bounds: List[float] = [lo]
    k = math.ceil(math.log10(lo) * per_decade)
    while True:
        bound = 10.0 ** (k / per_decade)
        if bound > hi:
            break
        if bound > bounds[-1]:
            bounds.append(bound)
        k += 1
    if bounds[-1] < hi:
        bounds.append(hi)
    return bounds


#: default bounds for latency-in-seconds histograms: 0.1 ms .. 100 s
LATENCY_BOUNDS_S = log_bucket_bounds(1e-4, 100.0)

#: default bounds for size/count histograms: 1 .. 1e6
COUNT_BOUNDS = log_bucket_bounds(1.0, 1e6, per_decade=3)


class Counter:
    """A monotonically increasing counter (sim-time stamped)."""

    __slots__ = ("name", "value", "last_update")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        #: simulated time of the last increment (deterministic per seed)
        self.last_update = 0.0

    def inc(self, amount: int = 1, now: float = 0.0) -> None:
        self.value += amount
        self.last_update = now

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value,
                "last_update": round(self.last_update, 6)}


class Gauge:
    """A value that can go up and down (sim-time stamped)."""

    __slots__ = ("name", "value", "last_update")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.last_update = 0.0

    def set(self, value: float, now: float = 0.0) -> None:
        self.value = value
        self.last_update = now

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value,
                "last_update": round(self.last_update, 6)}


class Histogram:
    """Fixed-bound log-bucket histogram with exact sum/min/max.

    ``bounds`` are *upper* bucket bounds (inclusive); one overflow bucket
    catches everything above the last bound, so ``len(counts) ==
    len(bounds) + 1``.  Percentiles are estimated as the upper bound of the
    bucket containing the requested rank (conservative: never below the
    true percentile by more than one bucket's width).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max",
                 "last_update")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.bounds: List[float] = list(bounds if bounds is not None
                                        else LATENCY_BOUNDS_S)
        if self.bounds != sorted(self.bounds) or len(set(self.bounds)) != len(self.bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {name}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0
        self.last_update = 0.0

    def observe(self, value: float, now: float = 0.0) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        if self.count == 0 or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.count += 1
        self.total += value
        self.last_update = now

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` falls into (tests / bucket math)."""
        return bisect_left(self.bounds, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Upper bound of the bucket holding the ``fraction`` rank."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(fraction * self.count + 0.999999))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max  # overflow bucket: exact max is known
        return self.max

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": round(self.total, 9),
            "mean": round(self.mean, 9),
            "min": round(self.min, 9),
            "max": round(self.max, 9),
            "p50": round(self.percentile(0.50), 9),
            "p95": round(self.percentile(0.95), 9),
            # Sparse encoding: only non-empty buckets (bound -> count);
            # "+Inf" is the overflow bucket.
            "buckets": {
                ("+Inf" if index == len(self.bounds)
                 else repr(self.bounds[index])): c
                for index, c in enumerate(self.counts) if c
            },
            "last_update": round(self.last_update, 6),
        }


class MetricsRegistry:
    """Named metrics for one job (or one deployment), sim-clock stamped.

    Metrics are created lazily on first touch and snapshot in sorted name
    order, so the emitted dict is deterministic per seed.  The ``clock``
    callable must return *simulated* time.
    """

    __slots__ = ("clock", "_metrics")

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock or (lambda: 0.0)
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        return metric  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Gauge(name)
        return metric  # type: ignore[return-value]

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, bounds)
        return metric  # type: ignore[return-value]

    # Convenience emitters used by the instrumented layers --------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount, now=self.clock())

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None) -> None:
        self.histogram(name, bounds).observe(value, now=self.clock())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict:
        """All metrics as plain dicts, in sorted name order (deterministic)."""
        return {name: self._metrics[name].to_dict()  # type: ignore[attr-defined]
                for name in sorted(self._metrics)}
