"""Deterministic observability: metrics, tracing, flight recorder, profiler.

The measurement plane the paper promises the experimenter (deployment, log
collection *and* measurement by the platform).  One :class:`Observability`
handle per deployment sits on ``sim._obs`` — exactly like the sanitizer's
``sim._san`` — and the kernels consult it with a single pointer test per
dispatched event, so everything here is a no-op unless a flag turned it on:

* ``--metrics``: sim-clock-stamped counters/gauges/histograms
  (:mod:`repro.obs.metrics`), aggregated per job through the JobStore.
* ``--trace-out FILE``: causal spans (:mod:`repro.obs.tracing`) exported as
  Perfetto-loadable Chrome trace-event JSON, one track per host, threaded
  on the kernel's per-event ``origin`` provenance.
* ``--profile``: wall-time/event-count attribution to callback sites
  (:mod:`repro.obs.profiler`) — the only sanctioned wall-clock consumer.
* The flight recorder (:mod:`repro.obs.recorder`) is always on when the
  handle is installed (including ``--sanitize``): a bounded ring of recent
  events and spans dumped on sanitizer violations, ``--min-success``
  failures and deadline overruns.

Determinism contract: nothing observed here feeds back into the
simulation — no randomness, no scheduling, no event references held (the
free-list recycling rules of ``sim/sanitizer.py`` apply) — and every
report section this package produces (``metrics``/``trace``/``profile``/
``flight_recorder``) is digest-excluded, so report digests are
byte-identical with and without every flag.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (  # noqa: F401 - re-exported API
    COUNT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BOUNDS_S,
    MetricsRegistry,
    log_bucket_bounds,
)
from repro.net import bwalloc as _bwalloc
from repro.obs.profiler import KernelProfiler
from repro.obs.recorder import FlightRecorder, callback_label
from repro.obs.tracing import Tracer, load_trace  # noqa: F401 - re-exported

__all__ = [
    "Observability", "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "log_bucket_bounds", "LATENCY_BOUNDS_S", "COUNT_BOUNDS",
    "KernelProfiler", "FlightRecorder", "Tracer", "callback_label",
    "load_trace",
]

#: ring entries attached to sanitizer violation reports / failure dumps
RING_CONTEXT = 12


class Observability:
    """Per-deployment observability handle (installed on ``sim._obs``)."""

    __slots__ = ("sim", "metrics_enabled", "tracer", "profiler", "recorder",
                 "_stamp")

    def __init__(self, sim, metrics: bool = False, tracing: bool = False,
                 profile: bool = False, ring_size: int = 256):
        self.sim = sim
        self.metrics_enabled = metrics
        self.recorder = FlightRecorder(ring_size)
        self.tracer = (Tracer(clock=lambda: sim.now, recorder=self.recorder)
                       if tracing else None)
        self.profiler = KernelProfiler() if profile else None
        # Origin-stamping hook the kernel's _insert consults; None keeps the
        # scheduling hot path at a single pointer test when tracing is off.
        self._stamp = self.note_scheduled if tracing else None

    # --------------------------------------------------------------- lifecycle
    def install(self) -> "Observability":
        self.sim._obs = self
        self.sim._obs_stamp = self._stamp
        return self

    def uninstall(self) -> None:
        if getattr(self.sim, "_obs", None) is self:
            self.sim._obs = None
            self.sim._obs_stamp = None

    # ---------------------------------------------------------- kernel hooks
    def note_scheduled(self, event) -> None:
        """Stamp ``event.origin`` with the label of the scheduling event.

        Mirrors the sanitizer's provenance stamp (when the sanitizer is
        installed it stamps instead — one writer per event).  Only wired
        while tracing is on; the stamp itself is a plain string, so the
        event free list keeps recycling normally.
        """
        tracer = self.tracer
        event.origin = f"scheduled t={event.time:.6f} by {tracer.current_label()}"

    def run_event(self, event) -> None:
        """Dispatch one event with observation around the callback.

        Called by the kernels *instead of* ``event.callback(*event.args)``
        when installed.  Everything referencing the event is dropped before
        this frame returns, so the kernels' refcount-gated free-list
        recycling sees exactly the references it expects.
        """
        self.recorder.push_event(event.time, event.seq, event.callback,
                                 event.origin)
        tracer = self.tracer
        if tracer is not None:
            tracer.current = (event.time, event.seq, event.callback)
        profiler = self.profiler
        if profiler is None:
            event.callback(*event.args)
        else:
            clock = profiler.clock
            started = clock()
            event.callback(*event.args)
            profiler.add(event.callback, clock() - started)

    # -------------------------------------------------------------- reporting
    def metrics_section(self, deployment) -> dict:
        """The digest-excluded ``metrics`` report section.

        Pulls the always-on cheap counters (kernel, network, bandwidth,
        RPC stats, control plane) together with the per-job registry the
        instances emitted into through the JobStore.
        """
        sim = deployment.sim
        network = deployment.network
        stats = network.stats
        bandwidth = network.bandwidth
        controller = deployment.controller
        job = deployment.job

        rpc = {key: 0 for key in ("calls_sent", "calls_received",
                                  "replies_sent", "replies_received",
                                  "retries", "timeouts", "remote_errors",
                                  "send_failures")}
        for instance in job.live_instances():
            instance_stats = instance.rpc.stats
            for key in rpc:
                rpc[key] += getattr(instance_stats, key)

        return {
            "enabled": True,
            "kernel": {
                "type": deployment.kernel,
                "events_dispatched": sim.executed_events,
                "events_recycled": sim.recycled_events,
                "events_cancelled": sim.cancelled_events,
            },
            "network": {
                "messages_sent": stats.messages_sent,
                "messages_delivered": stats.messages_delivered,
                "messages_dropped": stats.messages_dropped,
                "drops_loss": stats.drops_loss,
                "drops_dead_host": stats.drops_dead_host,
                "drops_no_listener": stats.drops_no_listener,
                "bytes_sent": stats.bytes_sent,
                "transfers_started": stats.transfers_started,
                "transfers_completed": bandwidth.completed,
                "transfer_bytes_completed": round(bandwidth.bytes_completed),
                "flow_preemptions": bandwidth.preemptions,
            },
            "bandwidth": {
                "allocator": bandwidth.allocator_name,
                "incremental": bandwidth.incremental,
                "reallocations": bandwidth.reallocations,
                "flows_allocated": bandwidth.flows_allocated,
                # Per-priority-class completed bytes and preemptions, plus
                # offered bytes per class (messages and transfers together).
                "by_class": bandwidth.class_stats(),
                "bytes_offered_by_class": {
                    _bwalloc.PRIORITY_NAMES.get(cls, str(cls)): count
                    for cls, count in sorted(stats.bytes_by_class.items())
                },
            },
            "rpc": rpc,
            # GC-policy counters (repro.sim.gcpolicy) when a policy is
            # active: ambient vs explicit collections, freeze size, pauses.
            **({"gc": deployment.gc_policy.section()}
               if getattr(deployment, "gc_policy", None) is not None else {}),
            "control_plane": {
                "shards": [
                    {"name": shard.name,
                     "batches_sent": shard.stats.batches_sent,
                     "commands_sent": shard.stats.commands_sent,
                     "logs_routed": shard.stats.logs_routed}
                    for shard in controller.shards
                ],
                "log_records_collected": len(controller.job_logs(job)),
                "log_records_dropped": job.stats.log_records_dropped,
            },
            "job": controller.job_metrics(job),
        }

    def trace_section(self) -> Optional[dict]:
        return self.tracer.summary() if self.tracer is not None else None

    def profile_section(self, top_n: int = 15) -> Optional[dict]:
        return self.profiler.section(top_n) if self.profiler is not None else None

    def ring_lines(self, last: int = RING_CONTEXT,
                   header: str = "flight recorder") -> list:
        return self.recorder.dump_lines(last=last, header=header)
