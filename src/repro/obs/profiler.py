"""Kernel profiler: wall-time and event counts per callback site.

Attributes the host CPU cost of a run to ``module:qualname`` callback
sites — the only place in the tree (outside bench timing) allowed to read
the wall clock, and only when ``--profile`` is set, so the determinism
guarantee is untouched: wall times never enter the digest-relevant report
and the profiler is off unless explicitly requested.

Bound methods share one underlying function per class, so keying the hot
dict by ``callback.__func__`` aggregates all instances of e.g.
``Process._step`` into a single site with two dict ops per event.
"""

from __future__ import annotations

import time
from typing import Dict, List


class KernelProfiler:
    """Accumulates per-site event counts and wall seconds."""

    __slots__ = ("clock", "_sites", "_labeled", "total_events", "total_wall")

    def __init__(self):
        # The single sanctioned wall-clock read path for profiling; every
        # caller goes through this bound attribute so the linter suppression
        # lives on exactly one line.
        self.clock = time.perf_counter  # det: ignore[DET102] -- profiler wall timing, --profile only, digest-excluded
        # callback function object -> [event_count, wall_seconds]
        self._sites: Dict[object, List] = {}
        # pre-labeled sites (off-event-loop costs such as GC pauses):
        # label string -> [count, wall_seconds]
        self._labeled: Dict[str, List] = {}
        self.total_events = 0
        self.total_wall = 0.0

    def add(self, callback, wall_seconds: float) -> None:
        """Charge one dispatched event to ``callback``'s site."""
        func = getattr(callback, "__func__", callback)
        entry = self._sites.get(func)
        if entry is None:
            entry = self._sites[func] = [0, 0.0]
        entry[0] += 1
        entry[1] += wall_seconds
        self.total_events += 1
        self.total_wall += wall_seconds

    def add_site(self, label: str, wall_seconds: float) -> None:
        """Charge wall time to a synthetic ``module:qualname`` label.

        For costs paid outside event dispatch — the GC policy's explicit
        collect pauses report through here — so they show up in the same
        top-N table as callback sites instead of vanishing from the
        attribution.
        """
        entry = self._labeled.get(label)
        if entry is None:
            entry = self._labeled[label] = [0, 0.0]
        entry[0] += 1
        entry[1] += wall_seconds
        self.total_wall += wall_seconds

    def _by_label(self) -> Dict[str, List]:
        """Site totals folded by ``module:qualname`` label.

        Closure callbacks (e.g. ``Events.periodic``'s ``_fire``) create one
        function object per closure; they share a qualname, so folding here
        merges them into a single site without slowing the hot ``add`` path.
        """
        folded: Dict[str, List] = {}
        for func, (count, wall) in self._sites.items():
            module = getattr(func, "__module__", "?")
            qualname = getattr(func, "__qualname__", repr(func))
            entry = folded.setdefault(f"{module}:{qualname}", [0, 0.0])
            entry[0] += count
            entry[1] += wall
        for label, (count, wall) in self._labeled.items():
            entry = folded.setdefault(label, [0, 0.0])
            entry[0] += count
            entry[1] += wall
        return folded

    def top(self, n: int = 15) -> List[dict]:
        """Top-``n`` sites by wall time (ties broken by label for stability)."""
        rows = []
        for site, (count, wall) in self._by_label().items():
            rows.append({
                "site": site,
                "events": count,
                "wall_s": round(wall, 6),
                "wall_share": round(wall / self.total_wall, 4)
                if self.total_wall else 0.0,
                "us_per_event": round(wall / count * 1e6, 3) if count else 0.0,
            })
        rows.sort(key=lambda row: (-row["wall_s"], row["site"]))
        return rows[:n]

    def section(self, top_n: int = 15) -> dict:
        """The ``profile`` report section (digest-excluded)."""
        return {
            "enabled": True,
            "events": self.total_events,
            "wall_s": round(self.total_wall, 6),
            "sites": len(self._by_label()),
            "top": self.top(top_n),
        }

    @staticmethod
    def format_table(section: dict, limit: int = 15) -> List[str]:
        """Human-readable top-N table for the CLI."""
        lines = [
            f"profile: {section['events']} events, "
            f"{section['wall_s']:.3f}s wall across {section['sites']} sites",
            f"  {'site':<56} {'events':>9} {'wall_s':>9} {'share':>6} {'us/ev':>8}",
        ]
        for row in section["top"][:limit]:
            lines.append(
                f"  {row['site']:<56} {row['events']:>9} "
                f"{row['wall_s']:>9.4f} {row['wall_share']:>6.1%} "
                f"{row['us_per_event']:>8.2f}")
        return lines
