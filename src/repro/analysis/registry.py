"""Rule registry for the determinism linter.

Every rule carries a stable id (``DET101``...), a one-line summary, a fix-it
message shown with each finding, and an optional path *scope* (the rule only
applies to files whose normalised path contains one of the scope fragments)
plus *exempt* fragments (files where the hazard is the blessed
implementation itself, e.g. ``repro/sim/rng.py`` for the RNG rule).

Checkers (AST visitors, see :mod:`repro.analysis.visitors`) attach
themselves to a rule via :func:`register_checker`; the driver asks
:func:`applicable_rules` which checkers to run for a given file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type


@dataclass(frozen=True)
class Rule:
    """Metadata for one determinism hazard class."""

    id: str
    name: str
    summary: str
    fixit: str
    #: path fragments the rule is limited to (empty = every analysed file)
    scope: Tuple[str, ...] = ()
    #: path fragments exempt from the rule (the blessed implementation sites)
    exempt: Tuple[str, ...] = ()
    #: attached checker class (set by :func:`register_checker`)
    checker: Optional[type] = field(default=None, compare=False)


_RULES: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    if rule.id in _RULES:
        raise ValueError(f"rule {rule.id} is already registered")
    _RULES[rule.id] = rule
    return rule


def register_checker(rule: Rule):
    """Class decorator attaching an AST checker to ``rule``."""

    def _attach(cls: Type) -> Type:
        object.__setattr__(rule, "checker", cls)
        cls.rule = rule
        return cls

    return _attach


def all_rules() -> List[Rule]:
    """Registered rules in id order."""
    _load_checkers()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    _load_checkers()
    return _RULES[rule_id]


def known_rule_ids() -> List[str]:
    _load_checkers()
    return sorted(_RULES)


def applicable_rules(path: str) -> List[Rule]:
    """Rules that apply to ``path`` (normalised to forward slashes)."""
    norm = path.replace("\\", "/")
    rules = []
    for rule in all_rules():
        if rule.scope and not any(fragment in norm for fragment in rule.scope):
            continue
        if any(fragment in norm for fragment in rule.exempt):
            continue
        rules.append(rule)
    return rules


def _load_checkers() -> None:
    # Imported lazily: visitors.py imports this module to register itself.
    from repro.analysis import visitors  # noqa: F401


# --------------------------------------------------------------------- rules
#: module-global RNG use outside the blessed substream-derivation module
RULE_GLOBAL_RNG = register_rule(Rule(
    id="DET101",
    name="module-global-rng",
    summary="module-global random use (process-wide RNG state breaks "
            "seeded reproducibility)",
    fixit="draw from the simulator-owned `sim.rng` or derive a labelled "
          "stream via `repro.sim.rng.substream(seed, ...)`",
    exempt=("repro/sim/rng.py",),
))

#: wall-clock reads inside simulation code
RULE_WALL_CLOCK = register_rule(Rule(
    id="DET102",
    name="wall-clock-read",
    summary="wall-clock read in simulation code (results would depend on "
            "host speed and scheduling)",
    fixit="use virtual time (`sim.now` / `events.now()`); for deliberate "
          "bench timing add `# det: ignore[DET102]`",
))

#: iteration order of sets (and id()/hash() sort keys) is nondeterministic
RULE_UNORDERED_ITER = register_rule(Rule(
    id="DET103",
    name="unordered-iteration",
    summary="iteration over an unordered set (or an id()/hash() sort key) "
            "feeds hash-seed-dependent order into the simulation",
    fixit="iterate `sorted(...)` with a value-based key, or keep insertion "
          "order in a list/dict",
))

#: class-level mutable state shared across co-hosted simulations
RULE_CLASS_STATE = register_rule(Rule(
    id="DET104",
    name="class-level-state",
    summary="class-level mutable state / counter (shared across every "
            "simulation in the process -- the PR 2 pid-counter bug class)",
    fixit="move the state onto the instance (e.g. allocate ids from the "
          "owning Simulator) so co-hosted seeded runs stay independent",
))

#: environment/filesystem reads on simulation hot paths
RULE_ENV_READ = register_rule(Rule(
    id="DET105",
    name="environment-read",
    summary="os.environ / filesystem read inside a simulation hot path "
            "(results would depend on the host environment)",
    fixit="thread configuration through explicit parameters (JobSpec "
          "options, testbed presets) instead of ambient host state",
    scope=("repro/sim/", "repro/net/", "repro/lib/"),
))
