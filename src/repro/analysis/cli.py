"""Driver and command line of the determinism linter.

``python -m repro.analysis [paths...]`` analyses ``src/repro`` by default,
applies per-line ``# det: ignore[...]`` suppressions and the committed
``analysis_baseline.txt``, prints new findings and exits non-zero when any
remain.  ``--check`` is the CI mode: it additionally fails on *stale*
baseline entries so the baseline only ever shrinks.  ``--write-baseline``
accepts the current findings as the new baseline.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import List, Optional

from repro.analysis import suppress
from repro.analysis.registry import all_rules, applicable_rules
from repro.analysis.report import AnalysisResult, Finding, render_json, render_text

DEFAULT_BASELINE = "analysis_baseline.txt"
DEFAULT_TARGET = os.path.join("src", "repro")


def _norm(path: str) -> str:
    """Stable, baseline-friendly path: relative to cwd, forward slashes."""
    rel = os.path.relpath(path)
    if rel.startswith(".."):
        rel = path  # outside the tree: keep it absolute rather than ../../
    return rel.replace(os.sep, "/")


def discover_files(paths: List[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d != "__pycache__" and not d.startswith("."))
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        elif path.endswith(".py"):
            files.append(path)
    return sorted(dict.fromkeys(_norm(f) for f in files))


def analyse_source(path: str, source: str) -> List[Finding]:
    """Run every applicable rule over one file's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule_id="DET000", path=path,
                        line=exc.lineno or 1, col=exc.offset or 0,
                        message=f"syntax error: {exc.msg}",
                        fixit="fix the syntax error so the file can be analysed",
                        source_line="")]
    lines = source.splitlines()
    findings: List[Finding] = []
    for rule in applicable_rules(path):
        checker = rule.checker(path, lines)
        checker.visit(tree)
        findings.extend(checker.findings)
    suppressions = suppress.parse_suppressions(source)
    for finding in findings:
        finding.suppressed = suppress.is_suppressed(finding, suppressions)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def run_analysis(paths: List[str],
                 baseline_text: Optional[str] = None) -> AnalysisResult:
    """Analyse ``paths`` and apply the baseline; the library entry point."""
    result = AnalysisResult()
    for path in discover_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"warning: cannot read {path}: {exc}", file=sys.stderr)
            continue
        result.files_analysed += 1
        result.findings.extend(analyse_source(path, source))
    result.stale_baseline = suppress.apply_baseline(
        result.findings, suppress.load_baseline(baseline_text))
    return result


def _list_rules() -> str:
    lines = ["rule     name                  scope"]
    for rule in all_rules():
        scope = ",".join(rule.scope) if rule.scope else "(all analysed files)"
        lines.append(f"{rule.id}   {rule.name:<21} {scope}")
        lines.append(f"         {rule.summary}")
        lines.append(f"         fix: {rule.fixit}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism linter: flags the nondeterminism hazard "
                    "classes that have actually bitten this simulator "
                    "(module-global RNG, wall clocks, set ordering, "
                    "class-level state, environment reads).")
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files/directories to analyse "
                             f"(default: {DEFAULT_TARGET})")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, metavar="FILE",
                        help="baseline of accepted findings "
                             "(default: %(default)s)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept current findings: rewrite the baseline "
                             "and exit 0")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: also fail on stale baseline entries")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--verbose", action="store_true",
                        help="also print suppressed and baseline-masked "
                             "findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    paths = args.paths or [DEFAULT_TARGET]
    baseline_text: Optional[str] = None
    if not args.no_baseline and not args.write_baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline_text = handle.read()
        except FileNotFoundError:
            baseline_text = None
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    try:
        result = run_analysis(paths, baseline_text)
    except ValueError as exc:  # malformed baseline
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            handle.write(suppress.render_baseline(result.findings))
        accepted = sum(1 for f in result.findings if not f.suppressed)
        print(f"wrote {accepted} accepted finding(s) to {args.baseline}")
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))

    if result.active_findings:
        return 1
    if args.check and result.stale_baseline:
        return 1
    return 0
