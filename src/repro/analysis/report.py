"""Findings and their rendering (text for humans/CI logs, JSON for tooling)."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List


@dataclass
class Finding:
    """One linter hit: a rule violated at a specific source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    fixit: str
    #: the stripped source line (also the baseline fingerprint component)
    source_line: str
    #: set when a `# det: ignore[...]` comment covers this line
    suppressed: bool = False
    #: set when a committed baseline entry masks this finding
    baselined: bool = False

    @property
    def active(self) -> bool:
        """True when the finding should fail the run (new, unsuppressed)."""
        return not self.suppressed and not self.baselined

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class AnalysisResult:
    """Everything one linter run produced."""

    findings: List[Finding] = field(default_factory=list)
    #: baseline entries no finding matched any more (candidates for removal)
    stale_baseline: List[str] = field(default_factory=list)
    files_analysed: int = 0

    @property
    def active_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.active_findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: List[str] = []
    for finding in result.findings:
        if finding.active:
            tag = ""
        elif finding.suppressed:
            tag = " [suppressed]"
        else:
            tag = " [baseline]"
        if finding.active or verbose:
            lines.append(f"{finding.location()}: {finding.rule_id} "
                         f"{finding.message}{tag}")
            if finding.active:
                lines.append(f"    fix: {finding.fixit}")
    for entry in result.stale_baseline:
        lines.append(f"stale baseline entry (no longer found): {entry}")
    active = len(result.active_findings)
    lines.append(
        f"analysed {result.files_analysed} files: {active} new finding(s), "
        f"{len(result.suppressed_findings)} suppressed, "
        f"{len(result.baselined_findings)} baseline-masked, "
        f"{len(result.stale_baseline)} stale baseline entr(ies)")
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    return json.dumps({
        "files_analysed": result.files_analysed,
        "findings": [asdict(f) for f in result.findings],
        "stale_baseline": result.stale_baseline,
        "counts_by_rule": result.counts_by_rule(),
    }, indent=2, sort_keys=True)
