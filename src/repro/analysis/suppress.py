"""Per-line suppressions and the committed findings baseline.

Suppressions
------------
A finding is suppressed when its physical source line carries a marker::

    start = time.perf_counter()  # det: ignore[DET102]
    anything_at_all()            # det: ignore          (all rules)

Multiple rule ids are comma-separated: ``# det: ignore[DET101, DET103]``.
Suppression is deliberate and reviewable -- the marker sits on the line it
silences, so `git blame` answers "why is this allowed".

Baseline
--------
``analysis_baseline.txt`` records accepted pre-existing findings so they do
not block CI while *new* findings still fail it.  Entries are keyed on
``(rule id, path, stripped source line)`` -- not the line number -- so the
baseline survives unrelated edits that shift code up or down.  Identical
lines may appear several times (the baseline is a multiset).
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.report import Finding

#: matches ``# det: ignore`` and ``# det: ignore[DET101, DET102]``
_SUPPRESS_RE = re.compile(
    r"#\s*det:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?")

#: sentinel for a bare ``# det: ignore`` (suppresses every rule on the line)
ALL_RULES = "*"


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line."""
    suppressions: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "det:" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = {ALL_RULES}
        else:
            ids = {r.strip().upper() for r in rules.split(",") if r.strip()}
            suppressions[lineno] = ids or {ALL_RULES}
    return suppressions


def is_suppressed(finding: Finding, suppressions: Dict[int, Set[str]]) -> bool:
    rules = suppressions.get(finding.line)
    if not rules:
        return False
    return ALL_RULES in rules or finding.rule_id in rules


# ------------------------------------------------------------------ baseline
_ENTRY_SEP = "\t"


def baseline_key(finding: Finding) -> Tuple[str, str, str]:
    return (finding.rule_id, finding.path.replace("\\", "/"),
            finding.source_line)


def format_entry(key: Tuple[str, str, str]) -> str:
    return _ENTRY_SEP.join(key)


def load_baseline(text: Optional[str]) -> Counter:
    """Parse baseline text into a multiset of accepted finding keys.

    Blank lines and ``#`` comments are ignored; malformed lines raise so a
    corrupted baseline fails loudly instead of silently accepting nothing.
    """
    entries: Counter = Counter()
    if not text:
        return entries
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = line.rstrip("\n").split(_ENTRY_SEP)
        if len(parts) != 3 or not parts[0] or not parts[1]:
            raise ValueError(f"baseline line {lineno} is malformed "
                             f"(expected 'RULE<TAB>path<TAB>source line'): "
                             f"{line!r}")
        entries[(parts[0], parts[1], parts[2])] += 1
    return entries


def apply_baseline(findings: List[Finding], baseline: Counter) -> List[str]:
    """Mark findings covered by ``baseline``; return stale entry strings.

    Consumes baseline entries (multiset semantics): two identical hits need
    two baseline entries.  Suppressed findings never consume an entry.
    Returns the leftover entries -- accepted findings that no longer exist,
    which ``--check`` reports so the baseline shrinks over time.
    """
    remaining = Counter(baseline)
    for finding in findings:
        if finding.suppressed:
            continue
        key = baseline_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            finding.baselined = True
    stale = []
    for key, count in sorted(remaining.items()):
        stale.extend([format_entry(key)] * count)
    return stale


def render_baseline(findings: List[Finding]) -> str:
    """Baseline file contents covering every unsuppressed finding."""
    header = (
        "# Determinism-linter baseline (see docs/ANALYSIS.md).\n"
        "# Accepted pre-existing findings: one line per finding,\n"
        "# 'RULE<TAB>path<TAB>stripped source line'. New findings not listed\n"
        "# here fail `python -m repro.analysis --check`. Regenerate with\n"
        "# `python -m repro.analysis --write-baseline` after deliberate\n"
        "# changes, and prefer fixing or `# det: ignore[...]` suppressing\n"
        "# over growing this file.\n"
    )
    entries = sorted(format_entry(baseline_key(f))
                     for f in findings if not f.suppressed)
    return header + "".join(entry + "\n" for entry in entries)
