"""AST visitors implementing the determinism rules.

One checker class per rule; each is attached to its
:class:`~repro.analysis.registry.Rule` via
:func:`~repro.analysis.registry.register_checker` and run over a file's
parsed tree by the driver (:mod:`repro.analysis.cli`).  Checkers are purely
syntactic (with a little single-scope type inference for set-typed locals in
DET103) -- they are a linter, not a type checker, so they aim for the
repo's known hazard classes rather than full soundness.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.registry import (
    RULE_CLASS_STATE,
    RULE_ENV_READ,
    RULE_GLOBAL_RNG,
    RULE_UNORDERED_ITER,
    RULE_WALL_CLOCK,
    register_checker,
)
from repro.analysis.report import Finding


class BaseChecker(ast.NodeVisitor):
    """Shared plumbing: finding construction bound to one file."""

    rule = None  # attached by register_checker

    def __init__(self, path: str, source_lines: List[str]):
        self.path = path
        self.source_lines = source_lines
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = ""
        if 1 <= line <= len(self.source_lines):
            text = self.source_lines[line - 1].strip()
        self.findings.append(Finding(
            rule_id=self.rule.id, path=self.path, line=line, col=col,
            message=message, fixit=self.rule.fixit, source_line=text))


def _call_name(node: ast.Call) -> str:
    """Dotted name of a call target (``""`` when not a plain name/attribute)."""
    parts = []
    target = node.func
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
        return ".".join(reversed(parts))
    return ""


# ------------------------------------------------------------------- DET101
#: module-level random functions that mutate/read the process-wide RNG state
_RNG_FUNCS = frozenset({
    "random", "randrange", "randint", "choice", "choices", "sample",
    "shuffle", "uniform", "seed", "getrandbits", "randbytes", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "betavariate",
    "gammavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "binomialvariate", "getstate", "setstate",
})


@register_checker(RULE_GLOBAL_RNG)
class GlobalRngChecker(BaseChecker):
    """``random.random()`` & friends, bare ``random.Random()``, and
    ``from random import shuffle``-style imports of the module-global API."""

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (isinstance(node.value, ast.Name) and node.value.id == "random"
                and node.attr in _RNG_FUNCS):
            self.report(node, f"module-global `random.{node.attr}` "
                              f"shares process-wide RNG state")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (_call_name(node) == "random.Random"
                and not node.args and not node.keywords):
            self.report(node, "bare `random.Random()` seeds from the OS -- "
                              "every run differs")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _RNG_FUNCS:
                    self.report(node, f"`from random import {alias.name}` "
                                      f"imports the module-global RNG API")
        self.generic_visit(node)


# ------------------------------------------------------------------- DET102
_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
})
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


@register_checker(RULE_WALL_CLOCK)
class WallClockChecker(BaseChecker):
    """``time.time``/``perf_counter``-style reads and ``datetime.now``."""

    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        if isinstance(value, ast.Name) and value.id == "time" \
                and node.attr in _TIME_FUNCS:
            self.report(node, f"wall-clock read `time.{node.attr}`")
        elif node.attr in _DATETIME_FUNCS:
            # datetime.now(...) or datetime.datetime.now(...)
            if isinstance(value, ast.Name) and value.id in ("datetime", "date"):
                self.report(node, f"wall-clock read `{value.id}.{node.attr}`")
            elif (isinstance(value, ast.Attribute)
                  and value.attr in ("datetime", "date")
                  and isinstance(value.value, ast.Name)
                  and value.value.id == "datetime"):
                self.report(node, f"wall-clock read "
                                  f"`datetime.{value.attr}.{node.attr}`")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_FUNCS:
                    self.report(node, f"`from time import {alias.name}` "
                                      f"imports a wall-clock read")
        self.generic_visit(node)


# ------------------------------------------------------------------- DET103
def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically set-valued: a set literal/comprehension or set(...)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    return False


def _set_typed_locals(scope: ast.AST) -> Set[str]:
    """Names assigned only set-valued expressions in this scope (shallow).

    Nested function/class bodies are skipped -- they get their own scope
    when the visitor reaches them.
    """
    assigned: dict = {}

    def _walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        flags = assigned.setdefault(target.id, [])
                        flags.append(_is_set_expr(child.value))
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                if isinstance(child.target, ast.Name):
                    flags = assigned.setdefault(child.target.id, [])
                    flags.append(_is_set_expr(child.value))
            _walk(child)

    _walk(scope)
    return {name for name, flags in assigned.items() if flags and all(flags)}


@register_checker(RULE_UNORDERED_ITER)
class UnorderedIterationChecker(BaseChecker):
    """Set iteration feeding order-sensitive code, ``set.pop()``, and
    ``sorted(..., key=id)``-style object-identity sort keys.

    ``sorted(a_set)`` / ``len`` / ``sum`` / ``min`` / ``max`` / ``any`` /
    ``all`` over a set are naturally not flagged: the set expression is then
    an argument of the order-insensitive call, not the iterable of a loop.
    """

    def __init__(self, path: str, source_lines: List[str]):
        super().__init__(path, source_lines)
        self._set_locals: List[Set[str]] = [set()]

    # ------------------------------------------------------------- scoping
    def visit_Module(self, node: ast.Module) -> None:
        self._set_locals[0] = _set_typed_locals(node)
        self.generic_visit(node)

    def _visit_scope(self, node) -> None:
        self._set_locals.append(_set_typed_locals(node))
        self.generic_visit(node)
        self._set_locals.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope

    def _is_set_name(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Name)
                and any(node.id in scope for scope in self._set_locals))

    def _check_iterable(self, iter_node: ast.AST, where: str) -> None:
        if _is_set_expr(iter_node):
            self.report(iter_node, f"iteration over an unordered set {where}")
        elif self._is_set_name(iter_node):
            self.report(iter_node, f"iteration over set-typed local "
                                   f"`{iter_node.id}` {where}")

    # -------------------------------------------------------------- checks
    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, "in a for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for comp in node.generators:
            self._check_iterable(comp.iter, "in a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building another set keeps the values unordered either way; only
        # flag set-typed *sources* when they feed an ordered container.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in ("list", "tuple") and node.args \
                and _is_set_expr(node.args[0]):
            self.report(node, f"`{name}(set(...))` materialises an "
                              f"unordered set in arbitrary order")
        if name in ("sorted", "min", "max", "list.sort") or name.endswith(".sort"):
            for keyword in node.keywords:
                if keyword.arg == "key" and self._is_identity_key(keyword.value):
                    self.report(keyword.value,
                                f"`{name}` keyed on object identity "
                                f"(`id`/`hash`) varies across runs")
        if name.endswith(".pop") and not node.args:
            target = node.func.value  # type: ignore[union-attr]
            if self._is_set_name(target) or _is_set_expr(target):
                self.report(node, "`set.pop()` removes an arbitrary element")
        self.generic_visit(node)

    @staticmethod
    def _is_identity_key(node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id in ("id", "hash"):
            return True
        if isinstance(node, ast.Lambda) and isinstance(node.body, ast.Call):
            func = node.body.func
            return isinstance(func, ast.Name) and func.id in ("id", "hash")
        return False


# ------------------------------------------------------------------- DET104
def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _call_name(node) in ("list", "dict", "set", "collections.deque",
                                    "deque", "defaultdict",
                                    "collections.defaultdict")
    return False


@register_checker(RULE_CLASS_STATE)
class ClassStateChecker(BaseChecker):
    """Class-body mutable attributes and ``Cls.attr += 1`` counter mutation.

    Annotated class-body assignments are exempt: they are dataclass /
    typed-field declarations (mutable defaults there are already a
    ``TypeError`` for dataclasses and a deliberate, visible choice
    elsewhere).  The exact PR 2 bug shape -- a class-body ``_next_id = 0``
    bumped via ``SomeClass._next_id += 1`` -- is flagged at both ends.
    """

    def __init__(self, path: str, source_lines: List[str]):
        super().__init__(path, source_lines)
        self._class_stack: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for statement in node.body:
            if isinstance(statement, ast.Assign) \
                    and _is_mutable_literal(statement.value):
                names = ", ".join(t.id for t in statement.targets
                                  if isinstance(t, ast.Name))
                self.report(statement,
                            f"class-level mutable attribute `{names}` is "
                            f"shared by every instance and every simulation")
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _class_attr_target(self, target: ast.AST) -> str:
        """``Cls.attr`` / ``type(self).attr`` inside ``Cls`` -> ``attr``."""
        if not isinstance(target, ast.Attribute):
            return ""
        value = target.value
        if isinstance(value, ast.Name) and value.id in self._class_stack:
            return f"{value.id}.{target.attr}"
        if isinstance(value, ast.Call) and _call_name(value) == "type" \
                and len(value.args) == 1 \
                and isinstance(value.args[0], ast.Name) \
                and value.args[0].id == "self":
            return f"type(self).{target.attr}"
        return ""

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._class_stack:
            dotted = self._class_attr_target(node.target)
            if dotted:
                self.report(node, f"class-level counter mutation "
                                  f"`{dotted} {type(node.op).__name__}=` "
                                  f"leaks state across simulations")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._class_stack:
            for target in node.targets:
                dotted = self._class_attr_target(target)
                if dotted:
                    self.report(node, f"assignment to class attribute "
                                      f"`{dotted}` mutates shared state")
        self.generic_visit(node)


# ------------------------------------------------------------------- DET105
_OS_READ_FUNCS = frozenset({
    "environ", "getenv", "getcwd", "getcwdb", "listdir", "scandir", "stat",
    "urandom", "uname", "cpu_count", "getloadavg",
})
_OS_PATH_FUNCS = frozenset({
    "exists", "isfile", "isdir", "getsize", "getmtime", "getatime",
})


@register_checker(RULE_ENV_READ)
class EnvironmentReadChecker(BaseChecker):
    """``os.environ`` / ``open()`` / filesystem probes in hot-path packages."""

    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        if isinstance(value, ast.Name) and value.id == "os" \
                and node.attr in _OS_READ_FUNCS:
            self.report(node, f"host-environment read `os.{node.attr}`")
        elif (isinstance(value, ast.Attribute) and value.attr == "path"
              and isinstance(value.value, ast.Name) and value.value.id == "os"
              and node.attr in _OS_PATH_FUNCS):
            self.report(node, f"filesystem probe `os.path.{node.attr}`")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            self.report(node, "direct `open()` on the host filesystem")
        self.generic_visit(node)
