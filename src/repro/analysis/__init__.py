"""Static analysis proving the simulator's byte-identical guarantee.

Every load-bearing claim in this reproduction -- repeatable experiments,
kernel-swap equivalence, ``--ctl-shards`` parity, ``--jobs N`` parallel
sweeps -- rests on deterministic event order.  This package makes the
hazard classes that have actually broken that guarantee *mechanically
checkable*: a rule-registry-driven AST linter (``python -m repro.analysis``,
rules ``DET101``..``DET105``) with per-line ``# det: ignore[...]``
suppressions and a committed baseline (``analysis_baseline.txt``), run in CI
via ``--check``.

Its runtime counterpart -- invariant checks at the seams the linter cannot
see -- is the opt-in sanitizer (:mod:`repro.sim.sanitizer`, ``--sanitize``
on every scenario).  ``docs/ANALYSIS.md`` documents both.
"""

from repro.analysis.cli import analyse_source, main, run_analysis
from repro.analysis.registry import Rule, all_rules, applicable_rules, get_rule
from repro.analysis.report import AnalysisResult, Finding

__all__ = [
    "AnalysisResult",
    "Finding",
    "Rule",
    "all_rules",
    "analyse_source",
    "applicable_rules",
    "get_rule",
    "main",
    "run_analysis",
]
