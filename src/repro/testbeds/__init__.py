"""Pluggable deployment environments (testbeds).

Paper counterpart: Section 5.4 — the same SPLAY applications run unchanged
on a local cluster, on ModelNet, on PlanetLab and on mixed deployments
spanning several testbeds at once.  This package holds everything
environment-shaped: a :class:`TestbedSpec` bundles the topology, latency,
loss, bandwidth and host-load models behind one name, and the harness
builds whatever the selected spec describes.

Built-in presets (see :mod:`repro.testbeds.presets`): ``transit-stub``
(the historical default), ``cluster``, ``planetlab`` and ``mixed``.
"""

from repro.testbeds.spec import (
    BuiltTestbed,
    TestbedSpec,
    UnknownTestbedError,
    all_specs,
    default_host_policy,
    get_testbed,
    load_builtin,
    register,
    testbed_names,
)

__all__ = [
    "BuiltTestbed",
    "TestbedSpec",
    "UnknownTestbedError",
    "all_specs",
    "default_host_policy",
    "get_testbed",
    "load_builtin",
    "register",
    "testbed_names",
]
