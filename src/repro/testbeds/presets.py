"""Built-in testbed presets: cluster, transit-stub, planetlab, mixed.

Paper counterpart: the evaluation environments of Section 5 — a local
cluster, the ModelNet transit-stub emulation, PlanetLab (lognormal
latencies, substrate loss, overloaded hosts) and mixed deployments spanning
a cluster and PlanetLab at once.  Each preset builds the full substrate
(latency + loss + bandwidth + host load) for a host address plan; the
harness deploys the same workloads unchanged on any of them.

All four presets share the historical host-count policy, so
``--testbed planetlab`` changes the environment, never the deployment size.
"""

from __future__ import annotations

from typing import List

from repro.net.hostload import HostLoadModel
from repro.net.latency import (
    CompositeLatency,
    ConstantLatency,
    PairwiseLatency,
    TopologyLatency,
    lognormal_sampler,
)
from repro.net.loss import LossModel
from repro.net.network import Network
from repro.net.topology import TransitStubTopology
from repro.sim.kernel import Simulator
from repro.testbeds.spec import BuiltTestbed, TestbedSpec, register

#: a dedicated cluster: uniform sub-millisecond one-way delay, gigabit
#: links, no loss, no host load
CLUSTER_ONE_WAY_DELAY = 0.0005
CLUSTER_LINK_BPS = 1_000_000_000.0

#: PlanetLab-style wide area: lognormal one-way delays (median 40 ms,
#: sigma 0.6 — a heavy tail), 2 % substrate loss, 10 Mbps access links and
#: load-dependent processing delay on every host
PLANETLAB_MEDIAN_ONE_WAY_MS = 40.0
PLANETLAB_SIGMA = 0.6
PLANETLAB_SUBSTRATE_LOSS = 0.02
PLANETLAB_LINK_BPS = 10_000_000.0

#: mixed deployments: cluster-to-PlanetLab pairs cross a wide-area path
MIXED_INTER_MEDIAN_ONE_WAY_MS = 60.0
MIXED_INTER_SIGMA = 0.4


def _build_transit_stub(sim: Simulator, ips: List[str], seed: int) -> BuiltTestbed:
    """The historical default: the paper's ModelNet transit-stub emulation.

    This is byte-for-byte what ``harness.deploy`` used to hard-wire —
    topology generation, host attachment, latency wiring and 10 Mbps access
    links — so reports (and their digests) are unchanged for this testbed.
    """
    topology = TransitStubTopology(seed=seed)
    attachment = topology.attach_hosts(ips)
    network = Network(sim, latency=TopologyLatency(topology, attachment), seed=seed)
    for ip in ips:
        network.bandwidth.set_capacity(ip, topology.link_bandwidth_bps,
                                       topology.link_bandwidth_bps)
    return BuiltTestbed(name="transit-stub", network=network, topology=topology,
                        description=topology.describe())


def _build_cluster(sim: Simulator, ips: List[str], seed: int) -> BuiltTestbed:
    """A dedicated local cluster: uniform low latency, lossless, fat links."""
    network = Network(sim, latency=ConstantLatency(CLUSTER_ONE_WAY_DELAY), seed=seed)
    for ip in ips:
        network.bandwidth.set_capacity(ip, CLUSTER_LINK_BPS, CLUSTER_LINK_BPS)
    return BuiltTestbed(
        name="cluster", network=network,
        description={
            "testbed": "cluster",
            "hosts": len(ips),
            "one_way_delay_ms": 1000.0 * CLUSTER_ONE_WAY_DELAY,
            "link_bandwidth_bps": CLUSTER_LINK_BPS,
        })


def _planetlab_models(seed: int) -> tuple:
    latency = PairwiseLatency(
        seed, lognormal_sampler(PLANETLAB_MEDIAN_ONE_WAY_MS, PLANETLAB_SIGMA))
    load = HostLoadModel(seed)
    return latency, load


def _build_planetlab(sim: Simulator, ips: List[str], seed: int) -> BuiltTestbed:
    """PlanetLab: lognormal latencies, substrate loss, overloaded hosts."""
    latency, load = _planetlab_models(seed)
    loss = LossModel(seed=seed, default_rate=PLANETLAB_SUBSTRATE_LOSS)
    network = Network(sim, latency=latency, loss=loss, seed=seed)
    for ip in ips:
        network.bandwidth.set_capacity(ip, PLANETLAB_LINK_BPS, PLANETLAB_LINK_BPS)
    load.attach(network, ips)
    return BuiltTestbed(
        name="planetlab", network=network,
        description={
            "testbed": "planetlab",
            "hosts": len(ips),
            "latency_median_one_way_ms": PLANETLAB_MEDIAN_ONE_WAY_MS,
            "latency_sigma": PLANETLAB_SIGMA,
            "substrate_loss": PLANETLAB_SUBSTRATE_LOSS,
            "link_bandwidth_bps": PLANETLAB_LINK_BPS,
        })


def _build_mixed(sim: Simulator, ips: List[str], seed: int) -> BuiltTestbed:
    """Section 5.4's mixed deployment: a cluster half and a PlanetLab half.

    The first half of the address plan is the cluster, the second half is
    PlanetLab; intra-group delays come from each group's own model, pairs
    that cross the boundary pay a wide-area lognormal delay.  Substrate
    loss and host load apply to the PlanetLab hosts only.
    """
    split = (len(ips) + 1) // 2
    cluster_ips, planetlab_ips = ips[:split], ips[split:]
    groups = {ip: "cluster" for ip in cluster_ips}
    groups.update({ip: "planetlab" for ip in planetlab_ips})

    pl_latency, load = _planetlab_models(seed)
    latency = CompositeLatency(
        group_of=lambda ip: groups.get(ip, "planetlab"),
        intra_models={"cluster": ConstantLatency(CLUSTER_ONE_WAY_DELAY),
                      "planetlab": pl_latency},
        inter_model=PairwiseLatency(
            seed, lognormal_sampler(MIXED_INTER_MEDIAN_ONE_WAY_MS,
                                    MIXED_INTER_SIGMA),
            local_delay=0.0))
    loss = LossModel(seed=seed)
    for ip in planetlab_ips:
        loss.set_host_rate(ip, PLANETLAB_SUBSTRATE_LOSS)
    network = Network(sim, latency=latency, loss=loss, seed=seed)
    for ip in cluster_ips:
        network.bandwidth.set_capacity(ip, CLUSTER_LINK_BPS, CLUSTER_LINK_BPS)
    for ip in planetlab_ips:
        network.bandwidth.set_capacity(ip, PLANETLAB_LINK_BPS, PLANETLAB_LINK_BPS)
    load.attach(network, planetlab_ips)
    return BuiltTestbed(
        name="mixed", network=network, groups=groups,
        description={
            "testbed": "mixed",
            "hosts": len(ips),
            "cluster_hosts": len(cluster_ips),
            "planetlab_hosts": len(planetlab_ips),
            "inter_median_one_way_ms": MIXED_INTER_MEDIAN_ONE_WAY_MS,
        })


#: the historical default comes first so CLI help lists it first
TRANSIT_STUB = register(TestbedSpec(
    name="transit-stub",
    help="ModelNet transit-stub emulation (the paper's default testbed)",
    builder=_build_transit_stub,
))

CLUSTER = register(TestbedSpec(
    name="cluster",
    help="dedicated cluster: uniform low latency, lossless gigabit links",
    builder=_build_cluster,
))

PLANETLAB = register(TestbedSpec(
    name="planetlab",
    help="PlanetLab: lognormal latencies, substrate loss, overloaded hosts",
    builder=_build_planetlab,
))

MIXED = register(TestbedSpec(
    name="mixed",
    help="mixed deployment: one cluster half, one PlanetLab half",
    builder=_build_mixed,
))
