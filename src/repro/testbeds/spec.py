"""Testbed specifications and their registry.

A *testbed* is everything environment-shaped about a deployment: the
topology (if any), the latency model, the loss model, the host-load /
processing-delay model, link capacities and the default host-count policy.
Workloads never see any of it directly — the harness resolves a testbed by
name, asks it to build the network substrate, and deploys the same job on
whatever comes back.  That is the paper's Section 5.4 contract: the same
application runs unchanged on a local cluster, on PlanetLab, or on a mixed
deployment spanning both.

Public entry points: :class:`TestbedSpec` (one named environment),
:class:`BuiltTestbed` (the substrate a builder returns), and the registry
functions :func:`register` / :func:`get_testbed` / :func:`testbed_names`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.net.network import Network
from repro.sim.kernel import Simulator


class UnknownTestbedError(KeyError):
    """Raised when looking up a testbed name nobody registered."""


def default_host_policy(nodes: int) -> int:
    """The historical host-count heuristic: half the instances, at least 8."""
    return max(8, nodes // 2)


@dataclass
class BuiltTestbed:
    """The substrate a testbed builder hands back to the harness.

    ``network`` has every host's latency/loss/bandwidth/processing models
    already wired; ``topology`` is the emulated topology object when the
    testbed has one (``None`` for model-only testbeds like ``planetlab``);
    ``description`` is the dict recorded as the report's ``topology`` entry
    (for ``transit-stub`` it must stay exactly ``topology.describe()`` so
    historical report digests are preserved); ``groups`` maps each host IP
    to its sub-testbed name on mixed deployments (empty otherwise).
    """

    name: str
    network: Network
    topology: Optional[Any] = None
    description: Dict[str, Any] = field(default_factory=dict)
    groups: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class TestbedSpec:
    """One named deployment environment.

    ``builder`` receives ``(sim, ips, seed)`` — the simulator, the host
    address plan and the root seed — and returns a fully wired
    :class:`BuiltTestbed`.  ``default_hosts`` maps an instance count to the
    testbed's default host count (every built-in uses the historical
    ``max(8, nodes // 2)`` so switching testbeds never silently changes the
    deployment size).
    """

    #: not a test class, whatever pytest thinks of the name
    __test__ = False

    name: str
    help: str
    builder: Callable[[Simulator, List[str], int], BuiltTestbed]
    default_hosts: Callable[[int], int] = default_host_policy

    def build(self, sim: Simulator, ips: List[str], seed: int) -> BuiltTestbed:
        built = self.builder(sim, ips, seed)
        built.name = self.name
        return built


_REGISTRY: Dict[str, TestbedSpec] = {}


def register(spec: TestbedSpec) -> TestbedSpec:
    """Add ``spec`` to the registry (idempotent for the same object)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec:
        raise ValueError(f"testbed {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_testbed(name: str) -> TestbedSpec:
    load_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownTestbedError(
            f"unknown testbed {name!r} (known: {known})") from None


def all_specs() -> List[TestbedSpec]:
    """Registered specs, in registration order (transit-stub first)."""
    load_builtin()
    return list(_REGISTRY.values())


def testbed_names() -> List[str]:
    return [spec.name for spec in all_specs()]


def load_builtin() -> None:
    """Import the built-in preset module (it registers on import)."""
    from repro.testbeds import presets  # noqa: F401  (local: import cycle)
