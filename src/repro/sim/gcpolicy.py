"""GC discipline for large deployments: freeze, tune, or take over collection.

CPython's cyclic collector is generational, but every full (gen2) collection
walks the *entire* tracked heap.  A 10k-node deployment keeps millions of
long-lived objects alive for the whole run — nodes, fingers, sockets,
routing tables — so ambient gen2 sweeps grow linearly with deployment size
while the per-event work stays constant: exactly the super-linear cost the
scale bench exists to expose.  This module gives the harness an explicit
policy instead of the interpreter default:

* ``off`` — leave the interpreter's ambient collector alone (the baseline
  every digest-parity test compares against).
* ``tuned`` — raise the generation thresholds for the deployment phase
  (mass allocation would otherwise trigger hundreds of young collections
  and promote the whole object graph through gen2 repeatedly), then
  ``gc.collect()`` + ``gc.freeze()`` once the job is running: the
  deployment's long-lived graph moves to the permanent generation, which
  ambient collections never scan again.
* ``manual`` — everything ``tuned`` does, plus ``gc.disable()``: ambient
  collection is replaced entirely by explicit young-generation collects at
  deterministic sim-time checkpoints (the harness's drain slices and phase
  boundaries) and one full collect when the policy disengages.

Determinism contract: the policy never schedules simulator events, draws no
randomness and mutates no simulation state — collection only reclaims
unreachable cycles, which no live object can observe.  Report digests are
therefore byte-identical for every mode (asserted by
``tests/test_gcpolicy.py`` across all four workloads and both kernels);
the policy's own counters land in the digest-excluded ``gc`` report
section and, when observability is on, in the metrics plane.

Public entry points: :class:`GCPolicy` and :data:`GC_MODES`.  The harness
installs the policy on ``sim._gcpolicy`` (one attribute, like ``_san`` and
``_obs``) so :func:`repro.apps.harness.drain` can run checkpoints without
new plumbing through every driver.
"""

from __future__ import annotations

import gc
import time
from typing import Any, List, Optional

#: accepted ``--gc-policy`` values, in increasing interventionism
GC_MODES = ("off", "tuned", "manual")

#: generation thresholds used while a tuned/manual policy is engaged.  The
#: interpreter default (700, 10, 10) makes the collector run thousands of
#: young collections during a mass deployment; a 50k allocation budget per
#: gen0 pass keeps collection off the hot path without letting true garbage
#: pile up unboundedly.
TUNED_THRESHOLDS = (50_000, 25, 25)

#: profiler site label explicit collects are charged to (``--profile``)
PROFILE_SITE = "repro.sim.gcpolicy:GCPolicy.checkpoint"


class GCPolicy:
    """One deployment's garbage-collection discipline.

    Lifecycle: construct with a mode, :meth:`engage` before the substrate
    is built (thresholds go up so deployment does not thrash the young
    generations), :meth:`after_deploy` once the job is running (collect +
    freeze, and ``gc.disable()`` under ``manual``), :meth:`checkpoint` at
    deterministic sim-time points during the run, and :meth:`disengage`
    before reporting (restores the interpreter's prior configuration).
    Every step is idempotent and ``off`` turns them all into no-ops, so
    call sites never need mode conditionals.
    """

    def __init__(self, mode: str = "off"):
        if mode not in GC_MODES:
            raise ValueError(f"unknown gc policy mode: {mode!r} "
                             f"(expected one of {', '.join(GC_MODES)})")
        self.mode = mode
        self.engaged = False
        self.frozen = False
        #: explicit collects run by :meth:`checkpoint`/:meth:`disengage`
        self.explicit_collects = 0
        #: objects reclaimed by explicit collects
        self.collected_objects = 0
        #: wall seconds spent inside explicit collects (pause attribution)
        self.pause_wall_s = 0.0
        self.pause_max_s = 0.0
        #: objects moved to the permanent generation by the post-deploy freeze
        self.frozen_objects = 0
        self._saved_thresholds: Optional[tuple] = None
        self._saved_enabled: Optional[bool] = None
        self._stats_at_engage: Optional[List[dict]] = None
        #: profiler hook (set by the harness when ``--profile`` is on) —
        #: pauses are charged to :data:`PROFILE_SITE` like any callback site
        self.profiler: Optional[Any] = None

    # -------------------------------------------------------------- lifecycle
    def engage(self) -> "GCPolicy":
        """Raise thresholds for the deployment phase (tuned/manual only)."""
        if self.mode == "off" or self.engaged:
            return self
        self.engaged = True
        self._saved_thresholds = gc.get_threshold()
        self._saved_enabled = gc.isenabled()
        self._stats_at_engage = gc.get_stats()
        gc.set_threshold(*TUNED_THRESHOLDS)
        return self

    def after_deploy(self) -> None:
        """Collect once, freeze the deployed object graph, go manual if asked.

        Everything alive at this point — the topology, daemons, instances
        and application state — stays alive for the whole run; freezing it
        moves it to the permanent generation so no ambient (or checkpoint)
        collection ever scans it again.
        """
        if self.mode == "off" or not self.engaged or self.frozen:
            return
        before = len(gc.get_objects())
        self._timed_collect(2)
        gc.freeze()
        self.frozen = True
        self.frozen_objects = gc.get_freeze_count()
        del before
        if self.mode == "manual":
            gc.disable()

    def checkpoint(self) -> None:
        """One deterministic-sim-time explicit collect (manual mode only).

        Young generations only: the post-deploy graph is frozen, so this
        scans just the objects allocated since the last checkpoint — cost
        proportional to recent allocation, never to deployment size.
        """
        if self.mode != "manual" or not self.frozen:
            return
        self._timed_collect(1)

    def disengage(self) -> None:
        """Restore the interpreter's prior GC configuration (idempotent)."""
        if not self.engaged:
            return
        if self.mode == "manual":
            # One full sweep picks up every cycle created while ambient
            # collection was off, so nothing leaks past the deployment.
            self._timed_collect(2)
        if self.frozen:
            gc.unfreeze()
            self.frozen = False
        if self._saved_thresholds is not None:
            gc.set_threshold(*self._saved_thresholds)
        if self._saved_enabled:
            gc.enable()
        elif self._saved_enabled is not None:
            gc.disable()
        self.engaged = False

    # ------------------------------------------------------------- accounting
    def _timed_collect(self, generation: int) -> None:
        started = time.perf_counter()  # det: ignore[DET102] -- GC pause attribution, digest-excluded
        reclaimed = gc.collect(generation)
        pause = time.perf_counter() - started  # det: ignore[DET102] -- GC pause attribution, digest-excluded
        self.explicit_collects += 1
        self.collected_objects += reclaimed
        self.pause_wall_s += pause
        if pause > self.pause_max_s:
            self.pause_max_s = pause
        profiler = self.profiler
        if profiler is not None:
            profiler.add_site(PROFILE_SITE, pause)

    def ambient_collections(self) -> List[int]:
        """Per-generation ambient collection counts since :meth:`engage`."""
        if self._stats_at_engage is None:
            return [s["collections"] for s in gc.get_stats()]
        return [now["collections"] - then["collections"]
                for now, then in zip(gc.get_stats(), self._stats_at_engage)]

    def section(self) -> dict:
        """The digest-excluded ``gc`` report section."""
        return {
            "mode": self.mode,
            "frozen_objects": self.frozen_objects,
            "explicit_collects": self.explicit_collects,
            "collected_objects": self.collected_objects,
            "pause_wall_s": round(self.pause_wall_s, 6),
            "pause_max_s": round(self.pause_max_s, 6),
            "ambient_collections": self.ambient_collections(),
            "thresholds": list(gc.get_threshold()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<GCPolicy {self.mode} engaged={self.engaged} "
                f"frozen={self.frozen}>")
