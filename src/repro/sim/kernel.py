"""Event kernel: virtual clock, timer wheel and overflow heap.

The :class:`Simulator` is the single authority on virtual time.  Every other
component (network, daemons, controller, applications) schedules callbacks on
it.  Determinism is guaranteed by a monotonically increasing sequence number
used to break ties between events scheduled for the same instant, and by the
simulator-owned random number generator.

Two interchangeable kernels implement the event queue:

``kernel="wheel"`` (default)
    A timer wheel tuned for the dominant short-delay periodic events (RPC
    timeouts, stabilization rounds, churn ticks).  Four structures cooperate,
    all ordered by the exact ``(time, seq)`` key so the execution order is
    byte-identical to the heap kernel:

    * a *ready* deque — events scheduled for the current instant
      (``delay == 0``, the process-step hot path).  Appends are naturally
      sorted because both the clock and the sequence counter are monotonic,
      so no heap operation is ever needed for them;
    * a *cursor* heap — events belonging to wheel buckets the clock has
      already reached;
    * the *wheel* — one unsorted bucket per tick for events within the
      horizon (``wheel_tick * wheel_slots`` seconds).  Insertion is an O(1)
      list append; cancelled events are purged in bulk when their bucket is
      loaded into the cursor;
    * an *overflow* heap for far-future events (beyond the horizon), with
      lazy compaction once cancelled entries dominate.

``kernel="heap"``
    The original binary-heap kernel, kept as a faithful baseline for
    ``scenarios bench`` comparisons.

Both kernels maintain an O(1) pending-event counter (the heap kernel used to
scan the whole queue on every :attr:`Simulator.pending_events` read).
"""

from __future__ import annotations

import random
import sys
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

#: CPython-only refcount probe used by the event free-list (None elsewhere).
_getrefcount = getattr(sys, "getrefcount", None)

#: upper bound on recycled ScheduledEvent objects kept per simulator
_FREE_LIST_MAX = 4096


class ScheduledEvent:
    """A cancellable callback scheduled on the simulator.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`.  Calling :meth:`cancel` before the event
    fires prevents the callback from running; cancelling an event that has
    already fired is a no-op.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired",
                 "origin", "_sim", "_epoch", "_overflow")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None, epoch: int = 0):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        #: provenance string ("who scheduled this"), stamped only when a
        #: sanitizer (repro.sim.sanitizer) or tracer (repro.obs) is
        #: installed; None otherwise
        self.origin = None
        self._sim = sim
        self._epoch = epoch
        self._overflow = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled(self)

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<ScheduledEvent t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed of the simulator-owned :class:`random.Random`.  All stochastic
        models (latency jitter, loss, host load, workloads) must draw either
        from :attr:`rng` or from a substream derived via
        :func:`repro.sim.rng.substream` so that runs are reproducible.
    kernel:
        ``"wheel"`` (timer wheel + overflow heap, default) or ``"heap"``
        (the original binary-heap kernel).  Both execute events in exactly
        the same ``(time, seq)`` order, so results are byte-identical; the
        wheel is simply faster on timer-churn-heavy workloads.
    wheel_tick / wheel_slots:
        Bucket granularity and count of the timer wheel.  The horizon
        (``wheel_tick * wheel_slots``) should cover the common delays (RPC
        timeouts, stabilization periods); longer delays fall back to the
        overflow heap.
    """

    def __init__(self, seed: int = 0, kernel: str = "wheel",
                 wheel_tick: float = 0.05, wheel_slots: int = 4096):
        if kernel not in ("wheel", "heap"):
            raise ValueError(f"unknown kernel: {kernel!r} (expected 'wheel' or 'heap')")
        if wheel_tick <= 0 or wheel_slots < 2:
            raise ValueError("wheel_tick must be positive and wheel_slots >= 2")
        self.kernel = kernel
        self._use_wheel = kernel == "wheel"
        self._now: float = 0.0
        self._seq: int = 0
        self._stop_requested = False
        self._running = False
        self.seed = seed
        self.rng = random.Random(seed)
        #: number of callbacks executed so far (useful for tests and stats)
        self.executed_events = 0
        #: events that were pending when :meth:`clear` dropped them — they
        #: neither fired nor were cancelled, so the ``cancelled_events``
        #: derivation has to account for them separately
        self._cleared_events = 0
        #: fresh ScheduledEvent constructions — counted on the cold
        #: allocation branch so the recycling hot path stays increment-free;
        #: see the ``recycled_events`` property
        self.allocated_events = 0
        # O(1) pending-event accounting (events scheduled minus fired/cancelled)
        self._pending = 0
        self._epoch = 0
        self._next_pid = 0
        # --- heap kernel state
        self._heap: list[ScheduledEvent] = []
        # --- wheel kernel state
        self._tick = float(wheel_tick)
        self._inv_tick = 1.0 / float(wheel_tick)
        # rounded up to a power of two so slot indexing is a mask, not a modulo
        self._slots = 1 << (int(wheel_slots) - 1).bit_length()
        self._slot_mask = self._slots - 1
        self._ready: deque = deque()
        self._cursor: list = []
        self._wheel: list[list] = [[] for _ in range(self._slots)] if kernel == "wheel" else []
        self._wheel_count = 0
        self._cur_tick = 0
        self._overflow: list = []
        self._overflow_ghosts = 0
        # Free-list of dead ScheduledEvent objects — both fired events and
        # cancelled ones (reclaimed when their queue entry is skipped or their
        # wheel bucket loads; RPC timeout timers are almost always cancelled
        # by the reply, so they dominate).  Recycling only happens when the
        # refcount proves no external handle survived, so a held event can
        # never be mutated under its owner's feet.
        self._free: list[ScheduledEvent] = []
        #: runtime sanitizer (repro.sim.sanitizer.Sanitizer) or None; the
        #: hot paths pay a single pointer test when disabled
        self._san = None
        #: observability handle (repro.obs.Observability) or None — same
        #: single-pointer-test discipline as the sanitizer
        self._obs = None
        #: origin-stamping hook (obs tracing only; the sanitizer stamps
        #: through its own note_scheduled when both are installed)
        self._obs_stamp = None
        #: GC discipline (repro.sim.gcpolicy.GCPolicy) or None — the
        #: harness's drain loop runs explicit-collect checkpoints through
        #: this pointer; never consulted on the event hot path
        self._gcpolicy = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    @property
    def recycled_events(self) -> int:
        """Events served from the free list instead of a fresh allocation.

        Every insert either recycles or allocates, so this is derived from
        the monotonic sequence counter rather than maintained with an
        increment on the recycling hot path.
        """
        return self._seq - self.allocated_events

    @property
    def cancelled_events(self) -> int:
        """``cancel()`` calls on live events (timer churn; metrics section).

        Derived — every inserted event either fires, is cancelled, was
        dropped by :meth:`clear`, or is still pending — so the cancel hot
        path carries no extra increment.  (Cancelling an event that a
        ``clear()`` already dropped is not counted; the event was dead.)
        """
        return (self._seq - self.executed_events
                - self._pending - self._cleared_events)

    def allocate_pid(self) -> int:
        """Next process id (per-simulator, so co-hosted runs stay deterministic)."""
        self._next_pid += 1
        return self._next_pid

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self._insert(self._now + delay, callback, args)

    def schedule_at(self, when: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        return self._insert(when, callback, args)

    def _insert(self, when: float, callback: Callable[..., Any], args: tuple) -> ScheduledEvent:
        self._seq = seq = self._seq + 1
        free = self._free
        san = self._san
        if free:
            event = free.pop()
            if san is not None:
                san.check_recycled(event)
            event.time = when
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.fired = False
            event._epoch = self._epoch
            event._overflow = False
        else:
            self.allocated_events += 1
            event = ScheduledEvent(when, seq, callback, args, self, self._epoch)
        if san is not None:
            san.note_scheduled(event)
        elif self._obs_stamp is not None:
            self._obs_stamp(event)
        self._pending += 1
        if not self._use_wheel:
            heappush(self._heap, event)
            return event
        if when == self._now:
            # Hot path: process steps / future resumptions scheduled "now".
            # The deque stays sorted because time and seq are both monotonic.
            self._ready.append((when, seq, event))
            return event
        # Inline _bucket_of: one multiply plus boundary corrections.
        tick = self._tick
        bucket = int(when * self._inv_tick)
        while bucket * tick > when:
            bucket -= 1
        while (bucket + 1) * tick <= when:
            bucket += 1
        cur = self._cur_tick
        if bucket <= cur:
            heappush(self._cursor, (when, seq, event))
        elif bucket - cur < self._slots:
            self._wheel[bucket & self._slot_mask].append((when, seq, event))
            self._wheel_count += 1
        else:
            event._overflow = True
            heappush(self._overflow, (when, seq, event))
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at the current instant (after pending same-time events)."""
        return self._insert(self._now, callback, args)

    # -------------------------------------------------------- wheel internals
    def _bucket_of(self, when: float) -> int:
        """Tick index ``b`` with ``b*tick <= when < (b+1)*tick`` under exact
        float comparison (the correction loops absorb multiplication
        rounding, keeping bucket boundaries consistent everywhere)."""
        tick = self._tick
        idx = int(when * self._inv_tick)
        while idx * tick > when:
            idx -= 1
        while (idx + 1) * tick <= when:
            idx += 1
        return idx

    def _note_cancelled(self, event: ScheduledEvent) -> None:
        if event._epoch != self._epoch:
            return  # scheduled before a clear(); no longer accounted
        self._pending -= 1
        if event._overflow:
            self._overflow_ghosts += 1
            # Lazy purge: rebuild the overflow heap once ghosts dominate.
            if self._overflow_ghosts > 64 and self._overflow_ghosts * 2 >= len(self._overflow):
                self._overflow = [e for e in self._overflow if not e[2].cancelled]
                heapify(self._overflow)
                self._overflow_ghosts = 0

    def _advance_wheel(self) -> bool:
        """Move the wheel forward to the next tick holding events.

        Loads that bucket (minus cancelled ghosts) into the cursor and
        migrates overflow-heap entries that now fall inside it.  Returns
        ``False`` when no events remain anywhere.
        """
        overflow = self._overflow
        free = self._free
        while overflow and overflow[0][2].cancelled:
            event = heappop(overflow)[2]
            self._overflow_ghosts -= 1
            # refs: the event local + getrefcount's argument (the popped entry
            # tuple died above).  More means someone still holds the handle.
            if _getrefcount is not None and _getrefcount(event) == 2 \
                    and len(free) < _FREE_LIST_MAX:
                event.callback = None
                event.args = ()
                free.append(event)
        target = -1
        if self._wheel_count:
            wheel = self._wheel
            mask = self._slot_mask
            t = self._cur_tick + 1
            end = t + self._slots
            while t < end and not wheel[t & mask]:
                t += 1
            target = t
        if overflow:
            over_bucket = self._bucket_of(overflow[0][0])
            if target < 0 or over_bucket < target:
                target = over_bucket
        if target < 0:
            return False
        self._cur_tick = target
        slot = target & self._slot_mask
        bucket = self._wheel[slot]
        cursor = self._cursor
        if bucket:
            self._wheel[slot] = []
            self._wheel_count -= len(bucket)
            live = []
            for entry in bucket:
                event = entry[2]
                if not event.cancelled:
                    live.append(entry)
                # Cancelled-timer recycling: RPC timeout timers are cancelled
                # by the reply long before their bucket loads, so this purge
                # is where most dead events surface.  refs: the entry tuple +
                # the event local + getrefcount's argument.
                elif _getrefcount is not None and _getrefcount(event) == 3 \
                        and len(free) < _FREE_LIST_MAX:
                    event.callback = None
                    event.args = ()
                    free.append(event)
            if live:
                cursor.extend(live)
                heapify(cursor)
        if overflow:
            boundary = (target + 1) * self._tick
            while overflow and overflow[0][0] < boundary:
                entry = heappop(overflow)
                event = entry[2]
                event._overflow = False
                if event.cancelled:
                    self._overflow_ghosts -= 1
                    if _getrefcount is not None and _getrefcount(event) == 3 \
                            and len(free) < _FREE_LIST_MAX:
                        event.callback = None
                        event.args = ()
                        free.append(event)
                else:
                    heappush(cursor, entry)
        return True

    def _pop_next_wheel(self) -> Optional[ScheduledEvent]:
        """Remove and return the next pending event in (time, seq) order."""
        ready = self._ready
        cursor = self._cursor
        free = self._free
        while True:
            while ready and ready[0][2].cancelled:
                event = ready.popleft()[2]
                if _getrefcount is not None and _getrefcount(event) == 2 \
                        and len(free) < _FREE_LIST_MAX:
                    event.callback = None
                    event.args = ()
                    free.append(event)
            while cursor and cursor[0][2].cancelled:
                event = heappop(cursor)[2]
                if _getrefcount is not None and _getrefcount(event) == 2 \
                        and len(free) < _FREE_LIST_MAX:
                    event.callback = None
                    event.args = ()
                    free.append(event)
            if ready:
                if cursor and cursor[0] < ready[0]:
                    return heappop(cursor)[2]
                return ready.popleft()[2]
            if cursor:
                return heappop(cursor)[2]
            if not self._advance_wheel():
                return None

    # ------------------------------------------------------------------- run
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the event
        queue was empty (cancelled events are skipped transparently).
        """
        if not self._use_wheel:
            heap = self._heap
            free = self._free
            while heap:
                event = heappop(heap)
                if event.cancelled:
                    # refs: the event local + getrefcount's argument.
                    if _getrefcount is not None and _getrefcount(event) == 2 \
                            and len(free) < _FREE_LIST_MAX:
                        event.callback = None
                        event.args = ()
                        free.append(event)
                    continue
                self._execute(event)
                return True
            return False
        event = self._pop_next_wheel()
        if event is None:
            return False
        self._execute(event)
        return True

    def _execute(self, event: ScheduledEvent) -> None:
        if self._san is not None:
            self._san.before_execute(event)
        self._now = event.time
        event.fired = True
        self._pending -= 1
        self.executed_events += 1
        obs = self._obs
        if obs is None:
            event.callback(*event.args)
        else:
            # Observed dispatch (ring/trace/profile): every reference the
            # observer takes dies before run_event returns, so the refcount
            # gate below still sees exactly the expected handles.
            obs.run_event(event)
        # refs here: caller's local + our parameter + getrefcount argument.
        # Anything above 3 means an external handle survived — don't recycle.
        if _getrefcount is not None and _getrefcount(event) == 3 \
                and len(self._free) < _FREE_LIST_MAX:
            event.callback = None
            event.args = ()
            self._free.append(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or virtual time reaches ``until``.

        Returns the virtual time at which the run stopped.  The clock jumps
        forward to ``until`` only when the queue genuinely drained — not when
        :meth:`stop` interrupted the run with events still pending before
        ``until`` (they must remain schedulable at their original times).
        """
        self._stop_requested = False
        self._running = True
        try:
            if not self._use_wheel:
                return self._run_heap(until)
            return self._run_wheel(until)
        finally:
            self._running = False

    def _run_heap(self, until: Optional[float]) -> float:
        heap = self._heap
        free = self._free
        while heap and not self._stop_requested:
            head = heap[0]
            if head.cancelled:
                heappop(heap)
                # refs: the head local + getrefcount's argument.
                if _getrefcount is not None and _getrefcount(head) == 2 \
                        and len(free) < _FREE_LIST_MAX:
                    head.callback = None
                    head.args = ()
                    free.append(head)
                continue
            if until is not None and head.time > until:
                self._now = until
                return self._now
            heappop(heap)
            self._execute(head)
        if not heap and not self._stop_requested:
            if until is not None and self._now < until:
                self._now = until
        return self._now

    def _run_wheel(self, until: Optional[float]) -> float:
        ready = self._ready
        cursor = self._cursor
        free = self._free
        # Hoisted once per run(): observability installs before the run
        # starts, so the per-event test is a local load, not an attribute.
        obs = self._obs
        while not self._stop_requested:
            while ready and ready[0][2].cancelled:
                event = ready.popleft()[2]
                if _getrefcount is not None and _getrefcount(event) == 2 \
                        and len(free) < _FREE_LIST_MAX:
                    event.callback = None
                    event.args = ()
                    free.append(event)
            while cursor and cursor[0][2].cancelled:
                event = heappop(cursor)[2]
                if _getrefcount is not None and _getrefcount(event) == 2 \
                        and len(free) < _FREE_LIST_MAX:
                    event.callback = None
                    event.args = ()
                    free.append(event)
            if ready:
                from_cursor = bool(cursor) and cursor[0] < ready[0]
                entry = cursor[0] if from_cursor else ready[0]
            elif cursor:
                from_cursor = True
                entry = cursor[0]
            else:
                if self._advance_wheel():
                    continue
                if until is not None and self._now < until:
                    self._now = until
                break
            if until is not None and entry[0] > until:
                self._now = until
                break
            if from_cursor:
                heappop(cursor)
            else:
                ready.popleft()
            event = entry[2]
            if self._san is not None:
                self._san.before_execute(event)
            self._now = entry[0]
            event.fired = True
            self._pending -= 1
            self.executed_events += 1
            if obs is None:
                event.callback(*event.args)
            else:
                obs.run_event(event)
            # refs here: the popped entry tuple + the event local +
            # getrefcount's argument.  More means an external handle exists.
            if _getrefcount is not None and _getrefcount(event) == 3 \
                    and len(self._free) < _FREE_LIST_MAX:
                event.callback = None
                event.args = ()
                self._free.append(event)
        return self._now

    def run_for(self, duration: float) -> float:
        """Run for ``duration`` seconds of virtual time from the current instant."""
        return self.run(until=self._now + duration)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    # --------------------------------------------------------------- queries
    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events (O(1))."""
        return self._pending

    @property
    def running(self) -> bool:
        """True while :meth:`run` is executing."""
        return self._running

    def clear(self) -> None:
        """Drop all pending events (the clock is left unchanged)."""
        self._epoch += 1
        self._cleared_events += self._pending
        self._pending = 0
        self._heap.clear()
        self._ready.clear()
        self._cursor.clear()
        if self._use_wheel:
            if self._wheel_count:
                self._wheel = [[] for _ in range(self._slots)]
            self._wheel_count = 0
            self._cur_tick = self._bucket_of(self._now)
        self._overflow.clear()
        self._overflow_ghosts = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator kernel={self.kernel} now={self._now:.6f} "
                f"pending={self.pending_events}>")
