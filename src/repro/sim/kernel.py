"""Event heap and virtual clock.

The :class:`Simulator` is the single authority on virtual time.  Every other
component (network, daemons, controller, applications) schedules callbacks on
it.  Determinism is guaranteed by a monotonically increasing sequence number
used to break ties between events scheduled for the same instant, and by the
simulator-owned random number generator.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional


class ScheduledEvent:
    """A cancellable callback scheduled on the simulator.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`.  Calling :meth:`cancel` before the event
    fires prevents the callback from running; cancelling an event that has
    already fired is a no-op.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if it already ran)."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<ScheduledEvent t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed of the simulator-owned :class:`random.Random`.  All stochastic
        models (latency jitter, loss, host load, workloads) must draw either
        from :attr:`rng` or from a substream derived via
        :func:`repro.sim.rng.substream` so that runs are reproducible.
    """

    def __init__(self, seed: int = 0):
        self._heap: list[ScheduledEvent] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._stop_requested = False
        self._running = False
        self.seed = seed
        self.rng = random.Random(seed)
        #: number of callbacks executed so far (useful for tests and stats)
        self.executed_events = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        self._seq += 1
        event = ScheduledEvent(when, self._seq, callback, args)
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at the current instant (after pending same-time events)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------- run
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the event
        queue was empty (cancelled events are skipped transparently).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fired = True
            self.executed_events += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or virtual time reaches ``until``.

        Returns the virtual time at which the run stopped.
        """
        self._stop_requested = False
        self._running = True
        try:
            while self._heap and not self._stop_requested:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                self.step()
            else:
                if until is not None and self._now < until:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_for(self, duration: float) -> float:
        """Run for ``duration`` seconds of virtual time from the current instant."""
        return self.run(until=self._now + duration)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    # --------------------------------------------------------------- queries
    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def running(self) -> bool:
        """True while :meth:`run` is executing."""
        return self._running

    def clear(self) -> None:
        """Drop all pending events (the clock is left unchanged)."""
        self._heap.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.6f} pending={self.pending_events}>"
