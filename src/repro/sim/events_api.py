"""The ``splay.events`` compatible API.

Every SPLAY application instance receives an :class:`Events` object bound to
its :class:`AppContext`.  The context keeps track of every process and timer
the application creates so that the daemon (or the churn manager) can tear
the instance down instantly — exactly like killing the sandboxed process in
the original system.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional

from repro.sim.futures import Future
from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.process import Process


class AppContext:
    """Book-keeping for one sandboxed application instance.

    Tracks spawned processes, pending timers, named-event waiters and
    arbitrary cleanup callbacks.  :meth:`kill` cancels all of them; after the
    kill the context refuses to register new activity, which makes races
    between churn and application code harmless.
    """

    __slots__ = ("sim", "name", "alive", "_processes", "_timers", "_cleanups",
                 "_timer_high_water", "_process_high_water")

    def __init__(self, sim: Simulator, name: str = "app"):
        self.sim = sim
        self.name = name
        self.alive = True
        self._processes: List[Process] = []
        self._timers: List[ScheduledEvent] = []
        self._cleanups: List[Callable[[], None]] = []
        # Compaction water marks: without pruning these lists grow without
        # bound over a long run (and kill() would walk millions of dead
        # entries).  The threshold doubles with the surviving population so a
        # context with genuinely many live entries does not re-scan on every
        # append; the floor is small because dead entries pin their objects
        # (a process pins its whole generator frame) across every context of
        # a 10k-node deployment.
        self._timer_high_water = 16
        self._process_high_water = 16

    # --------------------------------------------------------------- tracking
    def track_process(self, process: Process) -> Process:
        if not self.alive:
            process.kill("context dead")
            return process
        self._processes.append(process)
        if len(self._processes) >= self._process_high_water:
            self._processes = [p for p in self._processes if not p.done.done()]
            self._process_high_water = max(16, 2 * len(self._processes))
        return process

    def track_timer(self, event: ScheduledEvent) -> ScheduledEvent:
        if not self.alive:
            event.cancel()
            return event
        self._timers.append(event)
        if len(self._timers) >= self._timer_high_water:
            self._timers = [t for t in self._timers if t.pending]
            self._timer_high_water = max(16, 2 * len(self._timers))
        return event

    def add_cleanup(self, callback: Callable[[], None]) -> None:
        """Register a callback run when the context is killed."""
        if not self.alive:
            callback()
            return
        self._cleanups.append(callback)

    # ------------------------------------------------------------------ kill
    def kill(self, reason: str = "killed") -> None:
        """Terminate everything the application created."""
        if not self.alive:
            return
        self.alive = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for process in self._processes:
            process.kill(reason)
        self._processes.clear()
        cleanups, self._cleanups = self._cleanups, []
        for callback in cleanups:
            try:
                callback()
            except Exception:  # noqa: BLE001 - cleanup must not cascade
                pass

    # --------------------------------------------------------------- queries
    @property
    def live_processes(self) -> int:
        self._processes = [p for p in self._processes if p.alive or not p.done.done()]
        return sum(1 for p in self._processes if p.alive)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<AppContext {self.name} {'alive' if self.alive else 'dead'}>"


class PeriodicTask:
    """Handle returned by :meth:`Events.periodic`; supports cancellation."""

    __slots__ = ("cancelled", "_current")

    def __init__(self) -> None:
        self.cancelled = False
        self._current: Optional[ScheduledEvent] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._current is not None:
            self._current.cancel()
            self._current = None


class Events:
    """Application-facing event API (``splay.events``).

    Mirrors the operations used by the paper's code listings:
    ``events.thread``, ``events.periodic``, ``events.sleep`` and the implicit
    main loop.  All activity is tracked on the bound :class:`AppContext`.
    """

    __slots__ = ("sim", "context", "_named_waiters")

    def __init__(self, sim: Simulator, context: Optional[AppContext] = None):
        self.sim = sim
        self.context = context or AppContext(sim)
        # Allocated on the first wait(): most instances never use named events.
        self._named_waiters: Optional[Dict[str, List[Future]]] = None

    # --------------------------------------------------------------- threads
    def thread(self, fn: Callable[..., Any], *args: Any, name: str = "", delay: float = 0.0) -> Process:
        """Spawn ``fn(*args)`` as a new coroutine ("thread" in SPLAY terms)."""
        if _is_generator_function(fn):
            target: Any = fn(*args)
        elif args:
            target = lambda: fn(*args)  # noqa: E731 - deferred invocation
        else:
            target = fn
        process = Process(self.sim, target, name=name or f"{self.context.name}.thread")
        process.start(delay)
        return self.context.track_process(process)

    def periodic(self, fn: Callable[[], Any], interval: float, jitter: float = 0.0,
                 initial_delay: Optional[float] = None) -> PeriodicTask:
        """Run ``fn`` every ``interval`` seconds (as done for Chord stabilization).

        ``fn`` may be a plain function or a generator function; each firing
        runs as its own coroutine.  ``jitter`` adds a uniform random offset in
        ``[0, jitter)`` to each period to avoid lock-step behaviour across
        thousands of simulated nodes.
        """
        if interval <= 0:
            raise ValueError("periodic interval must be positive")
        task = PeriodicTask()
        name = f"{self.context.name}.periodic"

        def _fire() -> None:
            if task.cancelled or not self.context.alive:
                return
            self.thread(fn, name=name)
            _arm()

        def _arm() -> None:
            if task.cancelled or not self.context.alive:
                return
            delay = interval + (self.sim.rng.uniform(0.0, jitter) if jitter else 0.0)
            task._current = self.sim.schedule(delay, _fire)

        # The task is tracked once, as a cleanup; re-armed timers are NOT
        # appended to the context's timer list.  A periodic task re-arms on
        # every firing, so per-arm tracking grew (and re-compacted) the list
        # forever *and* pinned a reference that kept every fired periodic
        # timer out of the kernel's free list.  kill() still cancels the
        # task — cancelling it cancels whichever timer is current.
        first = initial_delay if initial_delay is not None else interval
        first = first + (self.sim.rng.uniform(0.0, jitter) if jitter else 0.0)
        task._current = self.sim.schedule(first, _fire)
        self.context.add_cleanup(task.cancel)
        return task

    def timer(self, delay: float, fn: Callable[[], Any]) -> ScheduledEvent:
        """Run ``fn`` once, ``delay`` seconds from now."""
        return self.context.track_timer(self.sim.schedule(delay, lambda: self.thread(fn)))

    # ---------------------------------------------------------------- sleeps
    @staticmethod
    def sleep(duration: float) -> float:
        """Return a value to ``yield`` in order to sleep ``duration`` seconds."""
        return float(duration)

    # ---------------------------------------------------------- named events
    def fire(self, name: str, value: Any = None) -> int:
        """Wake every coroutine waiting on event ``name``; returns waiter count."""
        if self._named_waiters is None:
            return 0
        waiters = self._named_waiters.pop(name, [])
        for waiter in waiters:
            waiter.set_result(value)
        return len(waiters)

    def wait(self, name: str) -> Future:
        """Return a future completing on the next :meth:`fire` for ``name``."""
        future = Future(name=f"event:{name}")
        if self._named_waiters is None:
            self._named_waiters = {}
        self._named_waiters.setdefault(name, []).append(future)
        return future

    # ------------------------------------------------------------------ misc
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.sim.now

    def exit(self) -> None:
        """Terminate the application instance (kills all its coroutines)."""
        self.context.kill("events.exit")


_is_generator_function = inspect.isgeneratorfunction
