"""Deterministic random-substream derivation.

Reproducibility of every experiment is a core goal of SPLAY ("allow
comparison of competing algorithms under the very same churn scenarios").
All stochastic components in this reproduction draw from substreams derived
deterministically from a root seed and a tuple of labels, so that e.g. the
latency model and the workload generator never perturb each other's draws.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any


def substream(seed: int, *labels: Any) -> random.Random:
    """Return a :class:`random.Random` deterministically derived from ``seed`` and ``labels``.

    Examples
    --------
    >>> a = substream(42, "latency", 3)
    >>> b = substream(42, "latency", 3)
    >>> a.random() == b.random()
    True
    >>> substream(42, "latency", 3).random() != substream(42, "loss", 3).random()
    True
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    derived_seed = int.from_bytes(digest.digest()[:8], "big")
    return random.Random(derived_seed)
