"""Coroutine synchronisation primitives (``splay.locks`` equivalent).

The paper points out that shared-data races under cooperative multitasking
can only occur across yield points, and provides a lock library as a simple
protection mechanism.  This module provides :class:`Lock`, a counting
:class:`Semaphore` and a producer/consumer :class:`Queue`, all awaited by
yielding the future returned from their acquire/get methods.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.futures import Future
from repro.sim.kernel import Simulator


class Lock:
    """A non-reentrant mutual-exclusion lock for coroutines."""

    def __init__(self, sim: Simulator, name: str = "lock"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: Deque[Future] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Future:
        """Return a future that completes once the lock is held by the caller."""
        future = Future(name=f"{self.name}.acquire")
        if not self._locked:
            self._locked = True
            future.set_result(True)
        else:
            self._waiters.append(future)
        return future

    def release(self) -> None:
        """Release the lock, waking the next waiter if any."""
        if not self._locked:
            raise RuntimeError(f"{self.name}: release of an unlocked lock")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.cancelled():
                continue
            waiter.set_result(True)
            return
        self._locked = False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Lock {self.name} {'locked' if self._locked else 'free'} waiters={len(self._waiters)}>"


class Semaphore:
    """A counting semaphore for coroutines."""

    def __init__(self, sim: Simulator, value: int = 1, name: str = "semaphore"):
        if value < 0:
            raise ValueError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: Deque[Future] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Future:
        future = Future(name=f"{self.name}.acquire")
        if self._value > 0:
            self._value -= 1
            future.set_result(True)
        else:
            self._waiters.append(future)
        return future

    def release(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.cancelled():
                continue
            waiter.set_result(True)
            return
        self._value += 1


class Queue:
    """An unbounded FIFO queue connecting producer and consumer coroutines."""

    def __init__(self, sim: Simulator, name: str = "queue"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Future] = deque()

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking one waiting consumer if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.cancelled():
                continue
            getter.set_result(item)
            return
        self._items.append(item)

    def get(self) -> Future:
        """Return a future completing with the next item."""
        future = Future(name=f"{self.name}.get")
        if self._items:
            future.set_result(self._items.popleft())
        else:
            self._getters.append(future)
        return future

    def get_nowait(self) -> Optional[Any]:
        """Dequeue immediately, or return ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Queue {self.name} items={len(self._items)} getters={len(self._getters)}>"
