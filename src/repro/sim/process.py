"""Generator-based cooperative coroutines ("threads" in SPLAY parlance).

SPLAY applications are written against a cooperative multitasking model:
coroutines yield the processor only at explicit blocking points (network I/O,
disk I/O, sleeps).  We reproduce this with Python generators driven by a
:class:`Process` object.

A coroutine is any generator function.  Inside it, the following values may
be yielded to block:

* a ``float``/``int`` — sleep that many (virtual) seconds;
* ``None`` — yield the processor and resume at the same instant;
* a :class:`~repro.sim.futures.Future` — resume when it completes, receiving
  its result (or having its exception raised at the yield point);
* another :class:`Process` — wait for it to terminate;
* a generator — run it as a child process and wait for its return value.

The return value of the generator (via ``return value``) becomes the result
of the process's :attr:`Process.done` future.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Callable, Generator, Optional

from repro.sim.futures import Future, FutureState

_PENDING = FutureState.PENDING
from repro.sim.kernel import ScheduledEvent, Simulator


class ProcessKilled(Exception):
    """Injected into a coroutine when its process is killed (e.g. by churn)."""


class Process:
    """Drives a generator coroutine on the simulator.

    Parameters
    ----------
    sim:
        The simulator providing the clock.
    generator:
        The coroutine to drive.  Plain callables are invoked immediately on
        start and the process completes with their return value.
    name:
        Optional label used in diagnostics.
    """

    __slots__ = ("pid", "sim", "name", "_generator", "_plain_callable", "done",
                 "_started", "_killed", "_pending_event", "_waiting_on")

    def __init__(self, sim: Simulator, generator: Any, name: str = ""):
        # pids come from the simulator so that two seeded simulations running
        # in the same Python process allocate identical, reproducible ids
        # (a process-wide class counter would interleave them).
        self.pid = sim.allocate_pid()
        self.sim = sim
        self.name = name or f"process-{self.pid}"
        self._generator: Optional[Generator] = generator if isinstance(generator, GeneratorType) else None
        self._plain_callable: Optional[Callable[[], Any]] = None
        if self._generator is None:
            if callable(generator):
                self._plain_callable = generator
            else:
                raise TypeError(f"Process target must be a generator or callable, got {type(generator)!r}")
        #: completes when the coroutine returns, raises, or is killed
        self.done = Future()
        self._started = False
        self._killed = False
        self._pending_event: Optional[ScheduledEvent] = None
        self._waiting_on: Optional[Future] = None

    # ------------------------------------------------------------- lifecycle
    def start(self, delay: float = 0.0) -> "Process":
        """Schedule the first step of the coroutine ``delay`` seconds from now."""
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        self._started = True
        self._pending_event = self.sim.schedule(delay, self._first_step)
        return self

    def kill(self, reason: str = "killed") -> None:
        """Terminate the coroutine.

        The :class:`ProcessKilled` exception is raised at the coroutine's
        current yield point so that ``finally`` blocks run; the ``done``
        future is cancelled.
        """
        if self.done.done() or self._killed:
            return
        self._killed = True
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_on is not None:
            # Detach: the future may still complete but we will ignore it.
            self._waiting_on = None
        if self._generator is not None:
            try:
                self._generator.throw(ProcessKilled(reason))
            except (ProcessKilled, StopIteration):
                pass
            except Exception:
                # Application cleanup code misbehaving must not take down the
                # simulator; the process is being killed regardless.  This
                # also covers a coroutine killing *itself* (e.g. via
                # events.exit()): throw/close on the currently-executing
                # generator raise ValueError, and the _step frame driving it
                # observes _killed and stops at the next opportunity.
                pass
            finally:
                try:
                    self._generator.close()
                except Exception:
                    pass
        self.done.cancel()

    @property
    def alive(self) -> bool:
        """True while the coroutine has not yet terminated."""
        return self._started and not self.done.done()

    # ----------------------------------------------------------------- steps
    def _first_step(self) -> None:
        self._pending_event = None
        if self._killed:
            return
        if self._plain_callable is not None:
            try:
                result = self._plain_callable()
            except Exception as exc:  # noqa: BLE001 - propagate via the future
                if self.done._state is _PENDING:
                    self.done.set_exception(exc)
                return
            if isinstance(result, GeneratorType):
                # A callable returning a generator is treated as a coroutine.
                self._generator = result
                self._step(None, None)
                return
            # The callable may have killed its own context (events.exit), in
            # which case ``done`` is already cancelled — don't complete it.
            if self.done._state is _PENDING:
                self.done.set_result(result)
            return
        self._step(None, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        san = self.sim._san
        if san is not None:
            pending = self._pending_event
            # The armed step event is marked fired before its callback runs,
            # so a still-pending event here means a second resumption path
            # (not the one that armed it) is driving the coroutine.
            if pending is not None and not pending.fired and not pending.cancelled:
                san.double_step(self, pending)
        self._pending_event = None
        if self._killed or self.done._state is not _PENDING:
            return
        assert self._generator is not None
        try:
            if exc is not None:
                yielded = self._generator.throw(exc)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            # A coroutine that killed itself (events.exit) returns here with
            # ``done`` already cancelled; completing it again would be the
            # exact double-completion the sanitizer flags.
            if self.done._state is _PENDING:
                self.done.set_result(getattr(stop, "value", None))
            return
        except ProcessKilled:
            self.done.cancel()
            return
        except Exception as error:  # noqa: BLE001 - propagate via the future
            if self.done._state is _PENDING:
                self.done.set_exception(error)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if type(yielded) is Future:
            # Fast path: blocking on an RPC reply or a delivery future is by
            # far the most common yield in the workloads.
            self._wait_future(yielded)
        elif yielded is None:
            self._pending_event = self.sim.schedule(0.0, self._step, None, None)
        elif isinstance(yielded, (int, float)):
            self._pending_event = self.sim.schedule(float(yielded), self._step, None, None)
        elif isinstance(yielded, Future):
            self._wait_future(yielded)
        elif isinstance(yielded, Process):
            self._wait_future(yielded.done)
        elif isinstance(yielded, GeneratorType):
            child = Process(self.sim, yielded, name=f"{self.name}.child")
            child.start()
            self._wait_future(child.done)
        else:
            self._step(None, TypeError(f"cannot wait on yielded value {yielded!r}"))

    def _wait_future(self, future: Future) -> None:
        self._waiting_on = future

        def _resume(fut: Future) -> None:
            if self._waiting_on is not fut:
                return  # the process was killed or re-targeted meanwhile
            self._waiting_on = None
            if self._killed or self.done.done():
                return
            if fut.state is FutureState.DONE:
                self._pending_event = self.sim.schedule(0.0, self._step, fut.result(), None)
            else:
                error = fut.exception() or RuntimeError("future cancelled")
                self._pending_event = self.sim.schedule(0.0, self._step, None, error)

        future.add_done_callback(_resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done.done() else ("running" if self._started else "new")
        return f"<Process {self.name} {state}>"
