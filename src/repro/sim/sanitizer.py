"""Opt-in runtime sanitizer: invariant checks at the simulator's seams.

The static linter (:mod:`repro.analysis`) catches the hazard classes visible
in source; this module asserts the invariants only visible at runtime.  When
enabled (``--sanitize`` on every scenario, or :meth:`Sanitizer.install`
directly), cheap observation-only checks run on the hot path:

* **monotonic clock** -- no event executes at a virtual time before ``now``;
* **free-list integrity** -- a recycled :class:`ScheduledEvent` must be dead
  and scrubbed when it leaves the free list (guards the refcount-gated
  recycling of fired *and* cancelled events);
* **future legality** -- ``set_result`` / ``set_exception`` on an
  already-completed :class:`~repro.sim.futures.Future` (pending -> done is
  the only legal transition; ``cancel`` on a done future is a documented
  query-style no-op and not reported);
* **process single-step** -- a coroutine must only be resumed by the step
  event it armed (a second resumption path racing it is the aliasing
  symptom the free-list guards exist to prevent);
* **listener-table consistency** -- after a host is removed, no listener
  entry may keep routing messages to its endpoints;
* **bandwidth-flow conservation** -- the max-min allocation never hands a
  link more rate than its capacity;
* **store-cache coherence** -- the control plane's memoized alive/failed
  host views and each job's live-instance cache must equal a from-scratch
  recompute after every control action (guards the incremental
  invalidation the O(N)-scan elimination relies on).

Violations are *recorded*, never repaired, and carry event provenance
(which callback -- and thereby which process or timer -- scheduled the
offending event).  The sanitizer is observation-only by construction: it
draws no randomness, schedules nothing and mutates no simulation state, so
a clean run's report digest is byte-identical with the sanitizer on or off
(asserted in tests).  ``strict=True`` additionally raises
:class:`SanitizerError` at the first violation, which unit tests use to
pinpoint injected corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.sim import futures as _futures_module

#: sum of allocated rates may exceed a link's capacity by this relative slack
#: (progressive filling accumulates float dust at high flow counts)
FLOW_CONSERVATION_SLACK = 1e-6

#: violations kept verbatim; beyond this only the counters grow
MAX_RECORDED = 100


class SanitizerError(AssertionError):
    """Raised on the first violation when the sanitizer runs in strict mode."""


@dataclass
class Violation:
    """One observed invariant breach."""

    kind: str
    time: float
    detail: str
    provenance: str = ""
    #: last-K flight-recorder entries (rendered, oldest first) captured at
    #: record time when a recorder is attached — the events and spans the
    #: simulation dispatched right before the breach
    ring: Optional[List[str]] = None

    def render(self) -> str:
        text = f"[{self.kind}] t={self.time:.6f}: {self.detail}"
        if self.provenance:
            text += f" (provenance: {self.provenance})"
        if self.ring:
            context = "\n".join(f"    {line}" for line in self.ring)
            text += f"\n  ring (last {len(self.ring)} dispatches):\n{context}"
        return text


def _callback_label(callback: Any) -> str:
    """Human-readable identity of an event callback, including its owner.

    Bound methods expose their ``__self__``; when that object has a ``name``
    (processes, app contexts) the label pinpoints *which* process or timer
    scheduled the event -- the provenance the bug reports of PR 2/6 needed.
    """
    if callback is None:
        return "<scrubbed>"
    qualname = getattr(callback, "__qualname__", None) or repr(callback)
    owner = getattr(callback, "__self__", None)
    owner_name = getattr(owner, "name", None)
    if owner_name:
        return f"{qualname}[{owner_name}]"
    return qualname


class Sanitizer:
    """Collects invariant violations for one :class:`Simulator`.

    Create with the simulator to watch, then :meth:`install`.  The kernel,
    network and bandwidth seams consult their ``_san`` attribute (``None``
    when disabled, so the disabled hot path pays one pointer test); the
    future-legality hook is module-global in :mod:`repro.sim.futures`
    because futures do not know their simulator -- only one sanitizer can
    own it at a time (last install wins, uninstall restores ``None``).
    """

    def __init__(self, sim: Any, strict: bool = False):
        self.sim = sim
        self.strict = strict
        self.violations: List[Violation] = []
        self.counts: Dict[str, int] = {}
        #: (time, seq, callback) of the executing event — a tuple, not the
        #: event itself, so the sanitizer never holds a reference that would
        #: trip the kernel's refcount-gated free-list recycling
        self.current: Optional[tuple] = None
        #: flight recorder (repro.obs.FlightRecorder) whose last entries are
        #: attached to violation reports; wired by the deployment harness
        self.recorder: Optional[Any] = None
        self._installed = False

    # ------------------------------------------------------------ lifecycle
    def install(self) -> "Sanitizer":
        """Attach to the simulator and take the future-legality hook."""
        self.sim._san = self
        _futures_module._misuse_hook = self._future_misuse
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Detach (safe to call twice; leaves other sanitizers alone)."""
        if getattr(self.sim, "_san", None) is self:
            self.sim._san = None
        if _futures_module._misuse_hook == self._future_misuse:
            _futures_module._misuse_hook = None
        self._installed = False

    def __enter__(self) -> "Sanitizer":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()

    def watch_network(self, network: Any) -> None:
        """Enable the listener-table check on ``network``."""
        network._san = self
        bandwidth = getattr(network, "bandwidth", None)
        if bandwidth is not None:
            bandwidth._san = self

    # ------------------------------------------------------------- recording
    def record(self, kind: str, detail: str, provenance: str = "") -> None:
        violation = Violation(kind=kind, time=self.sim.now, detail=detail,
                              provenance=provenance)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if len(self.violations) < MAX_RECORDED:
            recorder = self.recorder
            if recorder is not None:
                # Snapshot the recent-dispatch ring into the report — the
                # full causal context, not just the one offending event.
                from repro.obs import RING_CONTEXT
                violation.ring = recorder.snapshot(last=RING_CONTEXT)
            self.violations.append(violation)
        if self.strict:
            raise SanitizerError(violation.render())

    @property
    def violation_count(self) -> int:
        return sum(self.counts.values())

    def current_label(self) -> str:
        """Provenance of whatever is executing right now."""
        current = self.current
        if current is None:
            return "external (no event executing)"
        time, seq, callback = current
        return f"{_callback_label(callback)} @(t={time:.6f}, seq={seq})"

    def summary(self) -> dict:
        """Report section (digest-excluded; see ``DIGEST_EXCLUDED_KEYS``)."""
        return {
            "enabled": True,
            "violations": self.violation_count,
            "by_kind": dict(sorted(self.counts.items())),
            "reports": [v.render() for v in self.violations[:20]],
        }

    # ------------------------------------------------------- kernel seams
    def note_scheduled(self, event: Any) -> None:
        """Stamp provenance on a freshly scheduled event."""
        event.origin = (f"{_callback_label(event.callback)} scheduled "
                        f"t={event.time:.6f} by {self.current_label()}")

    def before_execute(self, event: Any) -> None:
        """Monotonic-clock check; also anchors provenance for this callback."""
        if event.time < self.sim._now:
            self.record(
                "clock",
                f"event seq={event.seq} ({_callback_label(event.callback)}) "
                f"executes at t={event.time:.6f}, before now={self.sim._now:.6f}",
                provenance=event.origin or "unknown")
        self.current = (event.time, event.seq, event.callback)

    def check_recycled(self, event: Any) -> None:
        """A free-list pop must yield a dead, scrubbed event."""
        if not event.cancelled and not event.fired:
            self.record(
                "free_list",
                f"free list recycled a live pending event seq={event.seq} "
                f"({_callback_label(event.callback)}) -- an external handle "
                f"would observe it mutating under its feet",
                provenance=event.origin or "unknown")
        elif event.callback is not None:
            self.record(
                "free_list",
                f"free list held an unscrubbed event seq={event.seq} "
                f"({_callback_label(event.callback)}): callback still set",
                provenance=event.origin or "unknown")

    # ------------------------------------------------------- future seam
    def _future_misuse(self, future: Any, operation: str) -> None:
        state = getattr(future.state, "value", future.state)
        self.record(
            "future",
            f"{operation} on already-{state} future "
            f"{future.name or hex(id(future))} (pending -> done is the only "
            f"legal transition)",
            provenance=self.current_label())

    # ------------------------------------------------------- process seam
    def double_step(self, process: Any, event: Any) -> None:
        self.record(
            "process",
            f"process {process.name} resumed while its armed step event "
            f"seq={event.seq} is still pending -- two resumption paths race",
            provenance=self.current_label())

    # ------------------------------------------------------- network seam
    def check_listener_table(self, network: Any) -> None:
        """Every listener endpoint must belong to a registered host."""
        hosts = network.hosts
        for key, listener in network._listeners.items():
            if key[0] not in hosts:
                self.record(
                    "listener",
                    f"listener {key[0]}:{key[1]} survives its removed host "
                    f"(handler {_callback_label(listener.handler)})",
                    provenance=self.current_label())

    # ----------------------------------------------------- bandwidth seam
    def check_flow_table(self, model: Any) -> None:
        """The incremental flow/link table must mirror the live transfer list.

        The component walk of ``BandwidthModel._reallocate`` trusts
        ``_flows_on_link`` for adjacency; a stale entry silently shrinks or
        inflates components, which breaks the bit-identical-to-global
        guarantee long before any rate looks wrong.
        """
        expected: Dict[tuple, dict] = {}
        for transfer in model._active:
            expected.setdefault(("up", transfer.src_ip), {})[transfer] = None
            expected.setdefault(("down", transfer.dst_ip), {})[transfer] = None
        table = model._flows_on_link
        for link, flows in expected.items():
            have = table.get(link)
            if have is None or set(have) != set(flows):
                self.record(
                    "bandwidth_table",
                    f"flow table for {link[1]} {link[0]}link lists "
                    f"{len(have or ())} flows, live set has {len(flows)}",
                    provenance=self.current_label())
        for link in table:
            if link not in expected:
                self.record(
                    "bandwidth_table",
                    f"flow table keeps {link[1]} {link[0]}link with no live "
                    f"flows crossing it",
                    provenance=self.current_label())

    # --------------------------------------------------- control-plane seam
    def check_store_caches(self, store: Any) -> None:
        """Every memoized store/job view must equal a from-scratch recompute.

        The placement planner, churn victim selection and harness iteration
        all trust the incrementally invalidated caches on
        :class:`~repro.runtime.jobstore.JobStore` and
        :class:`~repro.core.jobs.Job`; a missed invalidation would steer
        placement (and thereby the RNG stream) long before any report field
        looks wrong.  Called by the controller shards after every control
        action.  Only *populated* caches are compared — an unpopulated cache
        cannot be stale, and rebuilding it here would hide the very laziness
        being checked.
        """
        daemons = store.daemons
        cached = store._alive_daemons_cache
        if cached is not None:
            expected = [d for d in daemons.values() if d.alive]
            if cached != expected:
                self.record(
                    "store_cache",
                    f"alive-daemon cache lists {len(cached)} daemons, "
                    f"recompute finds {len(expected)}",
                    provenance=self.current_label())
        cached = store._alive_ips_cache
        if cached is not None:
            expected = sorted(ip for ip, d in daemons.items() if d.alive)
            if cached != expected:
                self.record(
                    "store_cache",
                    f"alive-ip cache lists {len(cached)} hosts, "
                    f"recompute finds {len(expected)}",
                    provenance=self.current_label())
        cached = store._failed_ips_cache
        if cached is not None:
            expected = sorted(ip for ip, d in daemons.items() if not d.alive)
            if cached != expected:
                self.record(
                    "store_cache",
                    f"failed-ip cache lists {len(cached)} hosts, "
                    f"recompute finds {len(expected)}",
                    provenance=self.current_label())
        for job_id in sorted(store.jobs):
            job = store.jobs[job_id]
            cached = job._live_cache
            if cached is not None and cached != job._recompute_live_instances():
                self.record(
                    "store_cache",
                    f"job #{job_id} live-instance cache lists {len(cached)} "
                    f"instances, recompute finds "
                    f"{len(job._recompute_live_instances())}",
                    provenance=self.current_label())

    def check_flow_conservation(self, model: Any) -> None:
        """Sum of allocated rates on every access link <= its capacity."""
        load: Dict[tuple, float] = {}
        for transfer in model._active:
            if transfer.rate_bps <= 0:
                continue
            up = ("up", transfer.src_ip)
            down = ("down", transfer.dst_ip)
            load[up] = load.get(up, 0.0) + transfer.rate_bps
            load[down] = load.get(down, 0.0) + transfer.rate_bps
        for (direction, ip), total in sorted(load.items()):
            up_cap, down_cap = model.capacity(ip)
            capacity = up_cap if direction == "up" else down_cap
            if total > capacity * (1.0 + FLOW_CONSERVATION_SLACK):
                self.record(
                    "bandwidth",
                    f"{direction}link of {ip} allocated {total:.1f} bps "
                    f"against capacity {capacity:.1f} bps",
                    provenance=self.current_label())
