"""Discrete-event simulation kernel used as SPLAY's execution substrate.

The original SPLAY runtime executes applications as Lua coroutines scheduled
by an event loop (``splay.events``), with blocking points at network and disk
I/O.  This package reproduces those semantics on a deterministic
discrete-event simulator:

* :mod:`repro.sim.kernel` — the event heap and virtual clock,
* :mod:`repro.sim.futures` — completion tokens used by RPC and I/O,
* :mod:`repro.sim.process` — generator-based cooperative coroutines,
* :mod:`repro.sim.events_api` — the ``splay.events`` compatible API
  (``thread``, ``periodic``, ``sleep``, ``fire``/``wait``),
* :mod:`repro.sim.locks` — coroutine locks, semaphores and queues,
* :mod:`repro.sim.rng` — deterministic random substreams.

All timing in the simulator is expressed in seconds (floats).
"""

from repro.sim.futures import Future, FutureState, SimTimeoutError, all_of, any_of
from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.process import Process, ProcessKilled
from repro.sim.events_api import AppContext, Events
from repro.sim.locks import Lock, Queue, Semaphore
from repro.sim.rng import substream

__all__ = [
    "AppContext",
    "Events",
    "Future",
    "FutureState",
    "Lock",
    "Process",
    "ProcessKilled",
    "Queue",
    "ScheduledEvent",
    "Semaphore",
    "SimTimeoutError",
    "Simulator",
    "all_of",
    "any_of",
    "substream",
]
