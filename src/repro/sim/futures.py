"""Completion tokens for asynchronous operations inside the simulator.

A :class:`Future` is the value yielded by coroutines (see
:mod:`repro.sim.process`) when they block on an RPC reply, a message arrival,
a lock, or any other asynchronous completion.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, List, Optional

#: runtime-sanitizer hook called as ``hook(future, operation)`` when a
#: completion method is invoked on an already-completed future.  Module-global
#: because futures carry no simulator reference; installed/cleared by
#: :class:`repro.sim.sanitizer.Sanitizer`.  It lives inside the already-rare
#: non-PENDING early-return branches, so the completion hot path is untouched.
#: ``cancel()`` on a done future is deliberately exempt: it is a documented
#: query-style no-op (returns False) used by cleanup paths.
_misuse_hook: Optional[Callable[["Future", str], None]] = None


class SimTimeoutError(Exception):
    """Raised (or reported) when an operation exceeds its timeout."""


class FutureCancelled(Exception):
    """Raised when waiting on a future that was cancelled."""


class FutureState(enum.Enum):
    """Lifecycle states of a :class:`Future`."""

    PENDING = "pending"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class Future:
    """A single-assignment completion token.

    Futures may be awaited by coroutines (by yielding them) or observed via
    :meth:`add_done_callback`.  They complete exactly once, through
    :meth:`set_result`, :meth:`set_exception` or :meth:`cancel`.
    """

    __slots__ = ("_state", "_result", "_exception", "_callbacks", "name")

    def __init__(self, name: str = ""):
        self._state = FutureState.PENDING
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        # Allocated on first add_done_callback: most hot-path futures (message
        # sends, transfers) complete without ever attracting an observer.
        self._callbacks: Optional[List[Callable[["Future"], None]]] = None
        self.name = name

    # --------------------------------------------------------------- queries
    @property
    def state(self) -> FutureState:
        return self._state

    def done(self) -> bool:
        """True once the future has a result, an exception, or was cancelled."""
        return self._state is not FutureState.PENDING

    def cancelled(self) -> bool:
        return self._state is FutureState.CANCELLED

    def result(self) -> Any:
        """Return the result, raising if the future failed or is not done."""
        if self._state is FutureState.DONE:
            return self._result
        if self._state is FutureState.FAILED:
            assert self._exception is not None
            raise self._exception
        if self._state is FutureState.CANCELLED:
            raise FutureCancelled(self.name or "future cancelled")
        raise RuntimeError("future is not done yet")

    def exception(self) -> Optional[BaseException]:
        """Return the stored exception, or ``None``."""
        return self._exception

    # ------------------------------------------------------------ completion
    def set_result(self, value: Any = None) -> None:
        """Complete the future successfully with ``value``."""
        if self._state is not FutureState.PENDING:
            if _misuse_hook is not None:
                _misuse_hook(self, "set_result")
            return
        self._state = FutureState.DONE
        self._result = value
        # Callback dispatch is inlined: set_result runs once per message
        # delivery and per process step, and most futures have no observers.
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            for callback in callbacks:
                callback(self)

    def set_exception(self, exc: BaseException) -> None:
        """Complete the future with an exception."""
        if self._state is not FutureState.PENDING:
            if _misuse_hook is not None:
                _misuse_hook(self, "set_exception")
            return
        self._state = FutureState.FAILED
        self._exception = exc
        self._invoke_callbacks()

    def cancel(self) -> bool:
        """Cancel the future; returns ``True`` if it was still pending."""
        if self._state is not FutureState.PENDING:
            return False
        self._state = FutureState.CANCELLED
        self._exception = FutureCancelled(self.name or "cancelled")
        self._invoke_callbacks()
        return True

    # ------------------------------------------------------------- callbacks
    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` once the future completes (immediately if done)."""
        if self._state is not FutureState.PENDING:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def _invoke_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Future {self.name or id(self)} {self._state.value}>"


def all_of(futures: Iterable[Future]) -> Future:
    """Return a future that completes when every input future completes.

    The result is the list of individual results in input order.  If any
    input fails, the aggregate fails with the first exception observed.
    """
    futures = list(futures)
    aggregate = Future(name="all_of")
    if not futures:
        aggregate.set_result([])
        return aggregate
    remaining = {"count": len(futures)}

    def _on_done(_fut: Future) -> None:
        if aggregate.done():
            return
        if _fut.state is FutureState.FAILED:
            aggregate.set_exception(_fut.exception())  # type: ignore[arg-type]
            return
        remaining["count"] -= 1
        if remaining["count"] == 0:
            results = []
            for fut in futures:
                results.append(fut.result() if fut.state is FutureState.DONE else None)
            aggregate.set_result(results)

    for fut in futures:
        fut.add_done_callback(_on_done)
    return aggregate


def any_of(futures: Iterable[Future]) -> Future:
    """Return a future completing with the result of the first future to finish."""
    futures = list(futures)
    aggregate = Future(name="any_of")
    if not futures:
        aggregate.set_result(None)
        return aggregate

    def _on_done(fut: Future) -> None:
        if aggregate.done():
            return
        if fut.state is FutureState.DONE:
            aggregate.set_result(fut.result())
        elif fut.state is FutureState.FAILED:
            aggregate.set_exception(fut.exception())  # type: ignore[arg-type]
        else:
            aggregate.cancel()

    for fut in futures:
        fut.add_done_callback(_on_done)
    return aggregate
