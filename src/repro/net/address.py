"""Network addressing.

An :class:`Address` identifies one application endpoint (one sandboxed SPLAY
application instance listening on one port of a host).  A :class:`NodeRef` is
the piece of information applications exchange about each other — the
``{ip, port, id}`` tables seen throughout the paper's Chord listing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True, order=True)
class Address:
    """An ``ip:port`` endpoint on the simulated network."""

    ip: str
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "Address":
        """Parse ``"10.0.0.1:20000"`` into an :class:`Address`."""
        ip, _, port = text.rpartition(":")
        if not ip or not port:
            raise ValueError(f"malformed address: {text!r}")
        return cls(ip=ip, port=int(port))

    def to_dict(self) -> dict:
        return {"ip": self.ip, "port": self.port}


#: Memoized Address objects for NodeRef.address.  Addresses are frozen and
#: value-compared, so sharing one object per (ip, port) is safe; every RPC
#: attempt resolves its destination NodeRef to an Address, and constructing
#: a frozen dataclass per resolution was measurable at 10k nodes.  Bounded
#: the same way as the serializer's size cache: distinct endpoints scale
#: with nodes, not with messages, but a runaway workload drops the table
#: wholesale rather than growing it forever.
_ADDRESS_CACHE: dict = {}
_ADDRESS_CACHE_MAX = 1 << 16


@dataclass(frozen=True)
class NodeRef:
    """A reference to a participating node, as exchanged by applications.

    This mirrors the ``n = {ip, port, id}`` structure of the paper's Chord
    listing (Listing 3, ``job.me``).  The ``id`` field is optional: plain
    membership protocols (Cyclon, epidemic broadcast) only use the address,
    whereas DHTs carry their ring/key-space identifier.
    """

    ip: str
    port: int
    id: Optional[int] = field(default=None, compare=False)

    @property
    def address(self) -> Address:
        key = (self.ip, self.port)
        address = _ADDRESS_CACHE.get(key)
        if address is None:
            if len(_ADDRESS_CACHE) >= _ADDRESS_CACHE_MAX:
                _ADDRESS_CACHE.clear()
            address = _ADDRESS_CACHE[key] = Address(self.ip, self.port)
        return address

    def with_id(self, node_id: int) -> "NodeRef":
        """Return a copy of this reference carrying ``node_id``."""
        return NodeRef(self.ip, self.port, node_id)

    @classmethod
    def from_address(cls, address: Address, node_id: Optional[int] = None) -> "NodeRef":
        return cls(address.ip, address.port, node_id)

    @classmethod
    def coerce(cls, value: Any) -> "NodeRef":
        """Build a :class:`NodeRef` from a NodeRef, Address, dict or string."""
        if isinstance(value, NodeRef):
            return value
        if isinstance(value, Address):
            return cls.from_address(value)
        if isinstance(value, dict):
            return cls(ip=value["ip"], port=int(value["port"]), id=value.get("id"))
        if isinstance(value, str):
            return cls.from_address(Address.parse(value))
        raise TypeError(f"cannot coerce {value!r} to NodeRef")

    def to_dict(self) -> dict:
        data = {"ip": self.ip, "port": self.port}
        if self.id is not None:
            data["id"] = self.id
        return data

    def __str__(self) -> str:
        if self.id is not None:
            return f"{self.ip}:{self.port}#{self.id}"
        return f"{self.ip}:{self.port}"
