"""Packet-loss models.

The SPLAY communication libraries "can be instructed to drop a given
proportion of the packets (specified upon deployment): this can be used to
simulate lossy links and study their impact on an application".  The network
also applies a (usually small) substrate loss rate representing the testbed
itself, e.g. overloaded PlanetLab hosts dropping connections.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sim.rng import substream


class LossModel:
    """Bernoulli loss, globally and per host pair.

    Parameters
    ----------
    seed:
        Seed for the deterministic loss draws.
    default_rate:
        Probability in ``[0, 1]`` that any message is dropped.
    """

    def __init__(self, seed: int = 0, default_rate: float = 0.0):
        _validate_rate(default_rate)
        self.default_rate = default_rate
        self._pair_rates: Dict[Tuple[str, str], float] = {}
        self._host_rates: Dict[str, float] = {}
        self._rng = substream(seed, "loss-model")
        #: number of messages dropped so far
        self.dropped = 0
        #: number of messages evaluated so far
        self.evaluated = 0

    def set_pair_rate(self, src_ip: str, dst_ip: str, rate: float) -> None:
        """Set the drop rate for messages from ``src_ip`` to ``dst_ip``."""
        _validate_rate(rate)
        self._pair_rates[(src_ip, dst_ip)] = rate

    def set_host_rate(self, ip: str, rate: float) -> None:
        """Set the drop rate for all messages to or from ``ip``."""
        _validate_rate(rate)
        self._host_rates[ip] = rate

    def rate_for(self, src_ip: str, dst_ip: str) -> float:
        """Effective drop probability for the pair (max of applicable rates)."""
        # Most deployments never install per-pair or per-host rates; skip the
        # three dict probes on every message in that case.
        if not self._pair_rates and not self._host_rates:
            return self.default_rate
        rate = self.default_rate
        rate = max(rate, self._pair_rates.get((src_ip, dst_ip), 0.0))
        rate = max(rate, self._host_rates.get(src_ip, 0.0), self._host_rates.get(dst_ip, 0.0))
        return rate

    def should_drop(self, src_ip: str, dst_ip: str) -> bool:
        """Decide (randomly but reproducibly) whether to drop one message."""
        self.evaluated += 1
        if not self._pair_rates and not self._host_rates:
            rate = self.default_rate
        else:
            rate = self.rate_for(src_ip, dst_ip)
        if rate <= 0.0:
            return False
        if rate >= 1.0 or self._rng.random() < rate:
            self.dropped += 1
            return True
        return False


def _validate_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"loss rate must be within [0, 1], got {rate}")
