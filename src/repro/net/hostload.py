"""Host-load / processing-delay model.

Paper counterpart: Section 5.4's PlanetLab runs — "PlanetLab hosts are
often overloaded", so a message that arrives at a busy host waits for CPU
before the application sees it.  The model assigns each host a deterministic
*load factor* (most hosts are lightly loaded, a tail of hosts is heavily
loaded) and turns it into a per-message processing delay hook that the
:class:`~repro.net.network.Network` adds on top of propagation and
transmission time.

The delay is a pure function of the host and the message size — no
per-message randomness — so runs stay byte-identical for one seed whatever
the message interleaving looks like.

Public entry points: :class:`HostLoadModel` (``load_of`` / ``hook_for`` /
``attach``).
"""

from __future__ import annotations

from typing import Dict

from repro.sim.rng import substream


class HostLoadModel:
    """Per-host load factors and the processing-delay hooks they induce.

    Parameters
    ----------
    seed:
        Root seed; each host's load factor comes from its own substream.
    base_delay:
        Processing delay (seconds) of an *unloaded* host per message.
    per_byte:
        Additional per-byte processing cost of an unloaded host.
    heavy_fraction:
        Probability that a host is in the heavily-loaded tail.
    heavy_multiplier:
        Load factor scale of heavily-loaded hosts (an overloaded PlanetLab
        node is roughly an order of magnitude slower than an idle one).
    """

    def __init__(self, seed: int = 0, base_delay: float = 0.002,
                 per_byte: float = 2e-8, heavy_fraction: float = 0.2,
                 heavy_multiplier: float = 8.0):
        if base_delay < 0 or per_byte < 0:
            raise ValueError("processing costs must be non-negative")
        if not 0.0 <= heavy_fraction <= 1.0:
            raise ValueError("heavy_fraction must be within [0, 1]")
        self.seed = seed
        self.base_delay = base_delay
        self.per_byte = per_byte
        self.heavy_fraction = heavy_fraction
        self.heavy_multiplier = heavy_multiplier
        self._loads: Dict[str, float] = {}

    def load_of(self, ip: str) -> float:
        """The host's load factor (>= 1; drawn once, then fixed)."""
        load = self._loads.get(ip)
        if load is None:
            rng = substream(self.seed, "host-load", ip)
            load = 1.0 + rng.random() * 0.5
            if rng.random() < self.heavy_fraction:
                load *= self.heavy_multiplier * (0.5 + rng.random())
            self._loads[ip] = load
        return load

    def delay(self, ip: str, size: int) -> float:
        """Processing delay one message of ``size`` bytes pays at ``ip``."""
        return self.load_of(ip) * (self.base_delay + size * self.per_byte)

    def hook_for(self, ip: str):
        """A ``processing_delay(size) -> seconds`` hook bound to one host."""
        self.load_of(ip)  # draw (and cache) the load factor eagerly
        return lambda size: self.delay(ip, size)

    def attach(self, network, ips) -> None:
        """Register a processing-delay hook for every listed host."""
        for ip in ips:
            network.set_processing_delay(ip, self.hook_for(ip))
