"""Simulated network substrate.

This package provides the network on which SPLAY daemons and applications
communicate: addressing, message-level delivery with configurable latency and
loss models, a flow-level (max-min fair) bandwidth model for bulk transfers,
and topology generation for ModelNet-style emulated networks.
"""

from repro.net.address import Address, NodeRef
from repro.net.message import Message
from repro.net.latency import (
    CompositeLatency,
    ConstantLatency,
    LatencyModel,
    MatrixLatency,
    PairwiseLatency,
    TopologyLatency,
)
from repro.net.loss import LossModel
from repro.net.hostload import HostLoadModel
from repro.net.bandwidth import BandwidthModel, Transfer
from repro.net.network import Listener, Network, NetworkStats
from repro.net.topology import TransitStubTopology

__all__ = [
    "Address",
    "BandwidthModel",
    "CompositeLatency",
    "ConstantLatency",
    "HostLoadModel",
    "LatencyModel",
    "Listener",
    "LossModel",
    "MatrixLatency",
    "Message",
    "Network",
    "NetworkStats",
    "NodeRef",
    "PairwiseLatency",
    "TopologyLatency",
    "Transfer",
    "TransitStubTopology",
]
