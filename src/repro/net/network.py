"""Message-level network connecting hosts, daemons and applications.

The :class:`Network` owns the host registry, the latency/loss/bandwidth
models and the endpoint (listener) table.  Small control messages (RPCs,
protocol messages) are delivered individually with a per-message delay; bulk
payloads go through the flow-level :class:`~repro.net.bandwidth.BandwidthModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.net.address import Address
from repro.net.bandwidth import BandwidthModel, UNLIMITED_BPS
from repro.net.bwalloc import BULK, LOOKUP
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.loss import LossModel
from repro.net.message import Message
from repro.sim.events_api import AppContext
from repro.sim.futures import Future
from repro.sim.kernel import Simulator
from repro.sim.rng import substream


@dataclass(slots=True)
class NetworkStats:
    """Counters maintained by the network (exposed to benchmarks and tests)."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    handler_errors: int = 0
    transfers_started: int = 0
    # Drop-cause split (sums to messages_dropped): dead endpoint hosts,
    # loss-model drops, and missing/dead destination listeners.  Surfaced in
    # the digest-excluded ``metrics`` report section only.
    drops_dead_host: int = 0
    drops_loss: int = 0
    drops_no_listener: int = 0
    #: bytes offered per bwalloc priority class (messages and transfers);
    #: digest-excluded ``metrics`` report section only
    bytes_by_class: Dict[int, int] = field(default_factory=dict)
    last_errors: List[str] = field(default_factory=list)

    def record_error(self, error: str, cap: int = 20) -> None:
        self.handler_errors += 1
        self.last_errors.append(error)
        if len(self.last_errors) > cap:
            del self.last_errors[0]


@dataclass(slots=True)
class Listener:
    """A registered message handler for one endpoint."""

    address: Address
    handler: Callable[[Message], Any]
    context: Optional[AppContext] = None

    @property
    def alive(self) -> bool:
        return self.context is None or self.context.alive


class Network:
    """The simulated network substrate.

    Parameters
    ----------
    sim:
        Simulation kernel providing the clock.
    latency:
        Latency model; defaults to a 1 ms constant one-way delay.
    loss:
        Loss model; defaults to lossless.
    bandwidth:
        Flow-level bandwidth model used for :meth:`transfer`; created lazily
        with unlimited capacities if not provided.
    jitter:
        Fractional per-message jitter (e.g. ``0.1`` adds up to 10 % of the
        base delay, uniformly).
    strict:
        If ``True``, exceptions raised by message handlers propagate (useful
        in unit tests); otherwise they are recorded in :attr:`stats`.
    """

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None,
                 loss: Optional[LossModel] = None, bandwidth: Optional[BandwidthModel] = None,
                 jitter: float = 0.0, strict: bool = False, seed: Optional[int] = None):
        self.sim = sim
        self.latency = latency or ConstantLatency(0.001)
        self.loss = loss or LossModel(seed=seed if seed is not None else sim.seed)
        self.bandwidth = bandwidth or BandwidthModel(sim)
        self.jitter = jitter
        self.strict = strict
        self.hosts: Dict[str, Any] = {}
        self.stats = NetworkStats()
        # Keyed by (ip, port) tuples rather than Address objects: tuple
        # hashing/equality run in C (the IPs are interned strings, so probes
        # are pointer compares), and this dict sits on the per-message path.
        self._listeners: Dict[tuple, Listener] = {}
        self._rng = substream(seed if seed is not None else sim.seed, "network-jitter")
        # processing-delay hooks resolved once per host at registration time —
        # a hasattr() probe per message was measurable on the send hot path
        self._proc_delay: Dict[str, Any] = {}
        #: runtime sanitizer (repro.sim.sanitizer) or None
        self._san: Optional[Any] = None

    # ----------------------------------------------------------------- hosts
    def add_host(self, host: Any) -> None:
        """Register a host object (must expose ``ip`` and ``alive``).

        A ``processing_delay(size) -> seconds`` hook is picked up here; to
        attach one *after* registration, use :meth:`set_processing_delay`
        (the hook is resolved once, not probed per message).
        """
        self.hosts[host.ip] = host
        hook = getattr(host, "processing_delay", None)
        if hook is not None:
            self._proc_delay[host.ip] = hook

    def set_processing_delay(self, ip: str, hook: Any) -> None:
        """Attach (or clear, with ``None``) a host-load delay hook for ``ip``."""
        if hook is None:
            self._proc_delay.pop(ip, None)
        else:
            self._proc_delay[ip] = hook

    def remove_host(self, ip: str) -> None:
        self.hosts.pop(ip, None)
        self._proc_delay.pop(ip, None)
        self.bandwidth.cancel_host(ip)
        for key in [k for k in self._listeners if k[0] == ip]:
            del self._listeners[key]
        if self._san is not None:
            self._san.check_listener_table(self)

    def host(self, ip: str) -> Any:
        return self.hosts[ip]

    def has_host(self, ip: str) -> bool:
        return ip in self.hosts

    def host_alive(self, ip: str) -> bool:
        host = self.hosts.get(ip)
        return bool(host is not None and getattr(host, "alive", True))

    # ------------------------------------------------------------- listeners
    def listen(self, address: Address, handler: Callable[[Message], Any],
               context: Optional[AppContext] = None) -> Listener:
        """Register ``handler`` for messages addressed to ``address``."""
        key = (address.ip, address.port)
        existing = self._listeners.get(key)
        if existing is not None and existing.alive:
            raise ValueError(f"address already in use: {address}")
        listener = Listener(address=address, handler=handler, context=context)
        self._listeners[key] = listener
        if context is not None:
            context.add_cleanup(lambda: self.unlisten(address))
        return listener

    def unlisten(self, address: Address) -> None:
        self._listeners.pop((address.ip, address.port), None)

    def listener(self, address: Address) -> Optional[Listener]:
        return self._listeners.get((address.ip, address.port))

    def is_listening(self, address: Address) -> bool:
        listener = self._listeners.get((address.ip, address.port))
        return listener is not None and listener.alive

    def used_ports(self, ip: str) -> List[int]:
        return sorted(k[1] for k in self._listeners if k[0] == ip)

    # ------------------------------------------------------------------ send
    def send(self, src: Address, dst: Address, payload: Any, size: int,
             kind: str = "data", priority: int = LOOKUP) -> Future:
        """Send one message; the returned future completes with ``True`` on delivery.

        Delivery requires the source and destination hosts to be alive and a
        live listener on the destination endpoint.  Messages may also be
        dropped by the loss model.  The sender is *not* notified of drops
        (the future is a convenience for tests and for the RPC layer's
        timeout bookkeeping); this mirrors datagram semantics.
        """
        outcome = Future()  # naming 250k+ futures per run was measurable
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size
        by_class = stats.bytes_by_class
        by_class[priority] = by_class.get(priority, 0) + size

        # Aliveness probes are inlined (self.host_alive is a method call per
        # probe, and this path runs once per simulated message).
        hosts = self.hosts
        src_ip = src.ip
        dst_ip = dst.ip
        src_host = hosts.get(src_ip)
        src_alive = src_host is not None and getattr(src_host, "alive", True)
        if src_ip == dst_ip:
            # Loopback fast path: the payload is handed to the listener by
            # reference (never encoded) and one aliveness probe covers both
            # endpoints.  The loss model still gets its draw so that seeded
            # runs are unaffected by which path a message takes.
            if not src_alive:
                stats.messages_dropped += 1
                stats.drops_dead_host += 1
                outcome.set_result(False)
                return outcome
        else:
            dst_host = hosts.get(dst_ip)
            if not src_alive or dst_host is None \
                    or not getattr(dst_host, "alive", True):
                stats.messages_dropped += 1
                stats.drops_dead_host += 1
                outcome.set_result(False)
                return outcome
        if self.loss.should_drop(src_ip, dst_ip):
            stats.messages_dropped += 1
            stats.drops_loss += 1
            outcome.set_result(False)
            return outcome

        message = Message(src=src, dst=dst, payload=payload, size=size, kind=kind,
                          sent_at=self.sim.now, priority=priority)
        delay = self._message_delay(src, dst, size)
        self.sim.schedule(delay, self._deliver, message, outcome)
        return outcome

    def _message_delay(self, src: Address, dst: Address, size: int) -> float:
        src_ip = src.ip
        dst_ip = dst.ip
        delay = self.latency.one_way(src_ip, dst_ip)
        if self.jitter:
            delay += delay * self._rng.uniform(0.0, self.jitter)
        # Transmission time over the narrower of the two access links
        # (loopback needs a single capacity lookup: both ends are one host).
        # Capacity probes are inlined dict lookups: this runs per message.
        bandwidth = self.bandwidth
        capacities = bandwidth._capacities
        if src_ip == dst_ip:
            entry = capacities.get(src_ip)
            if entry is not None:
                up, down = entry
            else:
                up = bandwidth.default_uplink_bps
                down = bandwidth.default_downlink_bps
        else:
            entry = capacities.get(src_ip)
            up = entry[0] if entry is not None else bandwidth.default_uplink_bps
            entry = capacities.get(dst_ip)
            down = entry[1] if entry is not None else bandwidth.default_downlink_bps
        narrow = up if up < down else down
        if narrow < UNLIMITED_BPS and size > 0:
            delay += size * 8.0 / narrow
        # Receiver/sender-side processing delay (host load, swap penalty, ...).
        if self._proc_delay:
            dst_hook = self._proc_delay.get(dst_ip)
            if dst_hook is not None:
                delay += max(0.0, dst_hook(size))
            src_hook = self._proc_delay.get(src_ip)
            if src_hook is not None:
                delay += max(0.0, src_hook(size))
        return delay

    def _deliver(self, message: Message, outcome: Future) -> None:
        dst = message.dst
        host = self.hosts.get(dst.ip)
        if host is None or not getattr(host, "alive", True):
            self.stats.messages_dropped += 1
            self.stats.drops_dead_host += 1
            outcome.set_result(False)
            return
        listener = self._listeners.get((dst.ip, dst.port))
        if listener is None:
            self.stats.messages_dropped += 1
            self.stats.drops_no_listener += 1
            outcome.set_result(False)
            return
        context = listener.context
        if context is not None and not context.alive:
            self.stats.messages_dropped += 1
            self.stats.drops_no_listener += 1
            outcome.set_result(False)
            return
        try:
            listener.handler(message)
        except Exception as exc:  # noqa: BLE001 - handler bugs must not kill the run
            if self.strict:
                raise
            self.stats.record_error(f"{message.dst}: {exc!r}")
            outcome.set_result(False)
            return
        self.stats.messages_delivered += 1
        outcome.set_result(True)

    # -------------------------------------------------------------- transfers
    def transfer(self, src: Address, dst: Address, nbytes: float,
                 priority: int = BULK) -> Future:
        """Bulk transfer through the flow-level bandwidth model.

        The returned future completes with the finish time when the last byte
        arrives, or is cancelled if either host fails mid-transfer.  The
        ``priority`` class is what priority-aware allocators schedule by.
        """
        result = Future()  # unnamed: transfers are hot in dissemination runs
        if not self.host_alive(src.ip) or not self.host_alive(dst.ip):
            result.cancel()
            return result
        stats = self.stats
        stats.transfers_started += 1
        by_class = stats.bytes_by_class
        by_class[priority] = by_class.get(priority, 0) + int(nbytes)
        propagation = self.latency.one_way(src.ip, dst.ip)
        transfer = self.bandwidth.transfer(src.ip, dst.ip, nbytes,
                                           priority=priority)

        def _complete(fut: Future) -> None:
            if fut.cancelled():
                result.cancel()
                return
            # The last byte still needs one propagation delay to arrive.
            self.sim.schedule(propagation, result.set_result, self.sim.now + propagation)

        transfer.done.add_done_callback(_complete)
        return result

    # --------------------------------------------------------------- queries
    def one_way_delay(self, src_ip: str, dst_ip: str) -> float:
        """Base one-way delay between two hosts (no jitter, no processing)."""
        return self.latency.one_way(src_ip, dst_ip)

    def rtt(self, src_ip: str, dst_ip: str) -> float:
        return self.latency.rtt(src_ip, dst_ip)
