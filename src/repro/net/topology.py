"""Transit-stub topology generation for the ModelNet testbed model.

The paper's ModelNet configuration "emulates 1,100 hosts connected to a
500-node transit-stub topology.  The bandwidth is set to 10 Mbps for all
links.  RTT between nodes of the same domain is 10 ms, stub-stub and
stub-transit RTT is 30 ms, and transit-transit (i.e., long range links) RTT
is 100 ms."  This module generates such topologies with `networkx` and
computes shortest-path delays between attachment points.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import networkx as nx

from repro.sim.rng import substream


class TransitStubTopology:
    """A GT-ITM style transit-stub topology.

    The generated graph contains ``transit_domains`` fully meshed transit
    domains connected in a ring (with a few random long-range chords); each
    transit node anchors ``stub_domains_per_transit`` stub domains, each a
    small connected cluster of ``stub_nodes_per_domain`` nodes.  End hosts
    attach to stub nodes.

    Edge delays are *one-way* seconds, derived from the RTT parameters.
    """

    def __init__(
        self,
        transit_domains: int = 4,
        transit_nodes_per_domain: int = 5,
        stub_domains_per_transit: int = 3,
        stub_nodes_per_domain: int = 8,
        seed: int = 0,
        transit_transit_rtt: float = 0.100,
        stub_transit_rtt: float = 0.030,
        stub_stub_rtt: float = 0.030,
        intra_domain_rtt: float = 0.010,
        link_bandwidth_bps: float = 10_000_000.0,
    ):
        if transit_domains < 1 or transit_nodes_per_domain < 1:
            raise ValueError("topology needs at least one transit node")
        self.seed = seed
        self.transit_transit_rtt = transit_transit_rtt
        self.stub_transit_rtt = stub_transit_rtt
        self.stub_stub_rtt = stub_stub_rtt
        self.intra_domain_rtt = intra_domain_rtt
        self.link_bandwidth_bps = link_bandwidth_bps

        self.graph = nx.Graph()
        self.transit_nodes: List[int] = []
        self.stub_nodes: List[int] = []
        #: stub node -> transit node it hangs off
        self.stub_parent: Dict[int, int] = {}
        # Per-source delay rows: a flat list indexed by (contiguous) node id,
        # with the host-access component already folded in.  Node ids are
        # assigned densely in _build, so a list replaces the dict-of-dicts
        # networkx returns (which retained ~15 MB at 500 topology nodes) and
        # the hot lookup is one C-level index.  Float values repeat massively
        # across rows (delays are sums of a handful of RTTs), so rows share
        # float objects through ``_delay_pool``.
        self._delay_cache: Dict[int, List[float]] = {}
        self._delay_pool: Dict[float, float] = {}

        rng = substream(seed, "transit-stub")
        self._build(transit_domains, transit_nodes_per_domain,
                    stub_domains_per_transit, stub_nodes_per_domain, rng)

    # ----------------------------------------------------------------- build
    def _build(self, transit_domains: int, transit_nodes_per_domain: int,
               stub_domains_per_transit: int, stub_nodes_per_domain: int, rng) -> None:
        next_id = 0
        domains: List[List[int]] = []
        for _domain in range(transit_domains):
            nodes = []
            for _ in range(transit_nodes_per_domain):
                self.graph.add_node(next_id, kind="transit")
                nodes.append(next_id)
                next_id += 1
            # Full mesh inside a transit domain.
            for i, a in enumerate(nodes):
                for b in nodes[i + 1:]:
                    self._add_edge(a, b, self.transit_transit_rtt / 2.0)
            domains.append(nodes)
            self.transit_nodes.extend(nodes)

        # Connect transit domains in a ring plus random chords for redundancy.
        for index, domain in enumerate(domains):
            other = domains[(index + 1) % len(domains)]
            self._add_edge(rng.choice(domain), rng.choice(other), self.transit_transit_rtt / 2.0)
        extra_chords = max(0, transit_domains - 2)
        for _ in range(extra_chords):
            a_domain, b_domain = rng.sample(range(len(domains)), 2)
            self._add_edge(rng.choice(domains[a_domain]), rng.choice(domains[b_domain]),
                           self.transit_transit_rtt / 2.0)

        # Hang stub domains off transit nodes.
        for transit in self.transit_nodes:
            for _stub_domain in range(stub_domains_per_transit):
                stub_ids = []
                for _ in range(stub_nodes_per_domain):
                    self.graph.add_node(next_id, kind="stub")
                    stub_ids.append(next_id)
                    self.stub_parent[next_id] = transit
                    next_id += 1
                # Stub domain internal structure: a path plus a random chord,
                # cheap links (stub-stub RTT).
                for a, b in zip(stub_ids, stub_ids[1:]):
                    self._add_edge(a, b, self.stub_stub_rtt / 2.0)
                if len(stub_ids) > 3:
                    a, b = rng.sample(stub_ids, 2)
                    if not self.graph.has_edge(a, b):
                        self._add_edge(a, b, self.stub_stub_rtt / 2.0)
                # Gateway link: first stub node connects to the transit node.
                self._add_edge(stub_ids[0], transit, self.stub_transit_rtt / 2.0)
                self.stub_nodes.extend(stub_ids)

    def _add_edge(self, a: int, b: int, one_way_delay: float) -> None:
        self.graph.add_edge(a, b, delay=one_way_delay, bandwidth=self.link_bandwidth_bps)

    # --------------------------------------------------------------- queries
    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def intra_domain_delay(self) -> float:
        """One-way delay between two hosts attached to the same stub node."""
        return self.intra_domain_rtt / 2.0

    def path_delay(self, src_node: int, dst_node: int) -> float:
        """One-way delay between two topology nodes (shortest path on edge delays).

        A host-access component (half the intra-domain delay on each side) is
        added so that co-located hosts and remote hosts are consistent.
        """
        if src_node == dst_node:
            return self.intra_domain_delay
        cache = self._delay_cache.get(src_node)
        if cache is None:
            cache = self._build_delay_row(src_node)
        delay = cache[dst_node]
        if delay != delay:  # NaN marks an unreachable node
            raise KeyError(f"no path between topology nodes {src_node} and {dst_node}")
        return delay

    def _build_delay_row(self, src_node: int) -> List[float]:
        distances = nx.single_source_dijkstra_path_length(
            self.graph, src_node, weight="delay")
        pool = self._delay_pool
        intra = self.intra_domain_delay
        row = [float("nan")] * self.node_count
        for node, base in distances.items():
            value = base + intra
            row[node] = pool.setdefault(value, value)
        self._delay_cache[src_node] = row
        return row

    def path_hops(self, src_node: int, dst_node: int) -> int:
        """Number of topology hops on the delay-shortest path."""
        if src_node == dst_node:
            return 0
        path = nx.dijkstra_path(self.graph, src_node, dst_node, weight="delay")
        return len(path) - 1

    def attach_hosts(self, ips: Iterable[str], seed: int = 1) -> Dict[str, int]:
        """Assign each host IP to a stub node, round-robin over a shuffled list.

        ModelNet maps multiple emulated end hosts to each stub node; this
        reproduces the paper's 1,100 hosts on a 500-node topology.
        """
        rng = substream(self.seed, "attach", seed)
        stubs = list(self.stub_nodes)
        rng.shuffle(stubs)
        attachment: Dict[str, int] = {}
        for index, ip in enumerate(ips):
            attachment[ip] = stubs[index % len(stubs)]
        return attachment

    def describe(self) -> Dict[str, int]:
        """Summary statistics used by tests and documentation."""
        return {
            "nodes": self.node_count,
            "transit_nodes": len(self.transit_nodes),
            "stub_nodes": len(self.stub_nodes),
            "edges": self.graph.number_of_edges(),
        }
