"""Pluggable bandwidth allocators with traffic priority classes.

The flow-level :class:`~repro.net.bandwidth.BandwidthModel` used to
hard-wire one global max-min recompute on every transfer start/finish.  This
module extracts the *allocation strategy* behind a small interface (the
shape of psim's ``BandwidthAllocator`` hierarchy): given the live transfer
list and the per-host access-link capacities, an allocator returns one rate
per transfer.  Four strategies are registered:

``max-min``
    Progressive-filling max-min fairness over access links — the historical
    semantics, byte-identical to the pre-refactor model (digest-pinned).
``fair-share``
    Equal split per bottleneck link: every flow gets ``capacity / flows``
    on each of its links and runs at the narrower of the two.  Simpler and
    cheaper than max-min, but leftover capacity is *not* redistributed.
``fixed-priority``
    Strict priority classes: CONTROL flows are allocated max-min first,
    LOOKUP flows share what remains, BULK flows get the leftovers.  A
    saturated higher class starves lower classes entirely (and releases
    them the moment it drains) — the "latency-critical requests must win"
    discipline.
``priority-queue``
    Weighted max-min: classes share every contended link in proportion to
    :data:`CLASS_WEIGHTS` instead of starving each other.

Every transfer carries a **priority class** (:data:`CONTROL` >
:data:`LOOKUP` > :data:`BULK`, lower value = more important): control-plane
RPC traffic rides CONTROL, application protocol messages ride LOOKUP, and
bulk dissemination transfers ride BULK.  Priority-blind allocators simply
ignore the class.

All four strategies are *per-component decomposable*: a flow's rate depends
only on the flows it (transitively) shares an access link with.  The model
exploits that for incremental recomputation — see
:meth:`~repro.net.bandwidth.BandwidthModel._reallocate`.  Allocators must
keep that property (no global normalisation terms), or incremental and
global recomputes would diverge; the differential harness in
``tests/test_bwalloc.py`` replays every registered allocator against the
shared invariants and catches violations.

Adding an allocator: subclass :class:`BandwidthAllocator`, set ``name``,
implement :meth:`~BandwidthAllocator.allocate`, decorate with
:func:`register_allocator`.  The CLI flag choices, the bench column and the
differential test harness all enumerate the registry.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

#: priority classes, lower value = more important.  CONTROL is the
#: control-plane RPC class, LOOKUP the application protocol-message class,
#: BULK the flow-level data class (dissemination chunks, cache objects).
CONTROL = 0
LOOKUP = 1
BULK = 2

#: class value -> report/metrics label, in priority order
PRIORITY_NAMES: Dict[int, str] = {CONTROL: "control", LOOKUP: "lookup",
                                  BULK: "bulk"}

#: per-class weights of the ``priority-queue`` allocator: a contended link
#: is shared 4:2:1 between CONTROL, LOOKUP and BULK flows
CLASS_WEIGHTS: Dict[int, float] = {CONTROL: 4.0, LOOKUP: 2.0, BULK: 1.0}

#: link key: ("up", src_ip) or ("down", dst_ip)
Link = Tuple[str, str]


class UnknownAllocatorError(KeyError):
    """Raised when looking up an allocator name nobody registered."""


class BandwidthAllocator:
    """Base class: rate assignment over per-host uplink/downlink capacities.

    The allocator is stateless between calls; everything it needs is the
    transfer list (objects exposing ``src_ip``/``dst_ip``/``priority``) and
    the owning model's :meth:`capacity` lookup.  ``allocate`` must return
    one rate (bits/second) per transfer, in input order, and must never
    oversubscribe a link — the sanitizer's flow-conservation check and the
    differential harness both assert that for every registered strategy.
    """

    #: registry key, CLI flag value and bench-CSV cell
    name: str = ""

    def __init__(self, model) -> None:
        self.model = model

    def allocate(self, transfers: List) -> List[float]:
        raise NotImplementedError

    # ------------------------------------------------------------- helpers
    def link_tables(self, transfers: List) -> Tuple[
            Dict[Link, float], Dict[Link, List[int]], List[Tuple[Link, Link]]]:
        """Shared link bookkeeping: capacities, flows per link, links per flow.

        Insertion order of the ``links`` dict follows transfer enumeration
        order — the deterministic tie-break every strategy inherits.
        """
        capacity = self.model.capacity
        links: Dict[Link, float] = {}
        flows_on_link: Dict[Link, List[int]] = {}
        flow_links: List[Tuple[Link, Link]] = []
        for index, transfer in enumerate(transfers):
            up_link = ("up", transfer.src_ip)
            down_link = ("down", transfer.dst_ip)
            up, _ = capacity(transfer.src_ip)
            _, down = capacity(transfer.dst_ip)
            links.setdefault(up_link, up)
            links.setdefault(down_link, down)
            flows_on_link.setdefault(up_link, []).append(index)
            flows_on_link.setdefault(down_link, []).append(index)
            flow_links.append((up_link, down_link))
        return links, flows_on_link, flow_links


_ALLOCATORS: Dict[str, type] = {}


def register_allocator(cls: type) -> type:
    """Class decorator: add an allocator to the registry (name must be new)."""
    name = cls.name
    if not name:
        raise ValueError(f"allocator {cls.__name__} has no name")
    existing = _ALLOCATORS.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"allocator {name!r} is already registered")
    _ALLOCATORS[name] = cls
    return cls


def allocator_names() -> List[str]:
    """Registered names, in registration order (``max-min`` first)."""
    return list(_ALLOCATORS)


def make_allocator(name: str, model) -> BandwidthAllocator:
    try:
        cls = _ALLOCATORS[name]
    except KeyError:
        known = ", ".join(_ALLOCATORS)
        raise UnknownAllocatorError(
            f"unknown bandwidth allocator {name!r} (known: {known})") from None
    return cls(model)


def _progressive_fill(links: Dict[Link, float],
                      flows_on_link: Dict[Link, List[int]],
                      flow_links: List[Tuple[Link, Link]],
                      rates: List[float], eligible: List[int],
                      weights: List[float]) -> None:
    """Weighted progressive filling over ``eligible`` flow indices, in place.

    ``links`` holds each link's *remaining* capacity and is consumed (so a
    caller can fill one priority class, then the next against the residue).
    Each round saturates the link offering the smallest per-weight share to
    its unallocated flows; those flows are pinned at ``weight * share`` and
    their demand leaves every link they cross.  With unit weights this is
    classic max-min fairness — the loop below is the historical
    ``_max_min_fair_rates`` body with a weight column threaded through.
    """
    allocated = [False] * len(rates)
    pending_weight: Dict[Link, float] = {}
    for link, flows in flows_on_link.items():
        pending_weight[link] = sum(weights[f] for f in flows)
    n_unallocated = len(eligible)
    while n_unallocated:
        best_link = None
        best_share = math.inf
        for link, capacity in links.items():
            weight = pending_weight[link]
            if weight <= 0.0:
                continue
            share = capacity / weight
            if share < best_share:
                best_share = share
                best_link = link
        if best_link is None:
            break
        for flow in flows_on_link[best_link]:
            if allocated[flow]:
                continue
            rate = best_share * weights[flow]
            rates[flow] = rate
            allocated[flow] = True
            n_unallocated -= 1
            for link in flow_links[flow]:
                links[link] = max(0.0, links[link] - rate)
                pending_weight[link] -= weights[flow]


@register_allocator
class MaxMinAllocator(BandwidthAllocator):
    """Classic progressive-filling max-min fairness (the historical model).

    Priority-blind: every flow weighs the same.  Byte-identical to the
    pre-refactor ``BandwidthModel._max_min_fair_rates`` — the churning-chord
    digest-parity test pins that equivalence on both kernels.
    """

    name = "max-min"

    def allocate(self, transfers: List) -> List[float]:
        links, flows_on_link, flow_links = self.link_tables(transfers)
        rates = [0.0] * len(transfers)
        _progressive_fill(links, flows_on_link, flow_links, rates,
                          list(range(len(transfers))),
                          [1.0] * len(transfers))
        return rates


@register_allocator
class FairShareAllocator(BandwidthAllocator):
    """Equal split per bottleneck link, no leftover redistribution.

    A flow crossing links ``l1, l2`` runs at ``min(cap(l) / flows(l))`` —
    one pass, no rounds.  Never oversubscribes (each link hands out at most
    ``flows * cap / flows``), but a flow bottlenecked elsewhere strands its
    unused share, so total utilisation trails max-min under asymmetric load.
    """

    name = "fair-share"

    def allocate(self, transfers: List) -> List[float]:
        links, flows_on_link, flow_links = self.link_tables(transfers)
        share: Dict[Link, float] = {
            link: capacity / len(flows_on_link[link])
            for link, capacity in links.items()}
        return [min(share[up], share[down]) for up, down in flow_links]


@register_allocator
class FixedPriorityAllocator(BandwidthAllocator):
    """Strict priority classes: higher classes starve lower ones.

    Classes fill in priority order (CONTROL, then LOOKUP, then BULK), each
    running max-min against whatever capacity the classes above left on
    every link.  A link saturated by CONTROL traffic hands LOOKUP and BULK
    flows a rate of exactly 0 until it drains — starvation is the contract,
    and the property tests assert both the starving and the resumption.
    """

    name = "fixed-priority"

    def allocate(self, transfers: List) -> List[float]:
        links, flows_on_link, flow_links = self.link_tables(transfers)
        rates = [0.0] * len(transfers)
        weights = [1.0] * len(transfers)
        by_class: Dict[int, List[int]] = {}
        for index, transfer in enumerate(transfers):
            by_class.setdefault(transfer.priority, []).append(index)
        for priority in sorted(by_class):
            eligible = by_class[priority]
            eligible_set = set(eligible)  # membership only, never iterated
            class_flows: Dict[Link, List[int]] = {}
            for link, flows in flows_on_link.items():
                mine = [f for f in flows if f in eligible_set]
                if mine:
                    class_flows[link] = mine
            class_links = {link: links[link] for link in class_flows}
            _progressive_fill(class_links, class_flows, flow_links, rates,
                              eligible, weights)
            # What this class consumed leaves the shared residue.
            for link in class_links:
                links[link] = class_links[link]
        return rates


@register_allocator
class PriorityQueueAllocator(BandwidthAllocator):
    """Weighted max-min: classes share contended links by fixed weights.

    One progressive fill where a flow's share of a saturating link is
    proportional to its class weight (:data:`CLASS_WEIGHTS`, 4:2:1).  Unlike
    ``fixed-priority`` nothing starves — BULK keeps 1/7 of a link three
    classes fight over — and like max-min, capacity a weighted flow cannot
    use flows back to the others.
    """

    name = "priority-queue"

    def allocate(self, transfers: List) -> List[float]:
        links, flows_on_link, flow_links = self.link_tables(transfers)
        rates = [0.0] * len(transfers)
        weights = [CLASS_WEIGHTS.get(t.priority, 1.0) for t in transfers]
        _progressive_fill(links, flows_on_link, flow_links, rates,
                          list(range(len(transfers))), weights)
        return rates
