"""Flow-level bandwidth model (max-min fair sharing of access links).

Bulk data transfers (BitTorrent pieces, tree-dissemination blocks, web cache
objects) are simulated at flow level: every host has an uplink and a downlink
capacity, and the rates of all concurrent transfers are the max-min fair
allocation over those access links.  Rates are recomputed whenever a transfer
starts or completes, which is exact for this link model and fast enough for
the paper's experiment sizes (tens to a few hundred concurrent flows).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.sim.futures import Future
from repro.sim.kernel import ScheduledEvent, Simulator

#: capacity used for hosts without an explicit limit (effectively unlimited)
UNLIMITED_BPS = 1e15


class Transfer:
    """One in-flight bulk transfer."""

    __slots__ = ("transfer_id", "src_ip", "dst_ip", "total_bytes", "remaining_bytes",
                 "rate_bps", "started_at", "done", "cancelled")

    def __init__(self, src_ip: str, dst_ip: str, nbytes: float, started_at: float,
                 transfer_id: int = 0):
        self.transfer_id = transfer_id
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.total_bytes = float(nbytes)
        self.remaining_bytes = float(nbytes)
        self.rate_bps = 0.0
        self.started_at = started_at
        #: completes with the finish time (seconds) once all bytes are delivered.
        #: Unnamed on purpose: formatting a label per transfer was measurable
        #: on dissemination workloads, and repr() can rebuild it on demand.
        self.done: Future = Future()
        self.cancelled = False

    @property
    def bytes_transferred(self) -> float:
        """Bytes delivered so far (as of the last rate recomputation)."""
        return self.total_bytes - self.remaining_bytes

    def duration_so_far(self, now: float) -> float:
        """Elapsed time since the transfer started, in seconds."""
        return max(0.0, now - self.started_at)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Transfer #{self.transfer_id} {self.src_ip}->{self.dst_ip} "
                f"{self.remaining_bytes:.0f}/{self.total_bytes:.0f}B @{self.rate_bps:.0f}bps>")


class BandwidthModel:
    """Max-min fair sharing of per-host uplink/downlink capacities."""

    def __init__(self, sim: Simulator, default_uplink_bps: Optional[float] = None,
                 default_downlink_bps: Optional[float] = None):
        self.sim = sim
        self.default_uplink_bps = default_uplink_bps or UNLIMITED_BPS
        self.default_downlink_bps = default_downlink_bps or UNLIMITED_BPS
        self._capacities: Dict[str, Tuple[float, float]] = {}
        self._active: List[Transfer] = []
        self._last_update = 0.0
        self._completion_event: Optional[ScheduledEvent] = None
        # Per-model ids keep co-hosted seeded simulations reproducible (a
        # process-wide counter would interleave them).
        self._transfer_ids = 0
        #: completed transfer count (for stats/tests)
        self.completed = 0
        #: bytes fully delivered by completed transfers (metrics section)
        self.bytes_completed = 0.0
        #: transfers aborted mid-flight — explicit cancel or host failure
        self.preemptions = 0
        #: runtime sanitizer (repro.sim.sanitizer) or None
        self._san: Optional[object] = None

    # ------------------------------------------------------------- capacities
    def set_capacity(self, ip: str, uplink_bps: Optional[float], downlink_bps: Optional[float]) -> None:
        """Set the access-link capacities of host ``ip`` (``None`` = unlimited)."""
        up = uplink_bps if uplink_bps and uplink_bps > 0 else UNLIMITED_BPS
        down = downlink_bps if downlink_bps and downlink_bps > 0 else UNLIMITED_BPS
        self._capacities[ip] = (up, down)

    def capacity(self, ip: str) -> Tuple[float, float]:
        return self._capacities.get(ip, (self.default_uplink_bps, self.default_downlink_bps))

    # --------------------------------------------------------------- transfers
    def transfer(self, src_ip: str, dst_ip: str, nbytes: float) -> Transfer:
        """Start a bulk transfer of ``nbytes`` bytes; returns its :class:`Transfer`."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        self._transfer_ids += 1
        transfer = Transfer(src_ip, dst_ip, nbytes, self.sim.now,
                            transfer_id=self._transfer_ids)
        if nbytes == 0:
            transfer.done.set_result(self.sim.now)
            self.completed += 1
            return transfer
        self._advance_progress()
        self._active.append(transfer)
        self._reallocate()
        return transfer

    def cancel_transfer(self, transfer: Transfer) -> None:
        """Abort an in-flight transfer (its future is cancelled).

        The transfer is only marked here; the next :meth:`_reallocate` drops
        all cancelled entries in one partition pass instead of an O(n)
        ``list.remove`` per victim.
        """
        if transfer.done.done():
            return
        self._advance_progress()
        transfer.cancelled = True
        transfer.done.cancel()
        self.preemptions += 1
        self._reallocate()

    def cancel_host(self, ip: str) -> int:
        """Abort every transfer with ``ip`` as source or destination (host failure).

        Single pass: victims are marked and their futures cancelled, then one
        rate recomputation covers them all (the old per-victim
        ``cancel_transfer`` loop recomputed rates O(victims) times).
        """
        victims = [t for t in self._active
                   if not t.cancelled and (t.src_ip == ip or t.dst_ip == ip)]
        if not victims:
            return 0
        self._advance_progress()
        for transfer in victims:
            transfer.cancelled = True
            transfer.done.cancel()
        self.preemptions += len(victims)
        self._reallocate()
        return len(victims)

    @property
    def active_transfers(self) -> int:
        return len(self._active)

    def current_rate(self, transfer: Transfer) -> float:
        """The instantaneous allocated rate of ``transfer`` in bits/second."""
        return transfer.rate_bps

    # --------------------------------------------------------------- internals
    def _advance_progress(self) -> None:
        """Account for the bytes sent since the last rate change."""
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for transfer in self._active:
                transfer.remaining_bytes -= transfer.rate_bps * elapsed / 8.0
                if transfer.remaining_bytes < 1e-6:
                    transfer.remaining_bytes = 0.0
        self._last_update = now

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and schedule the next completion."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None

        # One partition pass: drop cancelled entries, complete transfers with
        # no bytes left, keep the rest (order preserved for determinism).
        now = self.sim.now
        live: List[Transfer] = []
        finished: List[Transfer] = []
        for transfer in self._active:
            if transfer.cancelled:
                continue
            if transfer.remaining_bytes <= 0.0:
                finished.append(transfer)
            else:
                live.append(transfer)
        self._active = live
        for transfer in finished:
            transfer.done.set_result(now)
            self.completed += 1
            self.bytes_completed += transfer.total_bytes

        if not self._active:
            return

        rates = self._max_min_fair_rates(self._active)
        for transfer, rate in zip(self._active, rates):
            transfer.rate_bps = rate
        if self._san is not None:
            self._san.check_flow_conservation(self)

        # Progressive filling can legitimately leave a flow at rate 0 (e.g. a
        # shared uplink exhausted by a downlink-bottlenecked flow, or float
        # dust zeroing a link's remaining capacity).  Zero-rate flows make no
        # progress, so they must not drive the completion tick — and if every
        # flow is stalled there is nothing to schedule: the next call to
        # _reallocate (a transfer starting, completing or being cancelled
        # frees capacity) re-ticks them.
        finish_times = [t.remaining_bytes * 8.0 / t.rate_bps
                        for t in self._active if t.rate_bps > 0]
        if not finish_times:
            return
        next_finish = max(min(finish_times), 0.0)
        self._completion_event = self.sim.schedule(next_finish, self._on_completion_tick)

    def _on_completion_tick(self) -> None:
        self._completion_event = None
        self._advance_progress()
        self._reallocate()

    def _max_min_fair_rates(self, transfers: List[Transfer]) -> List[float]:
        """Classic progressive-filling max-min fair allocation over access links.

        Each link tracks how many of its flows are still unallocated, so the
        share loop is O(links) per round instead of rescanning every link's
        full flow list against the unallocated set (quadratic at the flow
        counts the dissemination workload reaches).
        """
        links: Dict[Tuple[str, str], float] = {}
        flows_on_link: Dict[Tuple[str, str], List[int]] = {}
        flow_links: List[Tuple[Tuple[str, str], Tuple[str, str]]] = []
        for index, transfer in enumerate(transfers):
            up_link = ("up", transfer.src_ip)
            down_link = ("down", transfer.dst_ip)
            up, _ = self.capacity(transfer.src_ip)
            _, down = self.capacity(transfer.dst_ip)
            links.setdefault(up_link, up)
            links.setdefault(down_link, down)
            flows_on_link.setdefault(up_link, []).append(index)
            flows_on_link.setdefault(down_link, []).append(index)
            flow_links.append((up_link, down_link))

        rates = [0.0] * len(transfers)
        allocated = [False] * len(transfers)
        n_unallocated = len(transfers)
        remaining = dict(links)
        pending_count = {link: len(flows) for link, flows in flows_on_link.items()}

        while n_unallocated:
            # Fair share currently offered by each link to its unallocated flows.
            best_link = None
            best_share = math.inf
            for link, capacity in remaining.items():
                count = pending_count[link]
                if not count:
                    continue
                share = capacity / count
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:
                break
            for flow in flows_on_link[best_link]:
                if allocated[flow]:
                    continue
                rates[flow] = best_share
                allocated[flow] = True
                n_unallocated -= 1
                # Reduce remaining capacity on every link this flow crosses.
                for link in flow_links[flow]:
                    remaining[link] = max(0.0, remaining[link] - best_share)
                    pending_count[link] -= 1
        return rates
