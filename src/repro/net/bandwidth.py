"""Flow-level bandwidth model (pluggable fair sharing of access links).

Bulk data transfers (BitTorrent pieces, tree-dissemination blocks, web cache
objects) are simulated at flow level: every host has an uplink and a downlink
capacity, and the rates of all concurrent transfers are computed by a
pluggable :mod:`~repro.net.bwalloc` allocator (max-min fairness by default)
over those access links.  Rates are recomputed whenever a transfer starts,
completes or is cancelled, which is exact for this link model.

Recomputation is **incremental** by default: a flow arriving or leaving can
only change the rates of flows it (transitively) shares an access link with,
so :meth:`BandwidthModel._reallocate` walks the connected component of the
flow/link graph around the changed flows and re-allocates just that
component.  Every registered allocator is per-component decomposable (no
global normalisation terms), which makes the incremental rates *bit-identical*
to a full recompute — the oracle test in ``tests/test_bwalloc.py`` replays
hundreds of random steps asserting exactly that, and ``--bw-global`` forces
the brute-force path at runtime.  At dissemination scale (thousands of
mostly-disjoint swarming flows) the component walk is what keeps the
allocation step off the profile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net import bwalloc
from repro.net.bwalloc import BULK, BandwidthAllocator, make_allocator
from repro.sim.futures import Future
from repro.sim.kernel import ScheduledEvent, Simulator

#: capacity used for hosts without an explicit limit (effectively unlimited)
UNLIMITED_BPS = 1e15


class Transfer:
    """One in-flight bulk transfer."""

    __slots__ = ("transfer_id", "src_ip", "dst_ip", "total_bytes", "remaining_bytes",
                 "rate_bps", "started_at", "accrued_at", "priority", "done",
                 "cancelled")

    def __init__(self, src_ip: str, dst_ip: str, nbytes: float, started_at: float,
                 transfer_id: int = 0, priority: int = BULK):
        self.transfer_id = transfer_id
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.total_bytes = float(nbytes)
        self.remaining_bytes = float(nbytes)
        self.rate_bps = 0.0
        self.started_at = started_at
        #: virtual time up to which ``remaining_bytes`` is accurate; progress
        #: between rate recomputations is extrapolated from here
        self.accrued_at = started_at
        #: bwalloc priority class (CONTROL/LOOKUP/BULK)
        self.priority = priority
        #: completes with the finish time (seconds) once all bytes are delivered.
        #: Unnamed on purpose: formatting a label per transfer was measurable
        #: on dissemination workloads, and repr() can rebuild it on demand.
        self.done: Future = Future()
        self.cancelled = False

    def bytes_transferred(self, now: Optional[float] = None) -> float:
        """Bytes delivered so far.

        ``remaining_bytes`` is only settled when rates change, so between
        recomputations the accrued figure goes stale.  Passing ``now``
        extrapolates along the current rate from the last settlement
        (clamped to the transfer size); omitting it returns the settled
        value as of the last rate recomputation.
        """
        accrued = self.total_bytes - self.remaining_bytes
        if now is None:
            return accrued
        in_flight = self.rate_bps * max(0.0, now - self.accrued_at) / 8.0
        return min(self.total_bytes, accrued + in_flight)

    def duration_so_far(self, now: float) -> float:
        """Elapsed time since the transfer started, in seconds."""
        return max(0.0, now - self.started_at)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Transfer #{self.transfer_id} {self.src_ip}->{self.dst_ip} "
                f"{self.remaining_bytes:.0f}/{self.total_bytes:.0f}B @{self.rate_bps:.0f}bps>")


#: a transfer's two access links, in the fixed enumeration order every
#: allocator and the component walk share
def _links_of(transfer: Transfer) -> Tuple[Tuple[str, str], Tuple[str, str]]:
    return ("up", transfer.src_ip), ("down", transfer.dst_ip)


class BandwidthModel:
    """Fair sharing of per-host uplink/downlink capacities.

    The allocation strategy is pluggable (:meth:`configure`); the default is
    the historical progressive-filling max-min fairness with incremental
    connected-component recomputation.
    """

    def __init__(self, sim: Simulator, default_uplink_bps: Optional[float] = None,
                 default_downlink_bps: Optional[float] = None):
        self.sim = sim
        self.default_uplink_bps = default_uplink_bps or UNLIMITED_BPS
        self.default_downlink_bps = default_downlink_bps or UNLIMITED_BPS
        self._capacities: Dict[str, Tuple[float, float]] = {}
        self._active: List[Transfer] = []
        #: live transfers per access link (dict-as-ordered-set), the adjacency
        #: the incremental component walk traverses.  Kept in lockstep with
        #: ``_active`` by the add/remove paths; the sanitizer cross-checks it.
        self._flows_on_link: Dict[Tuple[str, str], Dict[Transfer, None]] = {}
        self._last_update = 0.0
        self._completion_event: Optional[ScheduledEvent] = None
        # Per-model ids keep co-hosted seeded simulations reproducible (a
        # process-wide counter would interleave them).
        self._transfer_ids = 0
        self._allocator: BandwidthAllocator = make_allocator("max-min", self)
        self._incremental = True
        #: completed transfer count (for stats/tests)
        self.completed = 0
        #: bytes fully delivered by completed transfers (metrics section)
        self.bytes_completed = 0.0
        #: transfers aborted mid-flight — explicit cancel or host failure
        self.preemptions = 0
        #: per-priority-class splits of the two counters above
        self.bytes_completed_by_class: Dict[int, float] = {}
        self.preemptions_by_class: Dict[int, int] = {}
        #: allocation-step accounting: recomputations run, and how many flows
        #: each handed to the allocator (global recompute counts every live
        #: flow; incremental counts only the touched component)
        self.reallocations = 0
        self.flows_allocated = 0
        #: runtime sanitizer (repro.sim.sanitizer) or None
        self._san: Optional[object] = None

    # ---------------------------------------------------------- configuration
    def configure(self, allocator: Optional[str] = None,
                  incremental: Optional[bool] = None) -> None:
        """Select the allocation strategy and/or the recomputation mode.

        Safe mid-run: switching with live flows triggers one full recompute
        so every rate reflects the new policy.
        """
        if allocator is not None:
            self._allocator = make_allocator(allocator, self)
        if incremental is not None:
            self._incremental = incremental
        if self._active:
            self._advance_progress()
            self._reallocate()

    @property
    def allocator_name(self) -> str:
        return self._allocator.name

    @property
    def incremental(self) -> bool:
        return self._incremental

    # ------------------------------------------------------------- capacities
    def set_capacity(self, ip: str, uplink_bps: Optional[float], downlink_bps: Optional[float]) -> None:
        """Set the access-link capacities of host ``ip`` (``None`` = unlimited)."""
        up = uplink_bps if uplink_bps and uplink_bps > 0 else UNLIMITED_BPS
        down = downlink_bps if downlink_bps and downlink_bps > 0 else UNLIMITED_BPS
        self._capacities[ip] = (up, down)

    def capacity(self, ip: str) -> Tuple[float, float]:
        return self._capacities.get(ip, (self.default_uplink_bps, self.default_downlink_bps))

    # --------------------------------------------------------------- transfers
    def transfer(self, src_ip: str, dst_ip: str, nbytes: float,
                 priority: int = BULK) -> Transfer:
        """Start a bulk transfer of ``nbytes`` bytes; returns its :class:`Transfer`."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        self._transfer_ids += 1
        transfer = Transfer(src_ip, dst_ip, nbytes, self.sim.now,
                            transfer_id=self._transfer_ids, priority=priority)
        if nbytes == 0:
            transfer.done.set_result(self.sim.now)
            self.completed += 1
            return transfer
        self._advance_progress()
        self._active.append(transfer)
        for link in _links_of(transfer):
            self._flows_on_link.setdefault(link, {})[transfer] = None
        self._reallocate(changed=(transfer,))
        return transfer

    def cancel_transfer(self, transfer: Transfer) -> None:
        """Abort an in-flight transfer (its future is cancelled).

        The transfer is only marked here; the next :meth:`_reallocate` drops
        all cancelled entries in one partition pass instead of an O(n)
        ``list.remove`` per victim.
        """
        if transfer.done.done():
            return
        self._advance_progress()
        transfer.cancelled = True
        transfer.done.cancel()
        self.preemptions += 1
        self.preemptions_by_class[transfer.priority] = (
            self.preemptions_by_class.get(transfer.priority, 0) + 1)
        self._reallocate()

    def cancel_host(self, ip: str) -> int:
        """Abort every transfer with ``ip`` as source or destination (host failure).

        Single pass: victims are marked and their futures cancelled, then one
        rate recomputation covers them all (the old per-victim
        ``cancel_transfer`` loop recomputed rates O(victims) times).
        """
        victims = [t for t in self._active
                   if not t.cancelled and (t.src_ip == ip or t.dst_ip == ip)]
        if not victims:
            return 0
        self._advance_progress()
        for transfer in victims:
            transfer.cancelled = True
            transfer.done.cancel()
            self.preemptions_by_class[transfer.priority] = (
                self.preemptions_by_class.get(transfer.priority, 0) + 1)
        self.preemptions += len(victims)
        self._reallocate()
        return len(victims)

    @property
    def active_transfers(self) -> int:
        return len(self._active)

    def current_rate(self, transfer: Transfer) -> float:
        """The instantaneous allocated rate of ``transfer`` in bits/second."""
        return transfer.rate_bps

    # --------------------------------------------------------------- internals
    def _advance_progress(self) -> None:
        """Account for the bytes sent since the last rate change."""
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for transfer in self._active:
                transfer.remaining_bytes -= transfer.rate_bps * elapsed / 8.0
                if transfer.remaining_bytes < 1e-6:
                    transfer.remaining_bytes = 0.0
                transfer.accrued_at = now
        self._last_update = now

    def _component(self, seeds: List[Transfer]) -> List[Transfer]:
        """Live transfers transitively sharing an access link with ``seeds``.

        Walks the flow/link bipartite graph from the seeds' links and returns
        the members sorted by ``transfer_id`` — the relative order they hold
        in ``_active``, so the allocator sees the same enumeration (and hence
        the same link insertion order and tie-breaks) a full recompute would.
        """
        flows_on_link = self._flows_on_link
        seen_links: Dict[Tuple[str, str], None] = {}
        frontier: List[Tuple[str, str]] = []
        for transfer in seeds:
            for link in _links_of(transfer):
                if link not in seen_links:
                    seen_links[link] = None
                    frontier.append(link)
        members: Dict[Transfer, None] = {}
        while frontier:
            link = frontier.pop()
            for transfer in flows_on_link.get(link, ()):
                if transfer in members:
                    continue
                members[transfer] = None
                for other in _links_of(transfer):
                    if other not in seen_links:
                        seen_links[other] = None
                        frontier.append(other)
        return sorted(members, key=lambda t: t.transfer_id)

    def _allocate_rates(self, transfers: List[Transfer]) -> List[float]:
        """Allocator seam (tests monkeypatch this to inject rate schedules)."""
        return self._allocator.allocate(transfers)

    def _reallocate(self, changed: Tuple[Transfer, ...] = ()) -> None:
        """Recompute rates and schedule the next completion.

        ``changed`` lists transfers just *added*; transfers leaving (finished
        or cancelled) are discovered by the partition pass below.  Together
        they seed the incremental component walk: only flows sharing a
        bottleneck link (transitively) with a changed flow can see their rate
        move, so only that component is re-allocated.  With no seeds at all —
        an external call, or ``--bw-global`` — every live flow is.
        """
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None

        # One partition pass: drop cancelled entries, complete transfers with
        # no bytes left, keep the rest (order preserved for determinism).
        now = self.sim.now
        live: List[Transfer] = []
        finished: List[Transfer] = []
        removed: List[Transfer] = []
        for transfer in self._active:
            if transfer.cancelled:
                removed.append(transfer)
                continue
            if transfer.remaining_bytes <= 0.0:
                finished.append(transfer)
                removed.append(transfer)
            else:
                live.append(transfer)
        self._active = live
        flows_on_link = self._flows_on_link
        for transfer in removed:
            for link in _links_of(transfer):
                flows = flows_on_link.get(link)
                if flows is not None:
                    flows.pop(transfer, None)
                    if not flows:
                        del flows_on_link[link]
        for transfer in finished:
            transfer.done.set_result(now)
            self.completed += 1
            self.bytes_completed += transfer.total_bytes
            self.bytes_completed_by_class[transfer.priority] = (
                self.bytes_completed_by_class.get(transfer.priority, 0.0)
                + transfer.total_bytes)

        if not self._active:
            return

        seeds = [t for t in changed if not t.done.done()] + removed
        if self._incremental and seeds:
            targets = self._component(seeds)
        else:
            targets = self._active
        if targets:
            rates = self._allocate_rates(targets)
            for transfer, rate in zip(targets, rates):
                transfer.rate_bps = rate
        self.reallocations += 1
        self.flows_allocated += len(targets)
        if self._san is not None:
            self._san.check_flow_conservation(self)
            self._san.check_flow_table(self)

        # Progressive filling can legitimately leave a flow at rate 0 (e.g. a
        # shared uplink exhausted by a downlink-bottlenecked flow, float dust
        # zeroing a link's remaining capacity, or a strict-priority class
        # starved outright).  Zero-rate flows make no progress, so they must
        # not drive the completion tick — and if every flow is stalled there
        # is nothing to schedule: the next call to _reallocate (a transfer
        # starting, completing or being cancelled frees capacity) re-ticks
        # them.
        finish_times = [t.remaining_bytes * 8.0 / t.rate_bps
                        for t in self._active if t.rate_bps > 0]
        if not finish_times:
            return
        next_finish = max(min(finish_times), 0.0)
        self._completion_event = self.sim.schedule(next_finish, self._on_completion_tick)

    def _on_completion_tick(self) -> None:
        self._completion_event = None
        self._advance_progress()
        self._reallocate()

    def class_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-priority-class completed bytes and preemptions (for metrics)."""
        stats: Dict[str, Dict[str, float]] = {}
        for value, name in bwalloc.PRIORITY_NAMES.items():
            bytes_done = self.bytes_completed_by_class.get(value, 0.0)
            preempted = self.preemptions_by_class.get(value, 0)
            if bytes_done or preempted:
                stats[name] = {"bytes_completed": bytes_done,
                               "preemptions": preempted}
        return stats
