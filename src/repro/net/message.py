"""Message envelope delivered by the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.net.address import Address
from repro.net.bwalloc import LOOKUP

_msg_counter = itertools.count(1)


@dataclass(slots=True)
class Message:
    """A single datagram/stream message travelling between two endpoints.

    ``size`` is the on-the-wire size in bytes (payload after ``llenc``/JSON
    serialisation plus a small framing overhead); it drives both the
    bandwidth model and host processing delays.
    """

    # ``size`` must be non-negative; the network layer only builds messages
    # from estimated or validated sizes, so there is no per-message check
    # here (a __post_init__ hook costs one Python call per simulated message).
    src: Address
    dst: Address
    payload: Any
    size: int
    kind: str = "data"
    sent_at: float = 0.0
    #: bwalloc priority class (CONTROL for RPC, LOOKUP for protocol messages);
    #: per-class traffic accounting keys off it
    priority: int = LOOKUP
    msg_id: int = field(default_factory=_msg_counter.__next__)

    def reply_to(self, payload: Any, size: int, kind: str = "reply") -> "Message":
        """Build a response message addressed back to the sender."""
        return Message(src=self.dst, dst=self.src, payload=payload, size=size,
                       kind=kind, priority=self.priority)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Message #{self.msg_id} {self.kind} {self.src}->{self.dst} {self.size}B>"
