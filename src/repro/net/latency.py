"""Latency models.

Each testbed provides a latency model mapping a pair of host IPs to a
one-way propagation delay in seconds.  Models are deterministic: for a given
simulator seed, the same pair always observes the same base delay (optional
per-message jitter is added by the :class:`~repro.net.network.Network`).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.sim.rng import substream


class LatencyModel:
    """Interface: one-way propagation delay between two hosts."""

    def one_way(self, src_ip: str, dst_ip: str) -> float:
        raise NotImplementedError

    def rtt(self, src_ip: str, dst_ip: str) -> float:
        """Round-trip time between two hosts (twice the one-way delay)."""
        return self.one_way(src_ip, dst_ip) + self.one_way(dst_ip, src_ip)


class ConstantLatency(LatencyModel):
    """The same one-way delay for every pair (loopback is free)."""

    def __init__(self, delay: float = 0.001):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay

    def one_way(self, src_ip: str, dst_ip: str) -> float:
        if src_ip == dst_ip:
            return 0.0
        return self.delay


class PairwiseLatency(LatencyModel):
    """Per-pair delays drawn lazily from a sampler and cached.

    Parameters
    ----------
    seed:
        Root seed for the deterministic substreams.
    sampler:
        Callable receiving a :class:`random.Random` and returning a one-way
        delay in seconds for a new pair.
    local_delay:
        Delay between two endpoints on the same host.
    """

    def __init__(self, seed: int, sampler: Callable[..., float], local_delay: float = 0.0001):
        self.seed = seed
        self.sampler = sampler
        self.local_delay = local_delay
        self._cache: Dict[Tuple[str, str], float] = {}

    def one_way(self, src_ip: str, dst_ip: str) -> float:
        if src_ip == dst_ip:
            return self.local_delay
        key = (src_ip, dst_ip) if src_ip <= dst_ip else (dst_ip, src_ip)
        delay = self._cache.get(key)
        if delay is None:
            rng = substream(self.seed, "pairwise-latency", key)
            delay = max(0.0, float(self.sampler(rng)))
            self._cache[key] = delay
        return delay


class MatrixLatency(LatencyModel):
    """Explicit per-pair delays with a default for unknown pairs."""

    def __init__(self, delays: Mapping[Tuple[str, str], float], default: float = 0.05,
                 symmetric: bool = True, local_delay: float = 0.0001):
        self.delays = dict(delays)
        self.default = default
        self.symmetric = symmetric
        self.local_delay = local_delay

    def one_way(self, src_ip: str, dst_ip: str) -> float:
        if src_ip == dst_ip:
            return self.local_delay
        if (src_ip, dst_ip) in self.delays:
            return self.delays[(src_ip, dst_ip)]
        if self.symmetric and (dst_ip, src_ip) in self.delays:
            return self.delays[(dst_ip, src_ip)]
        return self.default


class TopologyLatency(LatencyModel):
    """Delays computed from shortest paths on an emulated topology (ModelNet).

    ``host_attachment`` maps a host IP to the topology node (stub) it is
    attached to; path delays between topology nodes are provided by the
    topology object (see :class:`repro.net.topology.TransitStubTopology`).
    """

    def __init__(self, topology, host_attachment: Mapping[str, int], local_delay: float = 0.0001):
        self.topology = topology
        self.host_attachment = dict(host_attachment)
        self.local_delay = local_delay
        # Resolved once: with a TransitStubTopology the per-source delay rows
        # are indexed directly (one dict probe + one list index per message)
        # instead of going through a path_delay call.  Foreign topology
        # objects (tests, custom models) keep the method-call path.
        self._delay_rows = getattr(topology, "_delay_cache", None)
        self._build_row = getattr(topology, "_build_delay_row", None)
        if self._delay_rows is None or self._build_row is None:
            self._delay_rows = None
            self._build_row = None

    def attach(self, ip: str, topology_node: int) -> None:
        """Attach (or re-attach) a host to a topology node."""
        self.host_attachment[ip] = topology_node

    def one_way(self, src_ip: str, dst_ip: str) -> float:
        if src_ip == dst_ip:
            return self.local_delay
        attachment = self.host_attachment
        try:
            src_node = attachment[src_ip]
            dst_node = attachment[dst_ip]
        except KeyError as exc:
            raise KeyError(f"host not attached to the topology: {exc}") from exc
        if src_node == dst_node:
            # Same emulated domain: the paper's ModelNet configuration uses a
            # 10 ms RTT between nodes of the same domain.
            return self.topology.intra_domain_delay
        rows = self._delay_rows
        if rows is None:
            return self.topology.path_delay(src_node, dst_node)
        row = rows.get(src_node)
        if row is None:
            row = self._build_row(src_node)
        delay = row[dst_node]
        if delay != delay:  # NaN marks an unreachable node
            raise KeyError(f"no path between topology nodes {src_node} and {dst_node}")
        return delay


class CompositeLatency(LatencyModel):
    """Dispatch to per-group models, with a dedicated model for inter-group pairs.

    Used by mixed deployments (e.g. 500 nodes on PlanetLab and 500 on a
    ModelNet cluster in Section 5.4): intra-testbed delays come from each
    testbed's own model while inter-testbed delays use a wide-area model.
    """

    def __init__(self, group_of: Callable[[str], str], intra_models: Mapping[str, LatencyModel],
                 inter_model: LatencyModel):
        self.group_of = group_of
        self.intra_models = dict(intra_models)
        self.inter_model = inter_model

    def one_way(self, src_ip: str, dst_ip: str) -> float:
        src_group = self.group_of(src_ip)
        dst_group = self.group_of(dst_ip)
        if src_group == dst_group and src_group in self.intra_models:
            return self.intra_models[src_group].one_way(src_ip, dst_ip)
        return self.inter_model.one_way(src_ip, dst_ip)


def lognormal_sampler(median_ms: float, sigma: float) -> Callable[..., float]:
    """Build a sampler of one-way delays with log-normal spread around ``median_ms``.

    The resulting callable takes a :class:`random.Random` and returns seconds.
    Wide-area RTT distributions are well approximated by log-normals; the
    PlanetLab testbed model uses this sampler.
    """
    import math

    mu = math.log(median_ms / 1000.0)

    def _sample(rng) -> float:
        return math.exp(rng.gauss(mu, sigma))

    return _sample
