"""``splayd``: the per-host daemon.

Paper counterpart: *splayd*.  "A splayd instantiates, stops, and monitors
applications on one host.  Each application instance runs in a sandboxed
process; the local administrator sets resource limits that the controller
can only further restrict."

In this reproduction a :class:`Splayd` owns one simulated :class:`Host` on
the network.  Spawning an instance creates a fresh
:class:`~repro.sim.events_api.AppContext` plus the full sandbox stack around
it — restricted socket (merged policy), sandboxed filesystem (merged
quotas), logger (wired to the controller's collector) and RPC service — and
then hands the bundle to the job's application factory.  Killing the context
tears everything down instantly, which is exactly what churn exploits.

Public entry points: :class:`Splayd` (``spawn`` / ``stop_instance`` /
``batch_exec`` — the controller shards' one-round-per-daemon command
channel — plus ``fail`` / ``recover`` for host churn), the per-instance
handle :class:`Instance`, and the administrator limits
:class:`SplaydLimits`.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core.jobs import Job
from repro.lib.logging import LogBudget, SplayLogger
from repro.lib.rpc import RpcService
from repro.lib.sbfs import SandboxedFS
from repro.lib.sbsocket import RestrictedSocket, SocketPolicy
from repro.net.address import Address, NodeRef
from repro.net.network import Network
from repro.sim.events_api import AppContext, Events
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.controller import Controller


class SplaydError(Exception):
    """Raised when a daemon cannot satisfy a controller request."""


class Host:
    """The simulated machine a daemon runs on (registered with the network)."""

    __slots__ = ("ip", "alive")

    def __init__(self, ip: str):
        # Interned: the same IP string is keyed in the network's host map,
        # the latency attachments and thousands of NodeRefs; interning makes
        # those dict probes pointer comparisons and stores each IP once.
        self.ip = sys.intern(ip)
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.ip} {'up' if self.alive else 'down'}>"


@dataclass
class SplaydLimits:
    """Local administrator limits; the controller can only tighten them."""

    max_instances: Optional[int] = None
    socket_policy: SocketPolicy = field(default_factory=SocketPolicy)
    fs_max_bytes: Optional[int] = None
    fs_max_files: Optional[int] = None
    log_max_bytes: Optional[int] = None


class Instance:
    """One sandboxed application instance (the runtime's ``job`` handle).

    This is the object handed to the application factory — the equivalent of
    the ``job`` table a SPLAY application receives: ``instance.me`` is the
    node's own reference, ``instance.events``/``rpc``/``fs``/``logger`` are
    the sandboxed libraries, and ``instance.options`` carries the job's
    deployment options.
    """

    _serials = itertools.count(1)

    __slots__ = ("serial", "job", "instance_id", "daemon", "context", "events",
                 "socket", "rpc", "fs", "logger", "me", "options", "app")

    def __init__(self, job: Job, instance_id: int, daemon: "Splayd",
                 context: AppContext, events: Events, socket: RestrictedSocket,
                 rpc: RpcService, fs: SandboxedFS, logger: SplayLogger):
        self.serial = next(Instance._serials)
        self.job = job
        self.instance_id = instance_id
        self.daemon = daemon
        self.context = context
        self.events = events
        self.socket = socket
        self.rpc = rpc
        self.fs = fs
        self.logger = logger
        self.me = NodeRef(socket.local.ip, socket.local.port)
        self.options: Dict[str, Any] = dict(job.spec.options)
        #: set by the daemon after the app factory runs
        self.app: Any = None

    @property
    def alive(self) -> bool:
        return self.context.alive

    @property
    def address(self) -> Address:
        return self.socket.local

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"<Instance {self.job.spec.name}.i{self.instance_id}@{self.address} {state}>"


class Splayd:
    """The daemon process of one host.

    Parameters
    ----------
    sim / network:
        Simulation substrate.  The daemon registers its :class:`Host` with
        the network on construction.
    ip:
        The host's address on the simulated network.
    limits:
        Local resource limits, merged with (and never loosened by) each
        job's own restrictions.
    """

    def __init__(self, sim: Simulator, network: Network, ip: str,
                 limits: Optional[SplaydLimits] = None):
        self.sim = sim
        self.network = network
        self.host = Host(ip)
        self.limits = limits or SplaydLimits()
        self.controller: Optional["Controller"] = None
        #: set by JobStore.add_daemon — lets fail/recover invalidate the
        #: store's memoized alive/failed host views without a lookup
        self.store: Optional[Any] = None
        self.instances: List[Instance] = []
        self._allocated_ports: set[int] = set()
        self.spawned_total = 0
        self.killed_total = 0
        self.batches_received = 0
        self.commands_executed = 0
        # One clock closure shared by every instance logger on this host
        # (one per spawn was measurable at 10k nodes).
        self._clock = lambda: self.sim.now
        network.add_host(self.host)

    # ---------------------------------------------------------------- queries
    @property
    def ip(self) -> str:
        return self.host.ip

    @property
    def alive(self) -> bool:
        return self.host.alive

    @property
    def free_slots(self) -> Optional[int]:
        """Remaining instance capacity (``None`` = unlimited)."""
        if self.limits.max_instances is None:
            return None
        return max(0, self.limits.max_instances - len(self.instances))

    def has_capacity(self) -> bool:
        return self.alive and (self.free_slots is None or self.free_slots > 0)

    # ------------------------------------------------------------------ spawn
    def spawn(self, job: Job, instance_id: int) -> Instance:
        """Instantiate one sandboxed application instance for ``job``."""
        if not self.host.alive:
            raise SplaydError(f"host {self.ip} is down")
        if not self.has_capacity():
            raise SplaydError(f"daemon {self.ip} is at capacity "
                              f"({self.limits.max_instances} instances)")
        port = self._allocate_port(job.spec.base_port)
        name = f"{job.spec.name}#{job.job_id}.i{instance_id}@{self.ip}:{port}"
        context = AppContext(self.sim, name=name)
        events = Events(self.sim, context)
        policy = self.limits.socket_policy
        if job.spec.socket_policy is not None:
            policy = policy.merged_with(job.spec.socket_policy)
        socket = RestrictedSocket(self.network, context, Address(self.ip, port),
                                  policy=policy, seed=self.sim.seed)
        fs = SandboxedFS(
            max_bytes=_stricter(self.limits.fs_max_bytes, job.spec.fs_max_bytes),
            max_open_files=_stricter(None, job.spec.fs_max_files))
        sink = None
        if self.controller is not None:
            sink = self.controller.make_log_sink(job, self.ip)
        # The shipping budget only exists where something enforces it; the
        # logger allocates a default lazily if an unbounded one is needed.
        log_max = _stricter(self.limits.log_max_bytes, job.spec.log_max_bytes)
        budget = LogBudget(max_bytes=log_max) if log_max is not None else None
        logger = SplayLogger(
            source=name, level=job.spec.log_level, remote_sink=sink,
            budget=budget, clock=self._clock, host=self.ip)
        rpc = RpcService(socket, events)
        obs = getattr(self.sim, "_obs", None)
        if obs is not None and obs.metrics_enabled and self.controller is not None:
            # Same store-resident path the log sink takes: the registry is
            # per-job and survives shard failover with the store.
            rpc.bind_metrics(self.controller.metrics_for(job))
        instance = Instance(job, instance_id, self, context, events, socket, rpc, fs, logger)
        self.instances.append(instance)
        self.spawned_total += 1

        def _reap() -> None:
            if instance in self.instances:
                self.instances.remove(instance)
            self._allocated_ports.discard(port)
            socket.close()
            fs.wipe()
            # Cleanups are the one death path every kill funnels through
            # (controller stop, host failure, the app's own events.exit()),
            # so this is where the job's live view goes stale.
            job._invalidate_live()

        context.add_cleanup(_reap)
        try:
            instance.app = job.spec.app_factory(instance)
        except Exception:
            # A broken application factory must not leave a half-built
            # instance holding a slot, port and listener on this daemon.
            context.kill("app factory failed")
            raise
        return instance

    def _allocate_port(self, base_port: int) -> int:
        port = base_port
        while port in self._allocated_ports or self.network.is_listening(Address(self.ip, port)):
            port += 1
            if port > 65535:
                raise SplaydError(f"no free port on {self.ip} at or above {base_port}")
        self._allocated_ports.add(port)
        return port

    # ------------------------------------------------------------------ batch
    def batch_exec(self, commands: List[tuple]) -> List[object]:
        """Execute a list of controller commands in one round trip.

        This is the shards' command channel: instead of one call per
        instance, a controller shard sends one batch per daemon per control
        action.  Commands are ``("spawn", job, instance_id)`` or
        ``("kill", instance, reason)``, executed in order; the returned list
        holds one outcome per command — the :class:`Instance` for a spawn,
        ``True`` for a kill, or the exception the command raised
        (a :class:`SplaydError` for daemon-side refusals, anything else for
        application bugs — the shard decides what to surface).  A failing
        command never aborts the rest of the batch, so the caller always
        learns about every instance that *did* spawn.
        """
        self.batches_received += 1
        outcomes: List[object] = []
        for command in commands:
            op = command[0]
            try:
                if op == "spawn":
                    _, job, instance_id = command
                    outcomes.append(self.spawn(job, instance_id))
                elif op == "kill":
                    _, instance, reason = command
                    self.stop_instance(instance, reason=reason)
                    outcomes.append(True)
                else:
                    raise SplaydError(f"unknown daemon command: {op!r}")
            except Exception as exc:  # noqa: BLE001 - outcome, not control flow
                outcomes.append(exc)
            self.commands_executed += 1
        return outcomes

    # ------------------------------------------------------------------- stop
    def stop_instance(self, instance: Instance, reason: str = "stopped") -> None:
        """Tear one instance down (kills its context; cleanups do the rest)."""
        if instance.daemon is not self:
            raise SplaydError("instance belongs to another daemon")
        if instance.alive:
            self.killed_total += 1
        instance.context.kill(reason)

    def fail(self) -> int:
        """Simulate a host failure: every instance dies, traffic is dropped."""
        if not self.host.alive:
            return 0
        self.host.alive = False
        if self.store is not None:
            self.store._note_host_state_changed()
        victims = list(self.instances)
        for instance in victims:
            self.stop_instance(instance, reason=f"host failure: {self.ip}")
        self.network.bandwidth.cancel_host(self.ip)
        return len(victims)

    def recover(self) -> None:
        """Bring a failed host back (with no instances, like a fresh boot)."""
        self.host.alive = True
        if self.store is not None:
            self.store._note_host_state_changed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Splayd {self.ip} {'up' if self.alive else 'down'} "
                f"instances={len(self.instances)}>")


def _stricter(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)
