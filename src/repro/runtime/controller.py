"""``splayctl``: the controller, as a shardable control plane.

Paper counterpart: *splayctl*.  "The controller manages applications: it
registers daemons, lets users submit jobs, selects appropriate hosts,
instructs daemons to start or stop application instances, and collects logs
and statistics" — and it is explicitly *not* one process: the paper runs
several controller front-ends behind one shared database so the testbed
keeps up with hundreds of daemons and heavy log traffic.

This module holds the deployment-facing facade.  A :class:`Controller` owns
one shared :class:`~repro.runtime.jobstore.JobStore` (the database) plus
``shards`` stateless :class:`~repro.runtime.jobstore.CtlShard` front-ends;
daemons are registered round-robin across shards, jobs are claimed by a
shard on submission, and every command a shard issues to a daemon travels
in a per-daemon ``batch_exec`` round.  With ``shards=1`` (the default) the
facade behaves exactly like the historical monolithic controller, and —
because placement randomness and log collection live on the store — the
workload-visible behaviour is byte-identical for any shard count.

The control plane itself (daemon registration, job commands) is modelled as
instantaneous — the paper's controller uses a separate reliable channel
whose latency is irrelevant to the measured application behaviour.  All
*application* traffic flows through the daemons' restricted sockets on the
simulated network.

Public entry points: :class:`Controller` (``register_daemon`` /``submit`` /
``start`` / ``start_instances`` / ``kill_instance(s)`` / ``stop`` /
``fail_host`` / ``recover_host`` / ``job_logs`` / ``job_status`` /
``control_plane_status``) and the re-exported :class:`ControllerError`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.jobs import Job, JobSpec
from repro.lib.logging import LogRecord
from repro.net.network import Network
from repro.runtime.jobstore import (
    ControllerError,
    CtlShard,
    JobStore,
    LogCollector,
)
from repro.runtime.splayd import Instance, Splayd
from repro.sim.kernel import Simulator

__all__ = ["Controller", "ControllerError", "CtlShard", "JobStore", "LogCollector"]


class Controller:
    """The control plane of a deployment: a job store plus N controller shards.

    Parameters
    ----------
    sim / network:
        Simulation substrate.
    seed:
        Root seed for placement randomness (defaults to the simulator's).
    shards:
        Number of stateless front-ends; daemons register round-robin across
        them and each submitted job is claimed by one of them.
    log_queue_depth / log_drain_interval:
        Bounds of each per-job log collector queue (drop-oldest when full)
        and the delay of its drain event.
    store_caches:
        Keep the store's memoized alive/failed host views and the bucketed
        placement planner on (the default).  ``False`` is the kill switch
        that restores from-scratch recomputes — byte-identical reports, used
        by the digest-parity tests.
    """

    def __init__(self, sim: Simulator, network: Network, seed: Optional[int] = None,
                 shards: int = 1, log_queue_depth: int = 4096,
                 log_drain_interval: float = 0.25, store_caches: bool = True):
        if shards < 1:
            raise ControllerError("a controller needs at least one shard")
        self.sim = sim
        self.network = network
        self.store = JobStore(sim, network, seed=seed,
                              log_queue_depth=log_queue_depth,
                              log_drain_interval=log_drain_interval,
                              caches=store_caches)
        self.shards: List[CtlShard] = [CtlShard(self.store, i) for i in range(shards)]
        self._register_rr = 0
        self._claim_rr = 0

    # ------------------------------------------------------------- delegation
    @property
    def daemons(self) -> Dict[str, Splayd]:
        return self.store.daemons

    @property
    def jobs(self) -> Dict[int, Job]:
        return self.store.jobs

    @property
    def churn_managers(self) -> Dict[int, object]:
        return self.store.churn_managers

    def _next_shard(self, cursor: str) -> CtlShard:
        """Round-robin over alive shards (skips failed ones deterministically)."""
        alive = self.store.alive_shards()
        if not alive:
            raise ControllerError("no alive controller shard")
        index = getattr(self, cursor)
        setattr(self, cursor, index + 1)
        return alive[index % len(alive)]

    def shard_for(self, job: Job) -> CtlShard:
        """The shard currently responsible for ``job`` (reclaims if dead)."""
        return self.store.claimant(job)

    # ---------------------------------------------------------------- daemons
    def register_daemon(self, daemon: Splayd) -> None:
        """Register a daemon (normally done by the splayd at boot)."""
        self._next_shard("_register_rr").register_daemon(daemon, controller=self)

    def alive_daemons(self) -> List[Splayd]:
        return self.store.alive_daemons()

    # ------------------------------------------------------------------- jobs
    def submit(self, spec: JobSpec) -> Job:
        """Accept a job for deployment; a shard claims it immediately."""
        return self._next_shard("_claim_rr").submit(spec)

    def start(self, job: Job) -> List[Instance]:
        return self.shard_for(job).start(job)

    def start_instances(self, job: Job, count: int) -> List[Instance]:
        return self.shard_for(job).start_instances(job, count)

    # ---------------------------------------------------------------- control
    def kill_instance(self, instance: Instance, reason: str = "controller stop",
                      failed: bool = False) -> None:
        self.shard_for(instance.job).kill_instance(instance, reason=reason,
                                                   failed=failed)

    def kill_instances(self, instances: List[Instance],
                       reason: str = "controller stop", failed: bool = False) -> None:
        if not instances:
            return
        self.shard_for(instances[0].job).kill_instances(instances, reason=reason,
                                                        failed=failed)

    def stop(self, job: Job) -> None:
        self.shard_for(job).stop(job)

    def fail_host(self, ip: str) -> int:
        """Simulate a host failure (all its instances across all jobs die).

        Routed through the daemon's registered shard so the store's
        host-state bookkeeping and the per-shard counters stay accurate.
        """
        return self.store.shard_for_daemon(ip).fail_host(ip)

    def recover_host(self, ip: str) -> None:
        """Bring a failed host back as an empty daemon (placement sees it again)."""
        self.store.shard_for_daemon(ip).recover_host(ip)

    def daemon_ips(self) -> List[str]:
        return sorted(self.store.daemons)

    def alive_host_ips(self) -> List[str]:
        return self.store.alive_host_ips()

    def failed_host_ips(self) -> List[str]:
        return self.store.failed_host_ips()

    def host_alive(self, ip: str) -> bool:
        return self.store.host_alive(ip)

    # ------------------------------------------------------------------- logs
    def make_log_sink(self, job: Job,
                      daemon_ip: Optional[str] = None) -> Callable[[LogRecord], None]:
        """Build the remote sink daemons wire into instance loggers.

        Records route through the shard the shipping daemon is registered
        with *at ship time* (looked up per record, so attribution follows
        shard failover), into the job's bounded collector queue.
        """
        store = self.store
        collector = store.collector(job)
        shards_by_name = {shard.name: shard for shard in self.shards}

        def _collect(record: LogRecord) -> None:
            shard_name = store.daemon_shard.get(daemon_ip) if daemon_ip else None
            shard = shards_by_name.get(shard_name) if shard_name else None
            if shard is not None:
                shard.route_log(job, record)
            else:
                collector.offer(record, shard=shard_name)

        return _collect

    def job_logs(self, job: Job, level: Optional[str] = None) -> List[LogRecord]:
        records = self.store.collector(job).flush()
        if level is None:
            return list(records)
        from repro.lib.logging import LogLevel

        minimum = LogLevel.coerce(level)
        return [r for r in records if r.level >= minimum]

    # ---------------------------------------------------------------- metrics
    def metrics_for(self, job: Job):
        """Per-job metrics registry, resolved through the store (like logs)."""
        return self.store.metrics_for(job)

    def job_metrics(self, job: Job) -> Dict[str, object]:
        """Per-job observability aggregation (digest-excluded ``metrics``).

        Mirrors :meth:`job_logs`: the registry and the log collector both
        live on the shared store, so the numbers are identical whatever the
        shard count and survive shard failover.
        """
        collector = self.store.collector(job)
        collector.flush()
        return {
            "job_id": job.job_id,
            "registry": self.store.metrics_for(job).snapshot(),
            "log_collector": collector.status(),
        }

    # ------------------------------------------------------------------ stats
    def job_status(self, job: Job) -> Dict[str, object]:
        """Controller-side summary of one job (printed by scenarios).

        Deliberately excludes per-shard attribution: every value here is
        identical whatever the shard count, so it can feed report digests.
        """
        self.store.collector(job).flush()
        sockets = [i.socket.stats for i in job.instances]
        return {
            "job_id": job.job_id,
            "name": job.spec.name,
            "state": job.state.value,
            "live_instances": job.live_count,
            "instances_started": job.stats.instances_started,
            "instances_stopped": job.stats.instances_stopped,
            "instances_failed": job.stats.instances_failed,
            "churn_joins": job.stats.churn_joins,
            "churn_leaves": job.stats.churn_leaves,
            "churn_crashes": job.stats.churn_crashes,
            # Host-level churn counters appear only when host churn actually
            # happened: reports (and their digests) of script-only runs stay
            # byte-identical with the pre-testbeds era.
            **({"churn_host_failures": job.stats.churn_host_failures,
                "churn_host_recoveries": job.stats.churn_host_recoveries}
               if (job.stats.churn_host_failures
                   or job.stats.churn_host_recoveries) else {}),
            "log_records": job.stats.log_records,
            "log_records_dropped": job.stats.log_records_dropped,
            "bytes_sent": sum(s.bytes_sent for s in sockets),
            "messages_sent": sum(s.messages_sent for s in sockets),
        }

    def control_plane_status(self) -> Dict[str, object]:
        """Shard/collector-level summary (shard-count dependent — never put
        this inside a digest-relevant report section)."""
        return {
            "shards": [
                {
                    "name": shard.name,
                    "alive": shard.alive,
                    "daemons": sum(1 for name in self.store.daemon_shard.values()
                                   if name == shard.name),
                    "jobs_claimed": shard.stats.jobs_claimed,
                    "jobs_reclaimed": shard.stats.jobs_reclaimed,
                    "hosts_failed": shard.stats.hosts_failed,
                    "hosts_recovered": shard.stats.hosts_recovered,
                    "batches_sent": shard.stats.batches_sent,
                    "commands_sent": shard.stats.commands_sent,
                    "instances_started": shard.stats.instances_started,
                    "instances_killed": shard.stats.instances_killed,
                    "logs_routed": shard.stats.logs_routed,
                }
                for shard in self.shards
            ],
            "collectors": {
                # Collectors are created lazily on the first shipped record;
                # the status view materialises one per job so every job shows.
                job_id: self.store.collector(job).status()
                for job_id, job in sorted(self.store.jobs.items())
            },
            "hosts": {
                "registered": len(self.store.daemons),
                "down_now": len(self.store.failed_host_ips()),
                "failures_total": self.store.host_failures_total,
                "recoveries_total": self.store.host_recoveries_total,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Controller shards={len(self.shards)} "
                f"daemons={len(self.store.daemons)} jobs={len(self.store.jobs)}>")
