"""``splayctl``: the controller.

"The controller manages applications: it registers daemons, lets users
submit jobs, selects appropriate hosts, instructs daemons to start or stop
application instances, and collects logs and statistics."  It is also the
component the churn manager drives: leaves and crashes become
``kill_instance`` commands, joins become ``start_instances``.

The control plane itself (daemon registration, job commands) is modelled as
instantaneous — the paper's controller uses a separate reliable channel
whose latency is irrelevant to the measured application behaviour.  All
*application* traffic flows through the daemons' restricted sockets on the
simulated network.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.churn import ChurnManager
from repro.core.jobs import Job, JobSpec, JobState, Placement
from repro.lib.logging import LogRecord
from repro.net.network import Network
from repro.runtime.splayd import Instance, Splayd, SplaydError
from repro.sim.kernel import Simulator
from repro.sim.rng import substream


class ControllerError(Exception):
    """Raised on invalid job commands (unknown job, no capacity, ...)."""


class Controller:
    """The central coordination point of a deployment."""

    def __init__(self, sim: Simulator, network: Network, seed: Optional[int] = None):
        self.sim = sim
        self.network = network
        self.daemons: Dict[str, Splayd] = {}
        self.jobs: Dict[int, Job] = {}
        #: job_id -> collected log records (shipped by instance loggers)
        self.logs: Dict[int, List[LogRecord]] = {}
        self.churn_managers: Dict[int, ChurnManager] = {}
        self._rng = substream(seed if seed is not None else sim.seed, "controller")

    # ---------------------------------------------------------------- daemons
    def register_daemon(self, daemon: Splayd) -> None:
        """Register a daemon (normally done by the splayd at boot)."""
        if daemon.ip in self.daemons:
            raise ControllerError(f"daemon already registered for {daemon.ip}")
        self.daemons[daemon.ip] = daemon
        daemon.controller = self

    def alive_daemons(self) -> List[Splayd]:
        return [d for d in self.daemons.values() if d.alive]

    # ------------------------------------------------------------------- jobs
    def submit(self, spec: JobSpec) -> Job:
        """Accept a job for deployment; returns the pending job record."""
        job = Job(spec, created_at=self.sim.now, job_id=len(self.jobs) + 1)
        self.jobs[job.job_id] = job
        self.logs.setdefault(job.job_id, [])
        return job

    def start(self, job: Job) -> List[Instance]:
        """Deploy the job: select hosts and spawn every requested instance.

        If the job's spec carries a churn script, a churn manager is created
        and started alongside (its action times are relative to this call).
        """
        if job.state is not JobState.PENDING:
            raise ControllerError(f"job #{job.job_id} is {job.state.value}, not pending")
        job.state = JobState.RUNNING
        instances = self.start_instances(job, job.spec.instances)
        if len(instances) < job.spec.instances:
            # Partial deployment is a failed deployment: tear the already
            # placed instances down so nothing keeps running unmanaged.
            placed = len(instances)
            for instance in instances:
                self.kill_instance(instance, reason="deployment failed")
            job.state = JobState.FAILED
            raise ControllerError(
                f"job #{job.job_id}: only {placed}/{job.spec.instances} "
                f"instances could be placed")
        if job.spec.churn_script:
            churn = ChurnManager(self.sim, self, job, seed=self.sim.seed)
            churn.load_script(job.spec.churn_script)
            churn.start()
            self.churn_managers[job.job_id] = churn
        return instances

    def start_instances(self, job: Job, count: int) -> List[Instance]:
        """Spawn ``count`` additional instances on selected hosts.

        Host selection is uniform over alive daemons with spare capacity,
        re-evaluated per instance (so a daemon filling up drops out).  Fewer
        than ``count`` instances are returned when capacity runs out.
        """
        started: List[Instance] = []
        for _ in range(count):
            daemon = self._select_daemon(job)
            if daemon is None:
                break
            instance_id = len(job.placements)
            try:
                instance = daemon.spawn(job, instance_id)
            except SplaydError:
                continue
            placement = Placement(instance_id=instance_id, ip=daemon.ip,
                                  port=instance.address.port)
            job.record_start(instance, placement)
            started.append(instance)
        return started

    def _select_daemon(self, job: Job) -> Optional[Splayd]:
        candidates = [d for d in self.alive_daemons() if d.has_capacity()]
        if not candidates:
            return None
        # Prefer emptier daemons (balanced placement) with a random tiebreak,
        # keyed on ip so the choice is stable across runs with one seed.
        candidates.sort(key=lambda d: (len(d.instances), d.ip))
        emptiest = len(candidates[0].instances)
        pool = [d for d in candidates if len(d.instances) == emptiest]
        return self._rng.choice(pool)

    # ---------------------------------------------------------------- control
    def kill_instance(self, instance: Instance, reason: str = "controller stop",
                      failed: bool = False) -> None:
        """Stop one instance through its daemon (used directly by churn)."""
        instance.daemon.stop_instance(instance, reason=reason)
        instance.job.record_stop(instance, failed=failed)

    def stop(self, job: Job) -> None:
        """Stop every instance of a job and mark it stopped."""
        if job.state in (JobState.STOPPED, JobState.FAILED):
            return
        for instance in list(job.instances):
            self.kill_instance(instance, reason=f"job #{job.job_id} stopped")
        job.state = JobState.STOPPED

    def fail_host(self, ip: str) -> int:
        """Simulate a host failure (all its instances across all jobs die)."""
        daemon = self.daemons.get(ip)
        if daemon is None:
            raise ControllerError(f"no daemon on {ip}")
        victims = [i for i in daemon.instances]
        killed = daemon.fail()
        for instance in victims:
            instance.job.record_stop(instance, failed=True)
        return killed

    # ------------------------------------------------------------------- logs
    def make_log_sink(self, job: Job) -> Callable[[LogRecord], None]:
        """Build the remote sink daemons wire into instance loggers."""
        records = self.logs.setdefault(job.job_id, [])

        def _collect(record: LogRecord) -> None:
            record.job_id = job.job_id
            records.append(record)
            job.stats.log_records += 1

        return _collect

    def job_logs(self, job: Job, level: Optional[str] = None) -> List[LogRecord]:
        records = self.logs.get(job.job_id, [])
        if level is None:
            return list(records)
        from repro.lib.logging import LogLevel

        minimum = LogLevel.coerce(level)
        return [r for r in records if r.level >= minimum]

    # ------------------------------------------------------------------ stats
    def job_status(self, job: Job) -> Dict[str, object]:
        """Controller-side summary of one job (printed by scenarios)."""
        sockets = [i.socket.stats for i in job.instances]
        return {
            "job_id": job.job_id,
            "name": job.spec.name,
            "state": job.state.value,
            "live_instances": job.live_count,
            "instances_started": job.stats.instances_started,
            "instances_stopped": job.stats.instances_stopped,
            "instances_failed": job.stats.instances_failed,
            "churn_joins": job.stats.churn_joins,
            "churn_leaves": job.stats.churn_leaves,
            "churn_crashes": job.stats.churn_crashes,
            "log_records": job.stats.log_records,
            "bytes_sent": sum(s.bytes_sent for s in sockets),
            "messages_sent": sum(s.messages_sent for s in sockets),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Controller daemons={len(self.daemons)} jobs={len(self.jobs)}>"
