"""The SPLAY runtime: daemons (``splayd``) and the controller (``splayctl``).

This package reproduces the deployment side of the system: "splayd daemons
run on participating hosts and instantiate applications in sandboxed
processes; the controller (splayctl) manages applications, selects hosts,
deploys code, and collects logs and statistics."

* :mod:`repro.runtime.splayd` — the per-host daemon: enforces the merged
  socket policy and filesystem quotas, spawns each application instance in a
  fresh :class:`~repro.sim.events_api.AppContext`, executes the controller's
  batched command rounds (``batch_exec``), and tears instances down on
  request (controller command, churn, or host failure);
* :mod:`repro.runtime.jobstore` — the shared database tier: the
  :class:`JobStore` (jobs, placements, host registry, churn bookkeeping),
  the stateless :class:`CtlShard` front-ends that claim jobs from it, and
  the bounded per-job :class:`LogCollector` queues;
* :mod:`repro.runtime.controller` — splayctl as a facade: one store plus N
  shards behind the historical single-controller API.
"""

from repro.runtime.splayd import Host, Instance, Splayd, SplaydError, SplaydLimits
from repro.runtime.jobstore import ControllerError, CtlShard, JobStore, LogCollector, ShardStats
from repro.runtime.controller import Controller

__all__ = [
    "Controller",
    "ControllerError",
    "CtlShard",
    "Host",
    "Instance",
    "JobStore",
    "LogCollector",
    "ShardStats",
    "Splayd",
    "SplaydError",
    "SplaydLimits",
]
