"""The SPLAY runtime: daemons (``splayd``) and the controller (``splayctl``).

This package reproduces the deployment side of the system: "splayd daemons
run on participating hosts and instantiate applications in sandboxed
processes; the controller (splayctl) manages applications, selects hosts,
deploys code, and collects logs and statistics."

* :mod:`repro.runtime.splayd` — the per-host daemon: enforces the merged
  socket policy and filesystem quotas, spawns each application instance in a
  fresh :class:`~repro.sim.events_api.AppContext`, and tears instances down
  on request (controller command, churn, or host failure);
* :mod:`repro.runtime.controller` — splayctl: daemon registry, job
  submission, host selection, start/stop/churn of jobs, and the log
  collector.
"""

from repro.runtime.splayd import Host, Instance, Splayd, SplaydError, SplaydLimits
from repro.runtime.controller import Controller

__all__ = [
    "Controller",
    "Host",
    "Instance",
    "Splayd",
    "SplaydError",
    "SplaydLimits",
]
