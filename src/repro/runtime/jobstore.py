"""The shared job store, controller shards and per-job log collectors.

Paper counterpart: the *splayctl* back end.  "The controller is composed of
several cooperating processes" sharing one database, which is how the
testbed keeps up with hundreds of daemons and heavy log traffic.  This
module reproduces that shape:

* :class:`JobStore` — the shared database: jobs, placements, the host
  (daemon) registry, churn bookkeeping, shard claims and the placement RNG.
  Every piece of state that must look the same no matter which front-end
  serves a request lives here.
* :class:`CtlShard` — one stateless controller front-end.  Daemons register
  through a shard, shards claim jobs from the store, and every daemon
  command a shard issues is *batched*: one :meth:`Splayd.batch_exec` round
  per daemon per control action instead of per-instance calls.
* :class:`LogCollector` — one bounded-queue collector per job.  Instance
  loggers ship records into the queue (drop-oldest when full, with a
  counted drop stat — the paper's log throttling) and a drain event moves
  them into the permanent record list.

Determinism contract: nothing in this module draws randomness or schedules
simulator events in a way that depends on the number of shards.  Placement
uses the store's single RNG substream, batching is a pure regrouping of a
deterministic placement plan, and log-drain events depend only on enqueue
order.  A deployment therefore produces byte-identical workload reports for
1..N shards (asserted by ``tests/test_determinism.py``).

Public entry points: :class:`JobStore`, :class:`CtlShard`,
:class:`LogCollector`, :class:`ShardStats` and :class:`ControllerError`
(re-exported by :mod:`repro.runtime.controller`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.churn import ChurnManager, parse_churn_script, trace_churn_actions
from repro.core.jobs import Job, JobSpec, JobState, Placement
from repro.lib.logging import LogRecord
from repro.net.network import Network
from repro.runtime.splayd import Instance, Splayd, SplaydError
from repro.sim.kernel import Simulator
from repro.sim.rng import substream


class ControllerError(Exception):
    """Raised on invalid job commands (unknown job, no capacity, ...)."""


# ------------------------------------------------------------- log collection
class LogCollector:
    """Per-job log collector process with a bounded ingress queue.

    Records shipped by daemons land in ``queue``; when the queue is full the
    *oldest* queued record is dropped (and counted — both here and on
    ``job.stats.log_records_dropped``).  A drain event scheduled
    ``drain_interval`` after the first enqueue moves everything queued into
    ``records``, the permanent per-job list the controller serves
    ``job_logs`` from; :meth:`flush` drains synchronously (used at report
    time so counts never depend on where the simulation happened to stop).
    """

    def __init__(self, sim: Simulator, job: Job, max_queue: int = 4096,
                 drain_interval: float = 0.25):
        if max_queue < 1:
            raise ValueError("log collector queue must hold at least one record")
        self.sim = sim
        self.job = job
        self.max_queue = max_queue
        self.drain_interval = drain_interval
        #: drained (permanently collected) records
        self.records: List[LogRecord] = []
        #: bounded ingress queue of (record, shard name) pairs
        self.queue: Deque[Tuple[LogRecord, Optional[str]]] = deque()
        self.dropped = 0
        self.collected = 0
        self.queue_peak = 0
        self._drain_scheduled = False

    def offer(self, record: LogRecord, shard: Optional[str] = None) -> bool:
        """Enqueue one record; returns ``False`` if an old record was dropped."""
        record.job_id = self.job.job_id
        evicted = False
        if len(self.queue) >= self.max_queue:
            self.queue.popleft()
            self.dropped += 1
            self.job.stats.log_records_dropped += 1
            evicted = True
        self.queue.append((record, shard))
        if len(self.queue) > self.queue_peak:
            self.queue_peak = len(self.queue)
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.sim.schedule(self.drain_interval, self._drain)
        return not evicted

    def _drain(self) -> None:
        self._drain_scheduled = False
        self._drain_queue()

    def _drain_queue(self) -> None:
        while self.queue:
            record, shard = self.queue.popleft()
            self.records.append(record)
            self.collected += 1
            self.job.stats.log_records += 1
            if shard is not None:
                by_shard = self.job.stats.logs_by_shard
                by_shard[shard] = by_shard.get(shard, 0) + 1

    def flush(self) -> List[LogRecord]:
        """Drain synchronously and return the collected record list."""
        self._drain_queue()
        return self.records

    @property
    def pending(self) -> int:
        return len(self.queue)

    def status(self) -> Dict[str, int]:
        return {"collected": self.collected, "dropped": self.dropped,
                "pending": len(self.queue), "queue_peak": self.queue_peak,
                "max_queue": self.max_queue}


# ------------------------------------------------------------------ the store
class JobStore:
    """Shared controller state: the paper's database behind splayctl.

    Shards coordinate exclusively through this object — the daemon registry,
    job table, per-job log collectors, churn managers, shard claims and the
    placement RNG all live here, so any shard can serve any job and a failed
    shard's work can be reclaimed without losing bookkeeping.
    """

    def __init__(self, sim: Simulator, network: Network, seed: Optional[int] = None,
                 log_queue_depth: int = 4096, log_drain_interval: float = 0.25,
                 caches: bool = True):
        self.sim = sim
        self.network = network
        self.seed = seed if seed is not None else sim.seed
        self.daemons: Dict[str, Splayd] = {}
        #: daemon ip -> name of the shard it is currently registered with
        self.daemon_shard: Dict[str, str] = {}
        #: daemon ip -> "up"/"down" as last driven by the control plane
        #: (hosts the control plane never touched are implicitly "up")
        self.host_state: Dict[str, str] = {}
        self.host_failures_total = 0
        self.host_recoveries_total = 0
        self.jobs: Dict[int, Job] = {}
        self.collectors: Dict[int, LogCollector] = {}
        #: per-job metrics registries (repro.obs) — created lazily like the
        #: log collectors, and only when observability is enabled, so jobs
        #: that never record a metric pay nothing
        self.metrics: Dict[int, object] = {}
        self.churn_managers: Dict[int, ChurnManager] = {}
        self.shards: List["CtlShard"] = []
        #: job_id -> shard currently responsible for the job
        self.claims: Dict[int, "CtlShard"] = {}
        self.log_queue_depth = log_queue_depth
        self.log_drain_interval = log_drain_interval
        self._rng = substream(self.seed, "controller")
        # Memoized host views.  The daemon registry and per-daemon liveness
        # change only on registration and host fail/recover — a handful of
        # control-plane events per run — while the views are consulted on
        # every placement, churn action and status call; recomputing them
        # per call is an O(hosts) (or O(hosts log hosts)) cost per event at
        # 10k nodes.  ``caches=False`` is the kill switch that restores the
        # from-scratch recompute everywhere (digest-parity oracle; see
        # tests/test_store_caches.py), and the sanitizer cross-checks the
        # cached views after every control action.
        self.caches_enabled = caches
        self._alive_daemons_cache: Optional[List[Splayd]] = None
        self._alive_ips_cache: Optional[List[str]] = None
        self._failed_ips_cache: Optional[List[str]] = None

    # ---------------------------------------------------------------- shards
    def add_shard(self, shard: "CtlShard") -> None:
        self.shards.append(shard)

    def alive_shards(self) -> List["CtlShard"]:
        return [s for s in self.shards if s.alive]

    def claim(self, job: Job, shard: "CtlShard") -> None:
        self.claims[job.job_id] = shard
        shard.stats.jobs_claimed += 1
        job.stats.claimed_by.append(shard.name)

    def claimant(self, job: Job) -> "CtlShard":
        """The shard responsible for ``job``, reclaiming if the owner died."""
        shard = self.claims.get(job.job_id)
        if shard is not None and shard.alive:
            return shard
        return self._reclaim(job)

    def _reclaim(self, job: Job) -> "CtlShard":
        alive = self.alive_shards()
        if not alive:
            raise ControllerError(
                f"job #{job.job_id}: no alive controller shard left to claim it")
        shard = alive[0]  # deterministic: lowest-index survivor
        self.claims[job.job_id] = shard
        shard.stats.jobs_reclaimed += 1
        job.stats.claimed_by.append(shard.name)
        return shard

    def on_shard_failed(self, shard: "CtlShard") -> None:
        """Move a dead shard's daemons and claims to the survivors.

        Daemons are re-registered round-robin over the alive shards (in
        registration order, so the outcome is deterministic); claimed jobs
        are reclaimed lazily by :meth:`claimant` — their stats, placements
        and log collectors live on the store/job and survive untouched.
        """
        alive = self.alive_shards()
        if not alive:
            return
        orphans = [ip for ip, name in self.daemon_shard.items() if name == shard.name]
        for index, ip in enumerate(orphans):
            heir = alive[index % len(alive)]
            self.daemon_shard[ip] = heir.name
            heir.stats.daemons_registered += 1

    # ---------------------------------------------------------------- daemons
    def add_daemon(self, daemon: Splayd, shard: "CtlShard") -> None:
        if daemon.ip in self.daemons:
            raise ControllerError(f"daemon already registered for {daemon.ip}")
        self.daemons[daemon.ip] = daemon
        self.daemon_shard[daemon.ip] = shard.name
        daemon.store = self
        self._note_host_state_changed()
        shard.stats.daemons_registered += 1

    def _note_host_state_changed(self) -> None:
        """Drop the memoized host views (registration, host fail/recover)."""
        self._alive_daemons_cache = None
        self._alive_ips_cache = None
        self._failed_ips_cache = None

    def alive_daemons(self) -> List[Splayd]:
        """Alive daemons in registration order (memoized; do not mutate)."""
        if not self.caches_enabled:
            return [d for d in self.daemons.values() if d.alive]
        cache = self._alive_daemons_cache
        if cache is None:
            cache = [d for d in self.daemons.values() if d.alive]
            self._alive_daemons_cache = cache
        return cache

    def alive_host_ips(self) -> List[str]:
        """Sorted alive-host ips (memoized; do not mutate)."""
        if not self.caches_enabled:
            return sorted(ip for ip, daemon in self.daemons.items() if daemon.alive)
        cache = self._alive_ips_cache
        if cache is None:
            cache = sorted(ip for ip, daemon in self.daemons.items() if daemon.alive)
            self._alive_ips_cache = cache
        return cache

    def failed_host_ips(self) -> List[str]:
        """Sorted failed-host ips (memoized; do not mutate)."""
        if not self.caches_enabled:
            return sorted(ip for ip, daemon in self.daemons.items()
                          if not daemon.alive)
        cache = self._failed_ips_cache
        if cache is None:
            cache = sorted(ip for ip, daemon in self.daemons.items()
                           if not daemon.alive)
            self._failed_ips_cache = cache
        return cache

    def host_alive(self, ip: str) -> bool:
        daemon = self.daemons.get(ip)
        return daemon is not None and daemon.alive

    def shard_for_daemon(self, ip: str) -> "CtlShard":
        """The alive shard a daemon's commands travel through.

        Normally the shard the daemon is registered with; if that shard died
        (and rehoming has not caught this daemon yet) the lowest-index
        survivor serves, exactly like job reclaiming.
        """
        name = self.daemon_shard.get(ip)
        for shard in self.shards:
            if shard.name == name and shard.alive:
                return shard
        alive = self.alive_shards()
        if not alive:
            raise ControllerError("no alive controller shard")
        return alive[0]

    # ------------------------------------------------------------------- jobs
    def create_job(self, spec: JobSpec) -> Job:
        # The job's log collector (queue + record list) is created by
        # :meth:`collector` on the first shipped record, not here — jobs that
        # never log pay nothing.
        job = Job(spec, created_at=self.sim.now, job_id=len(self.jobs) + 1)
        self.jobs[job.job_id] = job
        return job

    def collector(self, job: Job) -> LogCollector:
        existing = self.collectors.get(job.job_id)
        if existing is None:
            existing = LogCollector(self.sim, job, max_queue=self.log_queue_depth,
                                    drain_interval=self.log_drain_interval)
            self.collectors[job.job_id] = existing
        return existing

    def metrics_for(self, job: Job):
        """The job's metrics registry — same store-resident path as logs.

        Instance-side emitters (the RPC layer, workload apps) and the
        report aggregation both resolve the registry through the store, so
        per-job measurements survive shard failover exactly like log
        records do.  Timestamps come from the simulated clock.
        """
        existing = self.metrics.get(job.job_id)
        if existing is None:
            from repro.obs.metrics import MetricsRegistry
            sim = self.sim
            existing = MetricsRegistry(clock=lambda: sim.now)
            self.metrics[job.job_id] = existing
        return existing

    # -------------------------------------------------------------- placement
    def plan_placements(self, job: Job, count: int) -> List[Tuple[Splayd, int]]:
        """Select hosts for ``count`` new instances (no side effects yet).

        Selection is uniform over alive daemons with spare capacity,
        re-evaluated per instance with the instances planned so far counted
        against each daemon's free slots — the exact sequence the monolithic
        controller produced by spawning one instance at a time, but without
        touching the daemons, so the plan can then be executed in batches.
        Fewer than ``count`` placements are returned when capacity runs out.
        Instance ids come from the job's never-reused allocator, so a spawn
        that later fails leaves a gap instead of letting a future plan hand
        a live instance's id to a second node.
        """
        if self.caches_enabled:
            return self._plan_placements_bucketed(job, count)
        plan: List[Tuple[Splayd, int]] = []
        pending: Dict[str, int] = {}
        for _ in range(count):
            daemon = self._select_daemon(pending)
            if daemon is None:
                break
            plan.append((daemon, job.allocate_instance_id()))
            pending[daemon.ip] = pending.get(daemon.ip, 0) + 1
        return plan

    def _plan_placements_bucketed(self, job: Job, count: int) -> List[Tuple[Splayd, int]]:
        """Load-bucketed planner: same plan as :meth:`_select_daemon`, not O(N) per pick.

        The naive planner rebuilds and re-sorts the full candidate list per
        instance — O(N·H log H) for a whole-deployment plan, the dominant
        deploy-phase cost at 10k nodes.  Bucketing daemons by load turns each
        pick into O(1) amortized: draw from the minimum-load bucket, promote
        the chosen daemon to the next one.  No simulator event runs between
        picks, so daemon liveness and true loads cannot shift mid-plan.

        Byte-identical to the naive path by construction: the min-load bucket
        ip-sorted *is* the naive pool, and ``randrange(len(pool))`` consumes
        the RNG exactly like ``choice(pool)`` (both make one ``_randbelow``
        call) — asserted against the naive plan in tests/test_store_caches.py.
        """
        plan: List[Tuple[Splayd, int]] = []
        buckets: Dict[int, List[Splayd]] = {}
        available = 0
        for daemon in self.alive_daemons():
            load = len(daemon.instances)
            cap = daemon.limits.max_instances
            if cap is not None and load >= cap:
                continue
            buckets.setdefault(load, []).append(daemon)
            available += 1
        if not buckets:
            return plan
        # Buckets are ip-sorted lazily, the first time they become the
        # minimum: promotions only ever append *above* the active bucket,
        # so each bucket is sorted at most once per level pass.
        dirty = set(buckets)
        load = min(buckets)
        rng = self._rng
        for _ in range(count):
            if not available:
                break
            while load not in buckets:
                load += 1
            pool = buckets[load]
            if load in dirty:
                pool.sort(key=_daemon_ip)
                dirty.discard(load)
            daemon = pool.pop(rng.randrange(len(pool)))
            if not pool:
                del buckets[load]
            available -= 1
            plan.append((daemon, job.allocate_instance_id()))
            new_load = load + 1
            cap = daemon.limits.max_instances
            if cap is None or new_load < cap:
                buckets.setdefault(new_load, []).append(daemon)
                dirty.add(new_load)
                available += 1
        return plan

    def _select_daemon(self, pending: Dict[str, int]) -> Optional[Splayd]:
        candidates = []
        for daemon in self.alive_daemons():
            load = len(daemon.instances) + pending.get(daemon.ip, 0)
            if daemon.limits.max_instances is not None and \
                    load >= daemon.limits.max_instances:
                continue
            candidates.append((load, daemon))
        if not candidates:
            return None
        # Prefer emptier daemons (balanced placement) with a random tiebreak,
        # keyed on ip so the choice is stable across runs with one seed.
        candidates.sort(key=lambda entry: (entry[0], entry[1].ip))
        emptiest = candidates[0][0]
        pool = [daemon for load, daemon in candidates if load == emptiest]
        return self._rng.choice(pool)


def _daemon_ip(daemon: Splayd) -> str:
    """Sort key for placement pools (module-level: no per-sort closure)."""
    return daemon.ip


@dataclass
class ShardStats:
    """Per-shard control-plane counters (reported, never digest-relevant)."""

    daemons_registered: int = 0
    jobs_claimed: int = 0
    jobs_reclaimed: int = 0
    hosts_failed: int = 0
    hosts_recovered: int = 0
    batches_sent: int = 0
    commands_sent: int = 0
    instances_started: int = 0
    instances_killed: int = 0
    logs_routed: int = 0


# ------------------------------------------------------------------ the shard
class CtlShard:
    """One stateless controller front-end (one splayctl process).

    A shard holds no job state of its own: everything it needs to serve a
    request comes from (and goes back to) the shared :class:`JobStore`, so
    front-ends can be added, load-balanced or lost without the deployment
    noticing.  Commands to daemons are *batched*: each control action sends
    one ``batch_exec`` round per affected daemon instead of one call per
    instance.
    """

    def __init__(self, store: JobStore, index: int):
        self.store = store
        self.index = index
        self.name = f"ctl{index}"
        self.alive = True
        self.stats = ShardStats()
        store.add_shard(self)

    # ---------------------------------------------------------------- daemons
    def register_daemon(self, daemon: Splayd, controller=None) -> None:
        """Register a daemon with this shard (normally done by the splayd).

        ``controller`` is the object stored on the daemon for log-sink
        wiring — the facade when deployed through one, else this shard.
        """
        self.store.add_daemon(daemon, self)
        daemon.controller = controller if controller is not None else self

    # ------------------------------------------------------------------- jobs
    def submit(self, spec: JobSpec) -> Job:
        """Accept a job for deployment and claim it; returns the job record."""
        job = self.store.create_job(spec)
        self.store.claim(job, self)
        return job

    def start(self, job: Job) -> List[Instance]:
        """Deploy the job: select hosts and spawn every requested instance.

        If the job's spec carries a churn script, a churn manager is created
        and started alongside (its action times are relative to this call).
        """
        if job.state is not JobState.PENDING:
            raise ControllerError(f"job #{job.job_id} is {job.state.value}, not pending")
        job.state = JobState.RUNNING
        instances = self.start_instances(job, job.spec.instances)
        if len(instances) < job.spec.instances:
            # Partial deployment is a failed deployment: tear the already
            # placed instances down so nothing keeps running unmanaged.
            placed = len(instances)
            self.kill_instances(instances, reason="deployment failed")
            job.state = JobState.FAILED
            raise ControllerError(
                f"job #{job.job_id}: only {placed}/{job.spec.instances} "
                f"instances could be placed")
        if job.spec.churn_script or job.spec.churn_trace:
            sim = self.store.sim
            churn = ChurnManager(sim, _churn_driver(self.store), job, seed=sim.seed)
            actions = []
            if job.spec.churn_script:
                actions.extend(parse_churn_script(job.spec.churn_script))
            if job.spec.churn_trace:
                # Availability traces replay as host-level fail/recover
                # actions, merged with (and replayed alongside) any script.
                actions.extend(trace_churn_actions(job.spec.churn_trace))
            churn.load_actions(actions)
            churn.start()
            self.store.churn_managers[job.job_id] = churn
        return instances

    def start_instances(self, job: Job, count: int) -> List[Instance]:
        """Spawn ``count`` additional instances, one command batch per daemon.

        The store plans the placements (deterministically, independent of
        the shard count), then this shard groups the plan by daemon and
        sends one ``batch_exec`` per daemon.  Fewer than ``count`` instances
        are returned when capacity runs out.
        """
        plan = self.store.plan_placements(job, count)
        grouped: Dict[str, Tuple[Splayd, List[int]]] = {}
        for daemon, instance_id in plan:
            grouped.setdefault(daemon.ip, (daemon, []))[1].append(instance_id)
        started: List[Instance] = []
        for daemon, instance_ids in grouped.values():
            commands = [("spawn", job, instance_id) for instance_id in instance_ids]
            error: Optional[Exception] = None
            for outcome in self._dispatch(daemon, commands):
                if isinstance(outcome, Instance):
                    placement = Placement(instance_id=outcome.instance_id,
                                          ip=daemon.ip,
                                          port=outcome.address.port)
                    job.record_start(outcome, placement)
                    started.append(outcome)
                    self.stats.instances_started += 1
                elif (error is None and isinstance(outcome, Exception)
                      and not isinstance(outcome, SplaydError)):
                    # An application bug (e.g. a raising factory), not a
                    # placement failure: surface it — but only after every
                    # spawn that *did* succeed is recorded on the job, so
                    # nothing keeps running untracked.
                    error = outcome
            if error is not None:
                raise error
        self._check_caches()
        return started

    def _check_caches(self) -> None:
        """Sanitizer cross-check of the store's memoized views (if installed)."""
        san = getattr(self.store.sim, "_san", None)
        if san is not None:
            san.check_store_caches(self.store)

    def _dispatch(self, daemon: Splayd, commands: List[tuple]) -> List[object]:
        """One batched command round to one daemon (+ stats)."""
        self.stats.batches_sent += 1
        self.stats.commands_sent += len(commands)
        return daemon.batch_exec(commands)

    # ---------------------------------------------------------------- control
    def kill_instances(self, instances: List[Instance], reason: str = "controller stop",
                       failed: bool = False) -> None:
        """Stop several instances, batching the commands per daemon."""
        grouped: Dict[str, Tuple[Splayd, List[Instance]]] = {}
        for instance in instances:
            grouped.setdefault(instance.daemon.ip,
                               (instance.daemon, []))[1].append(instance)
        for daemon, victims in grouped.values():
            commands = [("kill", instance, reason) for instance in victims]
            outcomes = self._dispatch(daemon, commands)
            error: Optional[Exception] = None
            for instance, outcome in zip(victims, outcomes):
                if (isinstance(outcome, Exception)
                        and not isinstance(outcome, SplaydError)):
                    error = error or outcome
                    continue
                instance.job.record_stop(instance, failed=failed)
                self.stats.instances_killed += 1
            if error is not None:
                raise error
        self._check_caches()

    def kill_instance(self, instance: Instance, reason: str = "controller stop",
                      failed: bool = False) -> None:
        """Stop one instance through its daemon (used directly by churn)."""
        self.kill_instances([instance], reason=reason, failed=failed)

    def stop(self, job: Job) -> None:
        """Stop every instance of a job and mark it stopped."""
        if job.state in (JobState.STOPPED, JobState.FAILED):
            return
        self.kill_instances(list(job.instances), reason=f"job #{job.job_id} stopped")
        job.state = JobState.STOPPED

    # ------------------------------------------------------------ host churn
    def fail_host(self, ip: str) -> int:
        """Take a whole daemon down: every co-located instance (of every job)
        dies, in-flight transfers are cancelled, and the store records the
        host as control-plane-down.  Returns the number of instances killed."""
        daemon = self.store.daemons.get(ip)
        if daemon is None:
            raise ControllerError(f"no daemon on {ip}")
        victims = list(daemon.instances)
        killed = daemon.fail()
        for instance in victims:
            instance.job.record_stop(instance, failed=True)
        self.store.host_state[ip] = "down"
        self.store.host_failures_total += 1
        self.stats.hosts_failed += 1
        self._check_caches()
        return killed

    def recover_host(self, ip: str) -> None:
        """Bring a failed daemon back (empty, like a freshly booted splayd).

        The daemon keeps its registration (and shard assignment): placement
        sees it again immediately, so later joins can land on it.
        """
        daemon = self.store.daemons.get(ip)
        if daemon is None:
            raise ControllerError(f"no daemon on {ip}")
        if daemon.alive:
            return
        daemon.recover()
        self.store.host_state[ip] = "up"
        self.store.host_recoveries_total += 1
        self.stats.hosts_recovered += 1
        self._check_caches()

    # ---------------------------------------------------------------- failure
    def fail(self) -> None:
        """Take this shard down; the store rehomes its daemons and claims."""
        if not self.alive:
            return
        self.alive = False
        self.store.on_shard_failed(self)

    def recover(self) -> None:
        """Bring the shard back as an empty front-end (no claims, no daemons)."""
        self.alive = True

    # ---------------------------------------------------------------- metrics
    def metrics_for(self, job: Job):
        """Per-job metrics registry (store-resident, like the log collector)."""
        return self.store.metrics_for(job)

    # ------------------------------------------------------------------- logs
    def route_log(self, job: Job, record: LogRecord) -> None:
        """Ship one record into the job's bounded collector, attributed here."""
        self.stats.logs_routed += 1
        self.store.collector(job).offer(record, shard=self.name)

    def make_log_sink(self, job: Job,
                      daemon_ip: Optional[str] = None) -> Callable[[LogRecord], None]:
        """Log sink for daemons registered directly with this shard
        (deployments built through the facade use its failover-aware sink)."""
        return lambda record: self.route_log(job, record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"<CtlShard {self.name} {state} claimed={self.stats.jobs_claimed}>"


class _churn_driver:
    """The controller handle given to churn managers: routes every command
    through the job's *current* claiming shard, so churn keeps working when
    the shard that started the job dies mid-run."""

    def __init__(self, store: JobStore):
        self.store = store

    def kill_instances(self, instances: List[Instance], reason: str = "churn",
                       failed: bool = False) -> None:
        if not instances:
            return
        self.store.claimant(instances[0].job).kill_instances(
            instances, reason=reason, failed=failed)

    def kill_instance(self, instance: Instance, reason: str = "churn",
                      failed: bool = False) -> None:
        self.kill_instances([instance], reason=reason, failed=failed)

    def start_instances(self, job: Job, count: int) -> List[Instance]:
        return self.store.claimant(job).start_instances(job, count)

    def stop(self, job: Job) -> None:
        self.store.claimant(job).stop(job)

    # Host-level churn routes through the daemon's *current* shard (which
    # follows shard failover), and the host views come from the store.
    def fail_host(self, ip: str) -> int:
        return self.store.shard_for_daemon(ip).fail_host(ip)

    def recover_host(self, ip: str) -> None:
        self.store.shard_for_daemon(ip).recover_host(ip)

    def daemon_ips(self) -> List[str]:
        return sorted(self.store.daemons)

    def alive_host_ips(self) -> List[str]:
        return self.store.alive_host_ips()

    def failed_host_ips(self) -> List[str]:
        return self.store.failed_host_ips()

    def host_alive(self, ip: str) -> bool:
        return self.store.host_alive(ip)
