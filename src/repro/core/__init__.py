"""Controller-side core data structures.

This package holds the pieces shared between the controller (``splayctl``)
and the daemons (``splayd``) that are not tied to the simulation substrate:

* :mod:`repro.core.blacklist` — IP/mask matching used by the socket policy;
* :mod:`repro.core.jobs` — job descriptors, placement records and job state;
* :mod:`repro.core.churn` — the churn script language, synthetic churn
  generation and the churn manager replaying scripts against a running job.
"""

from repro.core.blacklist import Blacklist
from repro.core.jobs import Job, JobSpec, JobState, Placement
from repro.core.churn import ChurnAction, ChurnManager, parse_churn_script, synthetic_churn_script

__all__ = [
    "Blacklist",
    "ChurnAction",
    "ChurnManager",
    "Job",
    "JobSpec",
    "JobState",
    "Placement",
    "parse_churn_script",
    "synthetic_churn_script",
]
