"""Address blacklists (part of the restricted socket's security layer).

The security layer of the wrapped socket library can "limit ... the addresses
that an application can or cannot connect to".  The administrator and the
controller both express such limits as lists of IPs or CIDR masks; the
stricter union of the two applies to every instance on a daemon.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple


def _ip_to_int(ip: str) -> Optional[int]:
    """Parse a dotted-quad IPv4 address into an int, or ``None`` if not IPv4."""
    parts = ip.split(".")
    if len(parts) != 4:
        return None
    value = 0
    for part in parts:
        if not part.isdigit():
            return None
        octet = int(part)
        if octet > 255:
            return None
        value = (value << 8) | octet
    return value


class Blacklist:
    """A set of forbidden addresses: exact IPs, CIDR masks, or hostnames.

    Entries may be:

    * a dotted-quad IPv4 address (``"10.0.0.5"``),
    * a CIDR mask (``"10.0.0.0/24"``),
    * ``"*"`` — forbid everything (used to cut an instance off entirely),
    * any other string — matched exactly against the destination name
      (the simulator allows symbolic host names).
    """

    def __init__(self, entries: Iterable[str] = ()):
        self._exact: set[str] = set()
        self._masks: List[Tuple[int, int]] = []  # (network, mask) pairs
        self._all = False
        for entry in entries:
            self.add(entry)

    # ------------------------------------------------------------------- edit
    def add(self, entry: str) -> None:
        """Add one entry (IP, CIDR mask, hostname or ``"*"``)."""
        entry = entry.strip()
        if not entry:
            return
        if entry == "*":
            self._all = True
            return
        if "/" in entry:
            base, _, prefix_text = entry.partition("/")
            address = _ip_to_int(base)
            prefix = int(prefix_text)
            if address is None or not 0 <= prefix <= 32:
                raise ValueError(f"malformed CIDR entry: {entry!r}")
            mask = 0 if prefix == 0 else (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF
            self._masks.append((address & mask, mask))
            return
        self._exact.add(entry)

    # ---------------------------------------------------------------- queries
    def is_forbidden(self, ip: str) -> bool:
        """True if ``ip`` matches any entry."""
        if self._all:
            return True
        if ip in self._exact:
            return True
        if self._masks:
            value = _ip_to_int(ip)
            if value is not None:
                for network, mask in self._masks:
                    if value & mask == network:
                        return True
        return False

    def merged_with(self, other: Optional["Blacklist"]) -> "Blacklist":
        """Union of the two blacklists (stricter wins, per the policy merge)."""
        merged = Blacklist()
        merged._all = self._all or (other is not None and other._all)
        merged._exact = set(self._exact)
        merged._masks = list(self._masks)
        if other is not None:
            merged._exact |= other._exact
            merged._masks.extend(other._masks)
        return merged

    def __len__(self) -> int:
        return len(self._exact) + len(self._masks) + (1 if self._all else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._all:
            return "<Blacklist *>"
        return f"<Blacklist exact={sorted(self._exact)} masks={len(self._masks)}>"
