"""Job descriptors and placement records (the controller's unit of work).

A *job* is what a user submits to the controller: an application (here a
Python factory instead of Lua code), the number of instances to deploy, and
the restrictions the daemons must enforce (socket policy, disk quota, log
budget).  The controller selects hosts, asks their daemons to spawn
instances, and tracks the resulting placements; the churn manager then
drives instance kills and joins against the same job record.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (lib -> core -> lib)
    from repro.lib.sbsocket import SocketPolicy

_job_ids = itertools.count(1)


class JobState(enum.Enum):
    """Lifecycle of a job on the controller."""

    PENDING = "pending"
    RUNNING = "running"
    STOPPED = "stopped"
    FAILED = "failed"


@dataclass
class JobSpec:
    """Everything the user supplies when submitting a job.

    ``app_factory`` is called once per instance with the runtime
    :class:`~repro.runtime.splayd.Instance` handle (the equivalent of the
    sandboxed Lua state receiving the ``job`` table); whatever it returns is
    stored as the instance's application object.
    """

    name: str
    app_factory: Callable[[Any], Any]
    instances: int = 1
    base_port: int = 20000
    socket_policy: Optional["SocketPolicy"] = None
    fs_max_bytes: Optional[int] = None
    fs_max_files: Optional[int] = None
    log_level: str = "INFO"
    log_max_bytes: Optional[int] = None
    churn_script: Optional[str] = None
    #: Overnet-style availability trace text (``host_id start end`` lines)
    #: replayed as host-level fail/recover churn alongside ``churn_script``
    churn_trace: Optional[str] = None
    #: free-form per-job options, exposed to instances as ``instance.options``
    options: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.instances < 1:
            raise ValueError("a job needs at least one instance")
        if not callable(self.app_factory):
            raise TypeError("app_factory must be callable")
        if not 1 <= self.base_port <= 65535:
            raise ValueError(f"base port out of range: {self.base_port}")


@dataclass(frozen=True, slots=True)
class Placement:
    """One instance's location, as recorded by the controller."""

    instance_id: int
    ip: str
    port: int

    def __str__(self) -> str:
        return f"i{self.instance_id}@{self.ip}:{self.port}"


@dataclass(slots=True)
class JobStats:
    """Aggregated per-job counters maintained by the control plane.

    All fields live on the job (the shared store's record), never on a
    controller shard, so they survive a shard failing and another shard
    claiming the job mid-run — including the log-drop count and the
    per-shard attribution maps.
    """

    instances_started: int = 0
    instances_stopped: int = 0
    instances_failed: int = 0
    churn_joins: int = 0
    #: graceful departures only ("leave" and the kill half of "replace")
    churn_leaves: int = 0
    #: abrupt "crash" victims — kept separate so benchmarks report churn
    #: composition accurately
    churn_crashes: int = 0
    #: whole-host (daemon) failures/recoveries driven by churn — a third
    #: population, distinct from both instance-level counters above: one
    #: host failure kills every co-located instance at once
    churn_host_failures: int = 0
    churn_host_recoveries: int = 0
    log_records: int = 0
    #: records evicted from the job's bounded collector queue (drop-oldest)
    log_records_dropped: int = 0
    #: collected records per controller shard (accumulates across failovers)
    logs_by_shard: Dict[str, int] = field(default_factory=dict)
    #: every shard that ever claimed this job, in claim order
    claimed_by: List[str] = field(default_factory=list)


class Job:
    """The controller-side record of one submitted job.

    ``job_id`` should be supplied by the controller (its per-deployment
    counter) so that id-derived randomness is reproducible; the process-wide
    fallback counter only serves standalone/test use.
    """

    def __init__(self, spec: JobSpec, created_at: float = 0.0,
                 job_id: Optional[int] = None):
        spec.validate()
        self.job_id = job_id if job_id is not None else next(_job_ids)
        self.spec = spec
        self.state = JobState.PENDING
        self.created_at = created_at
        self.stats = JobStats()
        #: live runtime instances (handles owned by the daemons)
        self.instances: List[Any] = []
        #: every placement ever made, live or dead (for log attribution)
        self.placements: List[Placement] = []
        #: shared mutable state visible to all instances (e.g. bootstrap ref)
        self.shared: Dict[str, Any] = {}
        self._next_instance_id = 0
        # Memoized id-sorted live-instance list.  Every death path funnels
        # through record_stop (controller kills) or the daemon's reap hook
        # (self-exits, host failures), both of which call _invalidate_live;
        # the sanitizer cross-checks the cache against a from-scratch
        # recompute after every control action (check_store_caches).
        self._live_cache: Optional[List[Any]] = None

    # ------------------------------------------------------------- bookkeeping
    def allocate_instance_id(self) -> int:
        """Hand out a never-reused instance id.

        Ids are consumed at placement-planning time and *not* returned on a
        failed spawn: a gap in ``placements`` is harmless, a reused id is
        not — applications derive their overlay identity from
        ``(job_id, instance_id)``, so a collision would put two live nodes
        at the same overlay position.
        """
        value = self._next_instance_id
        self._next_instance_id += 1
        return value

    def record_start(self, instance: Any, placement: Placement) -> None:
        self.instances.append(instance)
        self.placements.append(placement)
        # Keep the allocator ahead of manually recorded placements too.
        self._next_instance_id = max(self._next_instance_id,
                                     placement.instance_id + 1)
        self.stats.instances_started += 1
        self._live_cache = None

    def record_stop(self, instance: Any, failed: bool = False) -> None:
        if instance in self.instances:
            self.instances.remove(instance)
        if failed:
            self.stats.instances_failed += 1
        else:
            self.stats.instances_stopped += 1
        self._live_cache = None

    def _invalidate_live(self) -> None:
        """Drop the memoized live view (called by every instance-death path)."""
        self._live_cache = None

    # ---------------------------------------------------------------- queries
    def live_instances(self) -> List[Any]:
        """Instances whose application context is still alive, in id order.

        The list is memoized between liveness changes — callers iterate it
        on every lookup/control action, so rebuilding per call is an O(N)
        cost per event at scale.  Callers must not mutate the returned list.
        """
        live = self._live_cache
        if live is None:
            live = [i for i in self.instances if i.alive]
            live.sort(key=lambda i: i.instance_id)
            self._live_cache = live
        return live

    def _recompute_live_instances(self) -> List[Any]:
        """From-scratch live view, bypassing the cache (sanitizer cross-check)."""
        live = [i for i in self.instances if i.alive]
        live.sort(key=lambda i: i.instance_id)
        return live

    @property
    def live_count(self) -> int:
        return len(self.live_instances())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job #{self.job_id} {self.spec.name} {self.state.value} live={self.live_count}>"
