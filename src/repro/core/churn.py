"""Churn management: the script language and its replay engine.

Paper counterpart: the churn scripts and the controller-side churn manager
of Section 3.2 — a dedicated language "to specify churn behaviors ...
composed of a list of timestamped events" that can reproduce both synthetic
churn (periodic replacement of a fraction of the nodes) and real traces.
"Using churn scripts allows comparison of competing algorithms under the
very same churn scenarios."

Public entry points: :func:`parse_churn_script` and
:func:`synthetic_churn_script` (script language), :class:`ChurnAction`
(one parsed directive) and :class:`ChurnManager` (replays a script against
one job through the controller, batching each action's kills per daemon).

The script language reproduced here (one directive per line, ``#`` comments):

.. code-block:: text

    at 30s  join 10          # start 10 new instances
    at 2m   leave 5          # gracefully stop 5 random instances
    at 2m   crash 10%        # abruptly kill 10% of the live instances
    from 5m to 10m every 30s replace 5%   # continuous churn window
    at 12m  stop             # stop the whole job

Counts may be absolute (``5``) or a percentage of the currently-live
instances (``10%``).  All randomness (victim selection, join placement) is
drawn from deterministic substreams so that two runs with the same seed
observe the exact same churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.lib.misc import parse_duration
from repro.sim.rng import substream

if TYPE_CHECKING:  # pragma: no cover - runtime objects are duck-typed here
    from repro.core.jobs import Job
    from repro.sim.kernel import Simulator

#: directives understood by the parser/replayer
_KINDS = ("join", "leave", "crash", "replace", "stop")


@dataclass(frozen=True)
class ChurnAction:
    """One timestamped churn directive (times are relative to churn start)."""

    time: float
    kind: str
    count: int = 0
    fraction: Optional[float] = None

    def resolve_count(self, live: int) -> int:
        """Number of instances affected, given ``live`` running instances."""
        if self.fraction is not None:
            return max(1, round(live * self.fraction)) if live else 0
        return self.count


class ChurnScriptError(ValueError):
    """Raised when a churn script cannot be parsed."""


def _parse_amount(token: str) -> tuple[int, Optional[float]]:
    if token.endswith("%"):
        fraction = float(token[:-1]) / 100.0
        if not 0.0 <= fraction <= 1.0:
            raise ChurnScriptError(f"churn percentage out of range: {token}")
        return 0, fraction
    return int(token), None


def parse_churn_script(text: str) -> List[ChurnAction]:
    """Parse a churn script into a time-ordered list of :class:`ChurnAction`.

    ``from .. to .. every .. <kind> <amount>`` windows are expanded into
    discrete actions at parse time, so the replayer only ever deals with
    point events — which is also how trace-derived scripts look.
    """
    actions: List[ChurnAction] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        try:
            if tokens[0] == "at":
                when = parse_duration(tokens[1])
                kind = tokens[2]
                if kind == "stop":
                    actions.append(ChurnAction(time=when, kind="stop"))
                    continue
                if kind not in _KINDS:
                    raise ChurnScriptError(f"unknown directive: {kind}")
                count, fraction = _parse_amount(tokens[3])
                actions.append(ChurnAction(time=when, kind=kind, count=count, fraction=fraction))
            elif tokens[0] == "from":
                if tokens[2] != "to" or tokens[4] != "every":
                    raise ChurnScriptError("expected 'from <t> to <t> every <dt> <kind> <amount>'")
                start = parse_duration(tokens[1])
                end = parse_duration(tokens[3])
                step = parse_duration(tokens[5])
                kind = tokens[6]
                if kind not in ("join", "leave", "crash", "replace"):
                    raise ChurnScriptError(f"unknown directive in window: {kind}")
                count, fraction = _parse_amount(tokens[7])
                if step <= 0 or end < start:
                    raise ChurnScriptError("churn window must move forward in time")
                when = start
                while when <= end + 1e-9:
                    actions.append(ChurnAction(time=when, kind=kind, count=count, fraction=fraction))
                    when += step
            else:
                raise ChurnScriptError(f"directives start with 'at' or 'from', got {tokens[0]!r}")
        except ChurnScriptError:
            raise
        except (IndexError, ValueError) as exc:
            raise ChurnScriptError(f"line {line_no}: cannot parse {raw!r}: {exc}") from exc
    actions.sort(key=lambda a: a.time)
    return actions


def synthetic_churn_script(duration: float, period: float = 30.0,
                           fraction: float = 0.05, warmup: float = 0.0) -> str:
    """Generate the classic synthetic-churn script: replace ``fraction`` of
    the nodes every ``period`` seconds for ``duration`` seconds."""
    pct = fraction * 100.0
    return (f"# synthetic churn: replace {pct:g}% of the nodes every {period:g}s\n"
            f"from {warmup + period:g}s to {warmup + duration:g}s every {period:g}s "
            f"replace {pct:g}%\n")


@dataclass
class ChurnStats:
    """Counters exposed by the churn manager (and printed by scenarios)."""

    actions_applied: int = 0
    instances_joined: int = 0
    instances_left: int = 0
    instances_crashed: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)


class ChurnManager:
    """Replays a churn script against one job through the controller.

    The manager never touches application state directly: leaves and crashes
    go through the controller's ``kill_instances`` (one batched command
    round per affected daemon, ultimately :meth:`AppContext.kill` — exactly
    like a daemon tearing down a sandboxed process) and joins go through
    ``start_instances``.  The ``controller`` handle is duck-typed: the
    facade, a single shard, or the store's failover-aware churn driver all
    work.
    """

    def __init__(self, sim: "Simulator", controller, job: "Job", seed: int = 0):
        self.sim = sim
        self.controller = controller
        self.job = job
        self.rng = substream(seed, "churn", job.job_id)
        self.actions: List[ChurnAction] = []
        self.stats = ChurnStats()
        self._started = False

    # ----------------------------------------------------------------- setup
    def load_script(self, text: str) -> List[ChurnAction]:
        self.actions = parse_churn_script(text)
        return self.actions

    def load_actions(self, actions: List[ChurnAction]) -> None:
        """Replay a pre-built (e.g. trace-derived) action list."""
        self.actions = sorted(actions, key=lambda a: a.time)

    def start(self) -> None:
        """Schedule every action relative to the current virtual time."""
        if self._started:
            raise RuntimeError("churn manager already started")
        self._started = True
        for action in self.actions:
            self.sim.schedule(action.time, self._apply, action)

    # ----------------------------------------------------------------- replay
    def _apply(self, action: ChurnAction) -> None:
        from repro.core.jobs import JobState  # local import to avoid cycles

        if self.job.state is not JobState.RUNNING:
            return
        self.stats.actions_applied += 1
        self.stats.by_kind[action.kind] = self.stats.by_kind.get(action.kind, 0) + 1
        if action.kind == "stop":
            self.controller.stop(self.job)
            return
        if action.kind in ("leave", "crash", "replace"):
            victims = self._pick_victims(action)
            if victims:
                # One batched control round (grouped per daemon by the
                # controller shard) instead of one call per victim.
                self.controller.kill_instances(
                    victims, reason=f"churn:{action.kind}@{self.sim.now:.1f}",
                    failed=(action.kind == "crash"))
            # Crashes and graceful leaves are distinct populations in every
            # churn study; conflating them would corrupt bench reports.
            if action.kind == "crash":
                self.stats.instances_crashed += len(victims)
                self.job.stats.churn_crashes += len(victims)
            else:
                self.stats.instances_left += len(victims)
                self.job.stats.churn_leaves += len(victims)
            if action.kind == "replace":
                self._join(len(victims))
        elif action.kind == "join":
            self._join(action.resolve_count(self.job.live_count))

    def _pick_victims(self, action: ChurnAction) -> list:
        live = self.job.live_instances()
        count = min(action.resolve_count(len(live)), len(live))
        if count <= 0:
            return []
        return self.rng.sample(live, count)

    def _join(self, count: int) -> None:
        if count <= 0:
            return
        started = self.controller.start_instances(self.job, count)
        self.stats.instances_joined += len(started)
        self.job.stats.churn_joins += len(started)
