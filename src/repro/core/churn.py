"""Churn management: the script language and its replay engine.

Paper counterpart: the churn scripts and the controller-side churn manager
of Section 3.2 — a dedicated language "to specify churn behaviors ...
composed of a list of timestamped events" that can reproduce both synthetic
churn (periodic replacement of a fraction of the nodes) and real traces.
"Using churn scripts allows comparison of competing algorithms under the
very same churn scenarios."

Public entry points: :func:`parse_churn_script` and
:func:`synthetic_churn_script` (script language), :func:`trace_churn_actions`
/ :func:`parse_availability_trace` / :func:`synthetic_availability_trace`
(Overnet-style availability traces), :class:`ChurnAction` (one parsed
directive) and :class:`ChurnManager` (replays a script against one job
through the controller, batching each action's kills per daemon).

The script language reproduced here (one directive per line, ``#`` comments):

.. code-block:: text

    at 30s  join 10          # start 10 new instances
    at 2m   leave 5          # gracefully stop 5 random instances
    at 2m   crash 10%        # abruptly kill 10% of the live instances
    at 3m   fail 2           # host-level: kill 2 whole daemons (all instances)
    at 4m   recover 2        # host-level: bring 2 failed daemons back up
    from 5m to 10m every 30s replace 5%   # continuous churn window
    at 12m  stop             # stop the whole job

Counts may be absolute (``5``) or a percentage of the currently-live
instances (``10%``) — for the host-level ``fail``/``recover`` directives the
percentage is of the currently-alive (respectively failed) hosts.  All
randomness (victim selection, join placement) is drawn from deterministic
substreams so that two runs with the same seed observe the exact same churn.

Real traces enter through the same machinery: the paper's churn language
can "reproduce the behavior of real systems by replaying availability
traces (e.g., from Overnet)".  :func:`trace_churn_actions` converts an
availability trace (``host_id start end`` lines, one line per uptime
interval) into host-level fail/recover :class:`ChurnAction` lists targeting
*specific* hosts, and :func:`synthetic_availability_trace` generates a
deterministic trace in the same format for tests and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.lib.misc import parse_duration
from repro.sim.rng import substream

if TYPE_CHECKING:  # pragma: no cover - runtime objects are duck-typed here
    from repro.core.jobs import Job
    from repro.sim.kernel import Simulator

#: directives understood by the parser/replayer
_KINDS = ("join", "leave", "crash", "replace", "stop", "fail", "recover")
#: directives acting on whole hosts (daemons) instead of instances
_HOST_KINDS = ("fail", "recover")


@dataclass(frozen=True)
class ChurnAction:
    """One timestamped churn directive (times are relative to churn start).

    ``host`` is set on trace-derived host-level actions only: it names the
    trace's host id, which the replayer maps onto a concrete daemon.
    Script-driven ``fail``/``recover`` directives leave it ``None`` and pick
    random hosts instead.
    """

    time: float
    kind: str
    count: int = 0
    fraction: Optional[float] = None
    host: Optional[str] = None

    def resolve_count(self, live: int) -> int:
        """Number of instances affected, given ``live`` running instances."""
        if self.fraction is not None:
            return max(1, round(live * self.fraction)) if live else 0
        return self.count


class ChurnScriptError(ValueError):
    """Raised when a churn script cannot be parsed."""


def _parse_amount(token: str) -> tuple[int, Optional[float]]:
    if token.endswith("%"):
        fraction = float(token[:-1]) / 100.0
        if not 0.0 <= fraction <= 1.0:
            raise ChurnScriptError(f"churn percentage out of range: {token}")
        return 0, fraction
    return int(token), None


def parse_churn_script(text: str) -> List[ChurnAction]:
    """Parse a churn script into a time-ordered list of :class:`ChurnAction`.

    ``from .. to .. every .. <kind> <amount>`` windows are expanded into
    discrete actions at parse time, so the replayer only ever deals with
    point events — which is also how trace-derived scripts look.
    """
    actions: List[ChurnAction] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        try:
            if tokens[0] == "at":
                when = parse_duration(tokens[1])
                kind = tokens[2]
                if kind == "stop":
                    actions.append(ChurnAction(time=when, kind="stop"))
                    continue
                if kind not in _KINDS:
                    raise ChurnScriptError(f"unknown directive: {kind}")
                count, fraction = _parse_amount(tokens[3])
                actions.append(ChurnAction(time=when, kind=kind, count=count, fraction=fraction))
            elif tokens[0] == "from":
                if tokens[2] != "to" or tokens[4] != "every":
                    raise ChurnScriptError("expected 'from <t> to <t> every <dt> <kind> <amount>'")
                start = parse_duration(tokens[1])
                end = parse_duration(tokens[3])
                step = parse_duration(tokens[5])
                kind = tokens[6]
                if kind not in ("join", "leave", "crash", "replace", "fail", "recover"):
                    raise ChurnScriptError(f"unknown directive in window: {kind}")
                count, fraction = _parse_amount(tokens[7])
                if step <= 0 or end < start:
                    raise ChurnScriptError("churn window must move forward in time")
                when = start
                while when <= end + 1e-9:
                    actions.append(ChurnAction(time=when, kind=kind, count=count, fraction=fraction))
                    when += step
            else:
                raise ChurnScriptError(f"directives start with 'at' or 'from', got {tokens[0]!r}")
        except ChurnScriptError:
            raise
        except (IndexError, ValueError) as exc:
            raise ChurnScriptError(f"line {line_no}: cannot parse {raw!r}: {exc}") from exc
    actions.sort(key=lambda a: a.time)
    return actions


def synthetic_churn_script(duration: float, period: float = 30.0,
                           fraction: float = 0.05, warmup: float = 0.0) -> str:
    """Generate the classic synthetic-churn script: replace ``fraction`` of
    the nodes every ``period`` seconds for ``duration`` seconds."""
    pct = fraction * 100.0
    return (f"# synthetic churn: replace {pct:g}% of the nodes every {period:g}s\n"
            f"from {warmup + period:g}s to {warmup + duration:g}s every {period:g}s "
            f"replace {pct:g}%\n")


# ------------------------------------------------------------ availability traces
def parse_availability_trace(text: str) -> Dict[str, List[tuple]]:
    """Parse an Overnet-style availability trace into per-host uptime intervals.

    Each non-comment line is ``host_id start end``: host ``host_id`` was up
    from ``start`` to ``end`` (seconds, relative to trace start).  Returns
    ``{host_id: [(start, end), ...]}`` with each host's intervals sorted and
    overlapping/adjacent ones merged.  Hosts appear in first-seen order so
    downstream processing is deterministic.
    """
    raw: Dict[str, List[tuple]] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        body = line.split("#", 1)[0].strip()
        if not body:
            continue
        tokens = body.split()
        if len(tokens) != 3:
            raise ChurnScriptError(
                f"trace line {line_no}: expected 'host_id start end', got {line!r}")
        host = tokens[0]
        try:
            start, end = float(tokens[1]), float(tokens[2])
        except ValueError as exc:
            raise ChurnScriptError(
                f"trace line {line_no}: cannot parse {line!r}: {exc}") from exc
        if start < 0 or end < start:
            raise ChurnScriptError(
                f"trace line {line_no}: interval must satisfy 0 <= start <= end")
        raw.setdefault(host, []).append((start, end))
    merged: Dict[str, List[tuple]] = {}
    for host, intervals in raw.items():
        intervals.sort()
        spans: List[tuple] = []
        for start, end in intervals:
            if spans and start <= spans[-1][1]:
                spans[-1] = (spans[-1][0], max(spans[-1][1], end))
            else:
                spans.append((start, end))
        merged[host] = spans
    return merged


def trace_churn_actions(text: str, horizon: Optional[float] = None) -> List[ChurnAction]:
    """Convert an availability trace into host-level ``fail``/``recover`` actions.

    Every host starts the deployment up (that is what deploying means), so
    a host whose first uptime interval starts after 0 *fails at time 0* and
    recovers when the interval opens; each gap between intervals becomes a
    ``fail`` at the gap's start and a ``recover`` at its end.  A host whose
    availability ends before the trace ``horizon`` (default: the latest
    interval end across all hosts) fails then and stays down — hosts still
    up at the horizon simply keep running.
    """
    intervals = parse_availability_trace(text)
    if not intervals:
        return []
    if horizon is None:
        horizon = max(end for spans in intervals.values() for _start, end in spans)
    actions: List[ChurnAction] = []

    def _emit(time: float, kind: str, host: str) -> None:
        if time <= horizon + 1e-9:
            actions.append(ChurnAction(time=time, kind=kind, host=host))

    for host, spans in intervals.items():
        first_start = spans[0][0]
        if first_start > 0:
            _emit(0.0, "fail", host)
            _emit(first_start, "recover", host)
        for (_s1, end1), (start2, _e2) in zip(spans, spans[1:]):
            _emit(end1, "fail", host)
            _emit(start2, "recover", host)
        last_end = spans[-1][1]
        if last_end < horizon - 1e-9:
            _emit(last_end, "fail", host)
    actions.sort(key=lambda a: a.time)
    return actions


def synthetic_availability_trace(hosts: int = 6, duration: float = 300.0,
                                 seed: int = 0, mean_up: float = 150.0,
                                 mean_down: float = 40.0) -> str:
    """Generate a deterministic Overnet-shaped availability trace.

    Each host alternates exponentially distributed up/down periods (every
    host starts up at time 0 — a deployment places instances on live
    hosts).  The same ``(hosts, duration, seed, mean_up, mean_down)``
    always produces the same trace text, so tests and CI can regenerate the
    bundled trace instead of trusting a checked-in artifact blindly.
    """
    if hosts < 1 or duration <= 0 or mean_up <= 0 or mean_down <= 0:
        raise ValueError("trace parameters must be positive")
    lines = [f"# synthetic availability trace: {hosts} hosts over {duration:g}s "
             f"(seed={seed}, mean up {mean_up:g}s, mean down {mean_down:g}s)",
             "# host_id start end"]
    for index in range(hosts):
        rng = substream(seed, "availability-trace", index)
        now = 0.0
        while now < duration:
            up_end = min(duration, now + rng.expovariate(1.0 / mean_up))
            lines.append(f"h{index} {now:.1f} {up_end:.1f}")
            now = up_end + rng.expovariate(1.0 / mean_down)
    return "\n".join(lines) + "\n"


@dataclass
class ChurnStats:
    """Counters exposed by the churn manager (and printed by scenarios)."""

    actions_applied: int = 0
    instances_joined: int = 0
    instances_left: int = 0
    instances_crashed: int = 0
    #: whole-daemon failures/recoveries — a distinct population from the
    #: instance-level counters above (a host failure takes every co-located
    #: instance down at once and survives as a dead *daemon*, not a gap in
    #: one overlay)
    hosts_failed: int = 0
    hosts_recovered: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)


class ChurnManager:
    """Replays a churn script against one job through the controller.

    The manager never touches application state directly: leaves and crashes
    go through the controller's ``kill_instances`` (one batched command
    round per affected daemon, ultimately :meth:`AppContext.kill` — exactly
    like a daemon tearing down a sandboxed process) and joins go through
    ``start_instances``.  The ``controller`` handle is duck-typed: the
    facade, a single shard, or the store's failover-aware churn driver all
    work.
    """

    def __init__(self, sim: "Simulator", controller, job: "Job", seed: int = 0):
        self.sim = sim
        self.controller = controller
        self.job = job
        self.rng = substream(seed, "churn", job.job_id)
        # Host-level randomness (victim hosts, trace-host mapping) draws from
        # its own substream so adding host churn to a script never perturbs
        # the instance-level victim sequence of the same seed.
        self._host_rng = substream(seed, "churn-hosts", job.job_id)
        #: trace host id -> daemon ip, assigned deterministically on first use
        self._trace_hosts: Dict[str, str] = {}
        self.actions: List[ChurnAction] = []
        self.stats = ChurnStats()
        self._started = False

    # ----------------------------------------------------------------- setup
    def load_script(self, text: str) -> List[ChurnAction]:
        self.actions = parse_churn_script(text)
        return self.actions

    def load_actions(self, actions: List[ChurnAction]) -> None:
        """Replay a pre-built (e.g. trace-derived) action list."""
        self.actions = sorted(actions, key=lambda a: a.time)

    def start(self) -> None:
        """Schedule every action relative to the current virtual time."""
        if self._started:
            raise RuntimeError("churn manager already started")
        self._started = True
        for action in self.actions:
            self.sim.schedule(action.time, self._apply, action)

    # ----------------------------------------------------------------- replay
    def _apply(self, action: ChurnAction) -> None:
        from repro.core.jobs import JobState  # local import to avoid cycles

        if self.job.state is not JobState.RUNNING:
            return
        self.stats.actions_applied += 1
        self.stats.by_kind[action.kind] = self.stats.by_kind.get(action.kind, 0) + 1
        if action.kind == "stop":
            self.controller.stop(self.job)
            return
        if action.kind in _HOST_KINDS:
            self._apply_host_action(action)
            return
        if action.kind in ("leave", "crash", "replace"):
            victims = self._pick_victims(action)
            if victims:
                # One batched control round (grouped per daemon by the
                # controller shard) instead of one call per victim.
                self.controller.kill_instances(
                    victims, reason=f"churn:{action.kind}@{self.sim.now:.1f}",
                    failed=(action.kind == "crash"))
            # Crashes and graceful leaves are distinct populations in every
            # churn study; conflating them would corrupt bench reports.
            if action.kind == "crash":
                self.stats.instances_crashed += len(victims)
                self.job.stats.churn_crashes += len(victims)
            else:
                self.stats.instances_left += len(victims)
                self.job.stats.churn_leaves += len(victims)
            if action.kind == "replace":
                self._join(len(victims))
        elif action.kind == "join":
            self._join(action.resolve_count(self.job.live_count))

    # ------------------------------------------------------------ host churn
    def _apply_host_action(self, action: ChurnAction) -> None:
        """Fail or recover whole daemons (trace-targeted or randomly picked).

        Counters are split from the instance-level ones: a host failure is a
        different event population from an instance crash (it takes every
        co-located instance of every job down at once), and churn studies
        report them separately.  The per-job counts live on ``job.stats``
        like every other churn counter, so they survive controller-shard
        failover.
        """
        if action.host is not None:
            ips = [self._trace_host_ip(action.host)]
        else:
            # Both views are already ip-sorted (and memoized on the store);
            # re-sorting them here was an O(H log H) cost per churn action.
            if action.kind == "fail":
                pool = self.controller.alive_host_ips()
            else:
                pool = self.controller.failed_host_ips()
            count = min(action.resolve_count(len(pool)), len(pool))
            ips = self._host_rng.sample(pool, count) if count > 0 else []
        for ip in ips:
            alive = self.controller.host_alive(ip)
            if action.kind == "fail":
                if not alive:
                    continue  # trace says fail, but the host is already down
                self.controller.fail_host(ip)
                self.stats.hosts_failed += 1
                self.job.stats.churn_host_failures += 1
            else:
                if alive:
                    continue
                self.controller.recover_host(ip)
                self.stats.hosts_recovered += 1
                self.job.stats.churn_host_recoveries += 1

    def _trace_host_ip(self, trace_host: str) -> str:
        """Deterministically bind a trace host id to a deployment daemon.

        Each new trace host takes a random not-yet-bound daemon (drawn from
        the host substream); once every daemon is bound, further trace hosts
        wrap around in first-seen order, which keeps arbitrary real traces
        replayable on small deployments.
        """
        ip = self._trace_hosts.get(trace_host)
        if ip is None:
            all_ips = sorted(self.controller.daemon_ips())
            bound = set(self._trace_hosts.values())
            free = [candidate for candidate in all_ips
                    if candidate not in bound]
            if free:
                ip = self._host_rng.choice(free)
            else:
                ip = all_ips[len(self._trace_hosts) % len(all_ips)]
            self._trace_hosts[trace_host] = ip
        return ip

    def _pick_victims(self, action: ChurnAction) -> list:
        live = self.job.live_instances()
        count = min(action.resolve_count(len(live)), len(live))
        if count <= 0:
            return []
        return self.rng.sample(live, count)

    def _join(self, count: int) -> None:
        if count <= 0:
            return
        started = self.controller.start_instances(self.job, count)
        self.stats.instances_joined += len(started)
        self.job.stats.churn_joins += len(started)
