"""Pastry: prefix routing, leaf-set ownership, and recovery under churn."""

from repro.apps.pastry import pastry_factory
from repro.core.jobs import JobSpec
from repro.lib.ring import numeric_distance
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.runtime.controller import Controller
from repro.runtime.splayd import Splayd, SplaydLimits
from repro.sim.kernel import Simulator
from repro.sim.process import Process

BITS = 16
BASE_BITS = 4


def _deploy(nodes=10, seed=0, churn_script=None):
    sim = Simulator(seed)
    network = Network(sim, latency=ConstantLatency(0.010), seed=seed)
    controller = Controller(sim, network, seed=seed)
    for i in range(nodes):
        controller.register_daemon(
            Splayd(sim, network, f"10.0.0.{i + 1}", SplaydLimits(max_instances=3)))
    spec = JobSpec(
        name="pastry",
        app_factory=pastry_factory(),
        instances=nodes,
        churn_script=churn_script,
        options={"bits": BITS, "base_bits": BASE_BITS, "join_window": 10.0,
                 "repair_interval": 2.0, "table_probe_interval": 3.0},
    )
    job = controller.submit(spec)
    controller.start(job)
    return sim, controller, job


def _members(job):
    return sorted(job.shared["pastry_members"], key=lambda m: m.id)


def _expected_owner(job, key):
    return min(_members(job),
               key=lambda m: (numeric_distance(key, m.id, BITS), m.id, m.ip, m.port))


def _live_apps(job):
    return [i.app for i in job.live_instances() if i.app.joined]


def _run_lookup(sim, app, key, patience=60.0):
    box = {}

    def _gen():
        owner, hops = yield from app.lookup(key)
        box["owner"], box["hops"] = owner, hops

    process = Process(sim, _gen(), name="test-lookup")
    process.start()
    sim.run(until=sim.now + patience)
    assert process.done.done(), "lookup did not terminate"
    process.done.result()  # re-raise lookup failures
    return box["owner"], box["hops"]


def test_every_node_joins_and_builds_leaf_sets():
    sim, _controller, job = _deploy(nodes=10)
    sim.run(until=60.0)
    members = _members(job)
    assert len(members) == 10
    for app in _live_apps(job):
        snapshot = app.routing_snapshot()
        assert snapshot["joined"]
        assert len(snapshot["leaves"]) >= 1
        assert snapshot["table_entries"] >= 1


def test_lookups_find_the_numerically_closest_owner_from_every_node():
    sim, _controller, job = _deploy(nodes=8)
    sim.run(until=60.0)
    keys = [0, 1, 17, 4096, 65535, 30000]
    for app in _live_apps(job):
        for key in keys:
            owner, hops = _run_lookup(sim, app, key)
            expected = _expected_owner(job, key)
            assert (owner.ip, owner.port) == (expected.ip, expected.port), (
                f"lookup({key}) from {app.me} returned {owner}, wanted {expected}")
            assert hops <= app.max_hops


def test_mean_hops_stay_logarithmic_in_the_routing_base():
    # O(log_{2^b} N) route hops plus a constant for the final claim check:
    # for N=16, b=4 that bound is 1 + small constant — assert generously.
    import math

    sim, _controller, job = _deploy(nodes=16)
    sim.run(until=90.0)
    apps = _live_apps(job)
    total_hops = 0
    count = 0
    for app in apps[:4]:
        for key in (11, 222, 3333, 44444, 55555):
            _owner, hops = _run_lookup(sim, app, key)
            total_hops += hops
            count += 1
    mean = total_hops / count
    bound = math.log(16, 2 ** BASE_BITS) + 3.0
    assert mean <= bound, f"mean hops {mean:.2f} above O(log_16 N) bound {bound:.2f}"


def test_overlay_recovers_and_routes_correctly_after_crashes():
    sim, _controller, job = _deploy(nodes=10, churn_script="at 70s crash 30%\n")
    sim.run(until=60.0)
    assert job.live_count == 10
    sim.run(until=150.0)  # crash at 70s, then leaf-set repair time
    assert job.live_count == 7
    members = _members(job)
    assert len(members) == 7
    for app in _live_apps(job):
        for key in (3, 900, 12345, 54321, 65000):
            owner, _hops = _run_lookup(sim, app, key)
            expected = _expected_owner(job, key)
            assert (owner.ip, owner.port) == (expected.ip, expected.port)


def test_churned_in_nodes_become_routable_owners():
    sim, _controller, job = _deploy(nodes=6, churn_script="at 70s join 3\n")
    sim.run(until=160.0)
    assert job.live_count == 9
    members = _members(job)
    assert len(members) == 9
    app = _live_apps(job)[0]
    for member in members:
        owner, _hops = _run_lookup(sim, app, member.id)
        assert (owner.ip, owner.port) == (member.ip, member.port)


def test_same_seed_builds_the_same_overlay():
    def fingerprint(seed):
        sim, _controller, job = _deploy(nodes=8, seed=seed)
        sim.run(until=60.0)
        return tuple((m.ip, m.port, m.id) for m in _members(job))

    assert fingerprint(5) == fingerprint(5)
