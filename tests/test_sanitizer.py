"""Runtime sanitizer: every injected violation class is caught (with event
provenance), clean runs record nothing, and enabling the sanitizer never
changes a report digest (it is observation-only by construction)."""

from heapq import heappush
from types import SimpleNamespace

import pytest

from repro.net.address import Address
from repro.net.bandwidth import BandwidthModel
from repro.net.network import Network
from repro.sim import futures as futures_module
from repro.sim.futures import Future
from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.process import Process
from repro.sim.sanitizer import Sanitizer, SanitizerError


@pytest.fixture(autouse=True)
def _reset_future_hook():
    yield
    futures_module._misuse_hook = None


def _installed(kernel="wheel"):
    sim = Simulator(0, kernel=kernel)
    return sim, Sanitizer(sim).install()


# ------------------------------------------------------------ clock violation
@pytest.mark.parametrize("kernel", ["heap", "wheel"])
def test_past_dated_event_is_caught_with_provenance(kernel):
    sim, san = _installed(kernel)

    def marker():
        return None

    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, marker)
    sim.run(until=1.5)
    assert sim.now == 1.5
    # Corrupt the pending event so it claims a time before "now".
    event.time = 0.5
    if kernel == "wheel":
        # Reposition it the way a buggy scheduler would: as an immediately
        # ready entry carrying the stale timestamp.
        sim._cursor.clear()
        heappush(sim._cursor, (0.5, event.seq, event))
    sim.run()
    assert san.counts.get("clock") == 1
    violation = san.violations[0]
    assert violation.kind == "clock"
    assert "marker" in violation.detail
    # Provenance: the origin stamped when the event was scheduled.
    assert "scheduled t=2.0" in violation.provenance


def test_monotonic_execution_records_nothing():
    sim, san = _installed()
    for delay in (3.0, 1.0, 2.0, 0.0):
        sim.schedule(delay, lambda: None)
    sim.run()
    assert san.violations == []


# -------------------------------------------------------- future legality
def test_double_set_result_is_caught():
    sim, san = _installed()
    future = Future(name="reply")
    future.set_result(1)
    future.set_result(2)
    assert san.counts.get("future") == 1
    violation = san.violations[0]
    assert "set_result" in violation.detail and "reply" in violation.detail


def test_set_exception_after_completion_is_caught_with_event_provenance():
    sim, san = _installed()
    future = Future(name="call-7")

    def misuse():
        future.set_result("ok")
        future.set_exception(RuntimeError("late timeout"))

    sim.schedule(1.0, misuse)
    sim.run()
    assert san.counts.get("future") == 1
    violation = san.violations[0]
    # The offending completion is attributed to the executing event.
    assert "misuse" in violation.provenance
    assert "t=1.0" in violation.provenance


def test_cancel_of_a_done_future_is_a_benign_no_op():
    sim, san = _installed()
    future = Future(name="done")
    future.set_result(1)
    assert future.cancel() is False
    assert san.violations == []


# -------------------------------------------------------- free-list integrity
def test_recycling_a_live_pending_event_is_caught():
    sim, san = _installed()
    live = sim.schedule(5.0, lambda: None)
    assert live.pending
    sim._free.append(live)  # aliasing bug: recycled while still scheduled
    sim.schedule(1.0, lambda: None)
    assert san.counts.get("free_list") == 1
    assert "live pending event" in san.violations[0].detail


def test_unscrubbed_free_list_entry_is_caught():
    sim, san = _installed()

    def stale_callback():
        return None

    dead = ScheduledEvent(1.0, 999, stale_callback, (), sim, sim._epoch)
    dead.fired = True  # dead, but its callback was never scrubbed
    sim._free.append(dead)
    sim.schedule(1.0, lambda: None)
    assert san.counts.get("free_list") == 1
    assert "unscrubbed" in san.violations[0].detail
    assert "stale_callback" in san.violations[0].detail


def test_normal_free_list_recycling_records_nothing():
    sim, san = _installed()
    # Fired events are scrubbed and recycled by the kernel itself; churning
    # through many schedule/run cycles must not trip the checker.
    for _ in range(50):
        sim.schedule(0.01, lambda: None)
        sim.run()
    assert san.violations == []


# ---------------------------------------------------------- process stepping
def test_double_resumption_of_a_process_is_caught():
    sim, san = _installed()

    def coro():
        yield 5.0

    process = Process(sim, coro(), name="worker-3")
    process.start()
    sim.run(until=1.0)  # first step ran; the 5 s sleep event is armed
    process._step(None, None)  # a second resumption path races the sleep
    assert san.counts.get("process") == 1
    violation = san.violations[0]
    assert "worker-3" in violation.detail
    assert "still pending" in violation.detail


def test_normal_process_lifecycle_records_nothing():
    sim, san = _installed()

    def coro():
        yield 1.0
        yield None
        return "done"

    process = Process(sim, coro(), name="clean")
    process.start()
    sim.run()
    assert process.done.result() == "done"
    assert san.violations == []


# ------------------------------------------------------- listener consistency
def test_listener_surviving_its_removed_host_is_caught():
    sim, san = _installed()
    network = Network(sim)
    san.watch_network(network)
    for ip in ("10.0.0.1", "10.0.0.2"):
        network.add_host(SimpleNamespace(ip=ip, alive=True))
        network.listen(Address(ip, 20000), lambda message: None)
    # Bypass remove_host (the bug): the host vanishes, its listener stays.
    network.hosts.pop("10.0.0.1")
    network.remove_host("10.0.0.2")  # a correct removal runs the check
    assert san.counts.get("listener") == 1
    assert "10.0.0.1:20000" in san.violations[0].detail


def test_correct_host_removal_records_nothing():
    sim, san = _installed()
    network = Network(sim)
    san.watch_network(network)
    network.add_host(SimpleNamespace(ip="10.0.0.1", alive=True))
    network.listen(Address("10.0.0.1", 20000), lambda message: None)
    network.remove_host("10.0.0.1")
    assert san.violations == []


# ------------------------------------------------------- flow conservation
def test_overcommitted_link_allocation_is_caught():
    sim, san = _installed()
    model = BandwidthModel(sim)
    model._san = san
    model.set_capacity("10.0.0.1", 1_000_000, 1_000_000)
    model.set_capacity("10.0.0.2", 1_000_000, 1_000_000)
    # Corrupt the allocator: it hands every flow far more than any link has.
    model._allocate_rates = lambda transfers: [5_000_000.0] * len(transfers)
    model.transfer("10.0.0.1", "10.0.0.2", 1_000_000)
    assert san.counts.get("bandwidth") == 2  # uplink of src, downlink of dst
    assert "against capacity" in san.violations[0].detail


def test_max_min_fair_allocation_records_nothing():
    sim, san = _installed()
    model = BandwidthModel(sim)
    model._san = san
    for index in range(1, 5):
        model.set_capacity(f"10.0.0.{index}", 1_000_000, 1_000_000)
    for src in range(1, 5):
        for dst in range(1, 5):
            if src != dst:
                model.transfer(f"10.0.0.{src}", f"10.0.0.{dst}", 250_000)
    sim.run()
    assert model.completed == 12
    assert san.violations == []


# ------------------------------------------------------------- strict mode
def test_strict_mode_raises_on_the_first_violation():
    sim = Simulator(0)
    san = Sanitizer(sim, strict=True).install()
    future = Future(name="strict")
    future.set_result(1)
    with pytest.raises(SanitizerError, match="set_result"):
        future.set_result(2)


def test_uninstall_detaches_all_hooks():
    sim, san = _installed()
    san.uninstall()
    assert sim._san is None
    future = Future()
    future.set_result(1)
    future.set_result(2)  # no sanitizer: silent no-op, as before
    assert san.violations == []


# ----------------------------------------------- observation-only guarantee
def test_chord_report_digest_is_byte_identical_with_sanitizer_on():
    """The --sanitize flag must never change results: same seed, same digest,
    and a clean run records zero violations (the acceptance gate for the
    whole subsystem)."""
    from repro.apps.chord import run_chord_scenario
    from repro.apps.harness import report_digest

    config = dict(nodes=12, hosts=8, seed=11, churn=True, lookups=15,
                  join_window=30.0, settle=40.0)
    plain = run_chord_scenario(**config)
    sanitized = run_chord_scenario(sanitize=True, **config)
    assert "sanitizer" not in plain
    assert sanitized["sanitizer"]["enabled"] is True
    assert sanitized["sanitizer"]["violations"] == 0
    assert report_digest(plain) == report_digest(sanitized)
    # Full workload sections agree, not just the hash.
    for key in ("measured", "job", "churn", "network", "rpc",
                "events_executed"):
        assert plain[key] == sanitized[key], key
