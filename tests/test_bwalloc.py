"""Pluggable bandwidth allocators: differential harness, oracle, priorities.

Three layers of assurance over :mod:`repro.net.bwalloc`:

* a **differential workload harness**: one seeded random flow workload
  (arrivals, sizes, priorities, cancellations, host failures, time advances)
  replayed against every registered allocator under the strict runtime
  sanitizer, asserting the invariants every strategy must share;
* an **oracle**: the incremental connected-component recomputation must
  produce *bit-identical* rate vectors to a brute-force global recompute
  after every step of a long random script, for every allocator;
* **priority semantics**: fixed-priority starvation/resumption,
  priority-queue weighted shares, and the churning-chord digest pin proving
  ``--bw-alloc max-min`` still reproduces pre-refactor reports byte for
  byte on both kernels.
"""

import random

import pytest

from repro.apps import harness
from repro.apps.chord import run_chord_scenario
from repro.net.bandwidth import BandwidthModel
from repro.net.bwalloc import (
    BULK,
    CONTROL,
    LOOKUP,
    UnknownAllocatorError,
    allocator_names,
    make_allocator,
)
from repro.sim.kernel import Simulator
from repro.sim.sanitizer import Sanitizer, SanitizerError

CAP_BPS = 10_000_000
PRIORITIES = [CONTROL, LOOKUP, BULK]

#: the flagship churn digest pinned in tests/test_testbeds.py — captured on
#: the commit *before* the allocator refactor; ``--bw-alloc max-min`` must
#: keep producing exactly this
PRE_REFACTOR_CHURN_DIGEST = "a4225db7940032d4"


def _model(seed=0, allocator="max-min", incremental=True, hosts=12,
           kernel="wheel", sanitize=False):
    sim = Simulator(seed, kernel=kernel)
    model = BandwidthModel(sim)
    model.configure(allocator=allocator, incremental=incremental)
    ips = harness.host_ips(hosts)
    for ip in ips:
        model.set_capacity(ip, CAP_BPS, CAP_BPS)
    sanitizer = None
    if sanitize:
        sanitizer = Sanitizer(sim, strict=True).install()
        model._san = sanitizer
    return sim, model, ips, sanitizer


def _assert_capacity_respected(model):
    """Sum of allocated rates on every access link <= its capacity."""
    load = {}
    for transfer in model._active:
        if transfer.rate_bps <= 0:
            continue
        load[("up", transfer.src_ip)] = (
            load.get(("up", transfer.src_ip), 0.0) + transfer.rate_bps)
        load[("down", transfer.dst_ip)] = (
            load.get(("down", transfer.dst_ip), 0.0) + transfer.rate_bps)
    for (direction, ip), total in load.items():
        up, down = model.capacity(ip)
        capacity = up if direction == "up" else down
        assert total <= capacity * (1.0 + 1e-6), \
            f"{direction}link of {ip}: {total} > {capacity}"


def _workload_script(rng, steps, hosts):
    """One seeded random flow workload as replayable pure-data actions."""
    script = []
    live_guess = 0
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.5 or live_guess == 0:
            src, dst = rng.sample(range(hosts), 2)
            size = rng.choice([0, 10_000, 100_000, 1_000_000])
            script.append(("add", src, dst, size, rng.choice(PRIORITIES)))
            live_guess += 1
        elif roll < 0.72:
            script.append(("cancel", rng.randrange(live_guess)))
        elif roll < 0.82:
            script.append(("fail", rng.randrange(hosts)))
            live_guess = max(0, live_guess - 2)
        else:
            script.append(("advance", round(rng.uniform(0.01, 0.4), 3)))
    return script


def _apply(action, sim, model, ips, transfers):
    kind = action[0]
    if kind == "add":
        _, src, dst, size, priority = action
        transfers.append(
            model.transfer(ips[src], ips[dst], size, priority=priority))
    elif kind == "cancel":
        model.cancel_transfer(transfers[action[1] % len(transfers)])
    elif kind == "fail":
        model.cancel_host(ips[action[1]])
    else:
        sim.run(until=sim.now + action[1])


# ----------------------------------------------------- differential harness
@pytest.mark.parametrize("allocator", allocator_names())
@pytest.mark.parametrize("seed", [3, 11])
def test_random_workload_invariants_hold_for_every_allocator(allocator, seed):
    """Arrivals/cancels/host failures against the shared contract.

    The strict sanitizer raises on the first capacity or flow-table breach,
    so every recomputation is checked, not just the final state; the
    explicit assertions cover completion and byte accounting.
    """
    sim, model, ips, _ = _model(seed=seed, allocator=allocator, sanitize=True)
    rng = random.Random(seed)
    transfers = []
    for action in _workload_script(rng, steps=120, hosts=len(ips)):
        _apply(action, sim, model, ips, transfers)
        _assert_capacity_respected(model)
    sim.run()  # drain: every surviving flow must finish

    assert transfers
    assert model.active_transfers == 0
    completed = [t for t in transfers if t.done.done() and not t.done.cancelled()]
    preempted = [t for t in transfers if t.done.cancelled()]
    # Every flow either completed or was preempted — none left dangling.
    assert len(completed) + len(preempted) == len(transfers)
    assert model.completed == len(completed)
    assert model.preemptions == len(preempted)
    # Total bytes accounted: the model's completed-byte counter is exactly
    # the sum over completed flows, and the per-class split re-adds to it.
    assert model.bytes_completed == sum(t.total_bytes for t in completed)
    assert sum(model.bytes_completed_by_class.values()) == model.bytes_completed
    assert sum(model.preemptions_by_class.values()) == model.preemptions


def test_strict_sanitizer_catches_a_corrupted_flow_table():
    """The new flow-table check fires when adjacency and reality diverge."""
    sim, model, ips, _ = _model(sanitize=True)
    model.transfer(ips[0], ips[1], 1_000_000)
    model._flows_on_link.clear()  # simulate a bookkeeping bug
    with pytest.raises(SanitizerError, match="flow table"):
        model.transfer(ips[2], ips[3], 1_000_000)


# ------------------------------------------------------------------- oracle
@pytest.mark.parametrize("allocator", allocator_names())
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_incremental_rates_bit_identical_to_global_oracle(allocator, seed):
    """Component-walk recomputation == brute-force global, at every step.

    Two models replay the identical 220-step script, one incremental and one
    with the ``--bw-global`` brute force; after every step the full
    ``(transfer_id, rate_bps, remaining_bytes)`` state must match with
    ``==`` — bit-identical floats, not approximately equal ones.
    """
    sim_inc, model_inc, ips, _ = _model(seed=seed, allocator=allocator,
                                        incremental=True)
    sim_ref, model_ref, _, _ = _model(seed=seed, allocator=allocator,
                                      incremental=False)
    rng = random.Random(1000 + seed)
    script = _workload_script(rng, steps=220, hosts=len(ips))
    inc_transfers, ref_transfers = [], []
    for step, action in enumerate(script):
        _apply(action, sim_inc, model_inc, ips, inc_transfers)
        _apply(action, sim_ref, model_ref, ips, ref_transfers)
        inc_state = [(t.transfer_id, t.rate_bps, t.remaining_bytes)
                     for t in model_inc._active]
        ref_state = [(t.transfer_id, t.rate_bps, t.remaining_bytes)
                     for t in model_ref._active]
        assert inc_state == ref_state, f"divergence after step {step}: {action}"
    sim_inc.run()
    sim_ref.run()
    assert model_inc.completed == model_ref.completed
    assert model_inc.bytes_completed == model_ref.bytes_completed
    assert [t.done.result() for t in inc_transfers if not t.done.cancelled()] \
        == [t.done.result() for t in ref_transfers if not t.done.cancelled()]


def test_incremental_touches_fewer_flows_than_global():
    """The point of the component walk: disjoint flows are left alone."""
    sim, model, ips, _ = _model(hosts=8)
    for i in range(0, 8, 2):
        model.transfer(ips[i], ips[i + 1], 1_000_000_000)
    # Four pairwise-disjoint flows: the last arrival's component is itself.
    assert model.reallocations == 4
    assert model.flows_allocated == 4  # 1 + 1 + 1 + 1
    model.configure(incremental=False)  # triggers one full recompute
    assert model.flows_allocated == 8  # ... which touches all four flows


# -------------------------------------------------------- priority semantics
def test_fixed_priority_starves_bulk_until_control_drains():
    sim, model, ips, _ = _model(allocator="fixed-priority", hosts=3)
    control = model.transfer(ips[0], ips[1], 10_000_000, priority=CONTROL)
    bulk = model.transfer(ips[0], ips[2], 1_000_000, priority=BULK)
    # CONTROL saturates the shared 10 Mbps uplink; BULK is starved outright.
    assert control.rate_bps == CAP_BPS
    assert bulk.rate_bps == 0.0
    sim.run(until=4.0)
    assert not control.done.done() and bulk.rate_bps == 0.0
    sim.run(until=8.5)  # control (10 MB at 10 Mbps) completes at t = 8 s
    assert control.done.done()
    # ... and its completion resumes the starved flow at full rate.
    assert bulk.rate_bps == CAP_BPS
    sim.run()
    assert bulk.done.done() and not bulk.done.cancelled()


def test_fixed_priority_lookup_outranks_bulk_but_not_control():
    sim, model, ips, _ = _model(allocator="fixed-priority", hosts=4)
    control = model.transfer(ips[0], ips[1], 4_000_000, priority=CONTROL)
    lookup = model.transfer(ips[0], ips[2], 4_000_000, priority=LOOKUP)
    bulk = model.transfer(ips[0], ips[3], 4_000_000, priority=BULK)
    assert control.rate_bps == CAP_BPS
    assert lookup.rate_bps == 0.0 and bulk.rate_bps == 0.0
    sim.run(until=3.3)  # control drains at t = 3.2 s; lookup takes over
    assert control.done.done()
    assert lookup.rate_bps == CAP_BPS and bulk.rate_bps == 0.0


def test_priority_queue_shares_follow_class_weights():
    """One flow per class on a shared uplink splits it 4 : 2 : 1."""
    sim, model, ips, _ = _model(allocator="priority-queue", hosts=4)
    control = model.transfer(ips[0], ips[1], 50_000_000, priority=CONTROL)
    lookup = model.transfer(ips[0], ips[2], 50_000_000, priority=LOOKUP)
    bulk = model.transfer(ips[0], ips[3], 50_000_000, priority=BULK)
    assert control.rate_bps == pytest.approx(CAP_BPS * 4 / 7)
    assert lookup.rate_bps == pytest.approx(CAP_BPS * 2 / 7)
    assert bulk.rate_bps == pytest.approx(CAP_BPS * 1 / 7)
    # Weighted max-min still fills the bottleneck completely and no class
    # starves: everyone makes progress.
    total = control.rate_bps + lookup.rate_bps + bulk.rate_bps
    assert total == pytest.approx(CAP_BPS)


def test_priority_queue_redistributes_when_a_class_leaves():
    sim, model, ips, _ = _model(allocator="priority-queue", hosts=4)
    control = model.transfer(ips[0], ips[1], 1_000_000, priority=CONTROL)
    bulk = model.transfer(ips[0], ips[2], 50_000_000, priority=BULK)
    assert control.rate_bps == pytest.approx(CAP_BPS * 4 / 5)
    assert bulk.rate_bps == pytest.approx(CAP_BPS * 1 / 5)
    sim.run(until=1.1)  # control (1 MB at 8 Mbps) finishes at t = 1 s
    assert control.done.done()
    assert bulk.rate_bps == pytest.approx(CAP_BPS)


def test_fair_share_splits_equally_without_redistribution():
    sim, model, ips, _ = _model(allocator="fair-share", hosts=4)
    model.set_capacity(ips[1], CAP_BPS, 2_000_000)  # narrow downlink
    narrow = model.transfer(ips[0], ips[1], 1_000_000)
    wide = model.transfer(ips[0], ips[2], 1_000_000)
    # Equal split per link: both get uplink/2; the narrow flow is further
    # capped by its 2 Mbps downlink, and fair-share does NOT hand the
    # stranded 3 Mbps back to the other flow (max-min would).
    assert narrow.rate_bps == pytest.approx(2_000_000)
    assert wide.rate_bps == pytest.approx(CAP_BPS / 2)


def test_priority_classes_are_recorded_per_class():
    sim, model, ips, _ = _model(hosts=6)
    done = model.transfer(ips[0], ips[1], 1_000_000, priority=CONTROL)
    model.transfer(ips[2], ips[3], 1_000_000, priority=BULK)
    victim = model.transfer(ips[4], ips[5], 1_000_000, priority=BULK)
    model.cancel_transfer(victim)
    sim.run()
    assert done.done.done()
    stats = model.class_stats()
    assert stats["control"] == {"bytes_completed": 1_000_000.0, "preemptions": 0}
    assert stats["bulk"] == {"bytes_completed": 1_000_000.0, "preemptions": 1}
    assert "lookup" not in stats  # empty classes stay out of the section


# ----------------------------------------------------------------- registry
def test_registry_lists_max_min_first_and_rejects_unknown_names():
    names = allocator_names()
    assert names[0] == "max-min"
    assert set(names) == {"max-min", "fair-share", "fixed-priority",
                          "priority-queue"}
    with pytest.raises(UnknownAllocatorError, match="max-min"):
        make_allocator("wfq", None)


def test_configure_switches_allocator_mid_run_and_recomputes():
    sim, model, ips, _ = _model(allocator="max-min", hosts=3)
    control = model.transfer(ips[0], ips[1], 50_000_000, priority=CONTROL)
    bulk = model.transfer(ips[0], ips[2], 50_000_000, priority=BULK)
    assert control.rate_bps == pytest.approx(CAP_BPS / 2)
    model.configure(allocator="fixed-priority")
    assert model.allocator_name == "fixed-priority"
    assert control.rate_bps == CAP_BPS and bulk.rate_bps == 0.0


# ------------------------------------------------------------- digest parity
@pytest.mark.slow
@pytest.mark.parametrize("kernel", ["wheel", "heap"])
def test_churning_chord_max_min_digest_matches_pre_refactor(kernel):
    """``--bw-alloc max-min`` reproduces the pre-refactor flagship report.

    Same configuration as the pinned churn digest in tests/test_testbeds.py,
    with the allocator and (on wheel) the brute-force recompute requested
    explicitly — neither the refactor, the priority threading nor the
    incremental engine may move a single byte.
    """
    report = run_chord_scenario(nodes=12, hosts=8, seed=11, churn=True,
                                lookups=15, join_window=30.0, settle=40.0,
                                kernel=kernel, bw_alloc="max-min",
                                bw_global=(kernel == "wheel"))
    assert harness.report_digest(report) == PRE_REFACTOR_CHURN_DIGEST
