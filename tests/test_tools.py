"""Repo tools: the CDF plotter (stdlib fallback) and the trace generator."""

import importlib.util
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
_TOOLS = _REPO / "tools"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, _TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def _write_cdf_csv(path, samples):
    from repro.apps.harness import write_cdf

    write_cdf(str(path), samples)


def test_plot_cdf_reads_the_harness_csv_format(tmp_path):
    plot_cdf = _load("plot_cdf")
    csv_path = tmp_path / "cdf.csv"
    _write_cdf_csv(csv_path, [10.0, 20.0, 30.0, 40.0])
    xs, ys = plot_cdf.read_cdf(str(csv_path))
    assert xs == [10.0, 20.0, 30.0, 40.0]
    assert ys == [0.25, 0.5, 0.75, 1.0]


def test_plot_cdf_svg_fallback_renders_every_curve(tmp_path):
    plot_cdf = _load("plot_cdf")
    curves = [("stable", [5.0, 10.0], [0.5, 1.0]),
              ("churn", [5.0, 40.0], [0.5, 1.0])]
    out = plot_cdf._plot_svg(curves, str(tmp_path / "plot.png"), "title")
    assert out.endswith(".svg")  # extension is corrected for the fallback
    svg = Path(out).read_text()
    assert svg.startswith("<svg")
    assert svg.count("<polyline") == 2
    assert "stable" in svg and "churn" in svg
    assert "latency (ms)" in svg


def test_plot_cdf_main_plots_multiple_files(tmp_path, capsys):
    plot_cdf = _load("plot_cdf")
    first, second = tmp_path / "a.csv", tmp_path / "b.csv"
    _write_cdf_csv(first, [1.0, 2.0])
    _write_cdf_csv(second, [3.0, 4.0, 5.0])
    out = tmp_path / "figure.svg"
    status = plot_cdf.main([str(first), str(second), "--out", str(out),
                            "--labels", "one", "two"])
    assert status == 0
    assert out.exists()
    assert "2 curve(s), 5 samples" in capsys.readouterr().out


def test_plot_cdf_main_rejects_label_count_mismatch(tmp_path, capsys):
    plot_cdf = _load("plot_cdf")
    csv_path = tmp_path / "a.csv"
    _write_cdf_csv(csv_path, [1.0])
    status = plot_cdf.main([str(csv_path), "--labels", "a", "b"])
    assert status == 2
    assert "label" in capsys.readouterr().err


def test_gen_availability_trace_defaults_reproduce_the_bundled_file(tmp_path, capsys):
    gen = _load("gen_availability_trace")
    out = tmp_path / "trace.txt"
    status = gen.main(["--out", str(out)])
    assert status == 0
    assert out.read_text() == (_REPO / "traces" / "synthetic_overnet.trace").read_text()


def _write_scale_csv(path):
    from repro.apps.scenarios import BENCH_CSV_COLUMNS, write_bench_csv

    rows = [
        {"row_type": "kernel", "kernel": "wheel", "nodes": 50},  # skipped
        {"row_type": "scale", "workload": "chord", "kernel": "wheel",
         "nodes": 1000, "hosts": 500, "events_executed": 500000,
         "events_per_sec": 50000.0, "wall_sec": 10.0, "peak_rss_kb": 200000},
        {"row_type": "scale", "workload": "chord", "kernel": "wheel",
         "nodes": 5000, "hosts": 2500, "events_executed": 2500000,
         "events_per_sec": 45000.0, "wall_sec": 55.0, "peak_rss_kb": 800000},
    ]
    write_bench_csv(str(path), rows)
    assert BENCH_CSV_COLUMNS[0] == "row_type"


def test_plot_scale_reads_only_scale_rows_and_derives_ratios(tmp_path, capsys):
    plot_scale = _load("plot_scale")
    csv_path = tmp_path / "bench_scale.csv"
    _write_scale_csv(csv_path)
    rows = plot_scale.read_scale_rows(str(csv_path))
    assert [int(r["nodes"]) for r in rows] == [1000, 5000]
    status = plot_scale.main([str(csv_path)])
    out = capsys.readouterr().out
    assert status == 0
    assert "1000" in out and "5000" in out
    # 200000/1000 = 200 KB/node at 1k; 800000/5000 = 160 KB/node at 5k
    assert "KB-per-node ratio: 0.80x" in out
    assert "events/sec ratio (scale_efficiency): 0.90x" in out
    # 1e6/50000 = 20 us/event at 1k; 1e6/45000 = 22.22 at 5k
    assert "per-event cost: 20.00 -> 22.22 us/event" in out


def test_plot_scale_rejects_csv_without_scale_rows(tmp_path, capsys):
    plot_scale = _load("plot_scale")
    csv_path = tmp_path / "empty.csv"
    csv_path.write_text("row_type,nodes\nkernel,50\n")
    status = plot_scale.main([str(csv_path)])
    assert status == 2
    assert "no scale rows" in capsys.readouterr().err
