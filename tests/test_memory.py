"""Per-node memory: the 1k-node deploy must stay under a committed ceiling.

The tentpole perf work made per-instance state lazy (log buffers, RPC
stats, drop RNGs), put ``__slots__`` on the hot classes and interned host
IPs; this test pins the result so a future change cannot quietly re-inflate
the per-node footprint.  ``tracemalloc`` counts Python-allocator bytes
only — a stable, platform-independent proxy for the RSS the scale bench
measures end to end.
"""

import tracemalloc

from repro.apps import harness
from repro.apps.chord import chord_factory

#: committed ceiling for Python-allocated bytes per deployed node (the
#: measured footprint is ~11 KB/node; the headroom absorbs allocator and
#: version noise without letting a per-instance eager buffer sneak back in)
PER_NODE_CEILING_BYTES = 16_384


def test_thousand_node_deploy_stays_under_per_node_memory_ceiling():
    nodes = 1000
    tracemalloc.start()
    try:
        base, _ = tracemalloc.get_traced_memory()
        deployment = harness.deploy("chord-mem", chord_factory(), nodes=nodes,
                                    seed=5, join_window=30.0, settle=20.0)
        current, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert deployment.job.stats.instances_started == nodes
    per_node = (current - base) / nodes
    assert per_node < PER_NODE_CEILING_BYTES, (
        f"{per_node:.0f} bytes/node exceeds the committed ceiling of "
        f"{PER_NODE_CEILING_BYTES} — did per-instance state become eager "
        f"again (log buffers, RPC stats, drop RNGs)?")
