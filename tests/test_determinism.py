"""Property-style determinism: same seed, same results — across repeated
runs in one Python process (pids, call ids and transfer ids must not leak
between simulations) and across the two kernel implementations."""

import json

from repro.apps.harness import DIGEST_EXCLUDED_KEYS
from repro.apps.scenarios import run_chord_scenario
from repro.core.jobs import JobSpec
from repro.net.network import Network
from repro.runtime.controller import Controller
from repro.runtime.splayd import Splayd, SplaydLimits
from repro.sim.kernel import Simulator

SCENARIO = dict(nodes=12, hosts=8, seed=11, churn=True, lookups=15,
                join_window=30.0, settle=40.0)


def _normalised(report: dict) -> str:
    # Strip the same sections the report digest excludes: they carry
    # machine-/wall-clock-dependent numbers (gc pauses, phase walls,
    # kernel name) by design — everything else must be byte-identical.
    data = {k: v for k, v in report.items() if k not in DIGEST_EXCLUDED_KEYS}
    return json.dumps(data, sort_keys=True, default=str)


def test_chord_scenario_is_identical_when_run_twice_in_one_process():
    first = run_chord_scenario(**SCENARIO)
    second = run_chord_scenario(**SCENARIO)
    assert first["events_executed"] == second["events_executed"]
    assert first["measured"] == second["measured"]
    assert first["under_churn"] == second["under_churn"]
    assert first["churn"] == second["churn"]
    assert _normalised(first) == _normalised(second)


def test_chord_scenario_is_identical_across_kernels():
    wheel = run_chord_scenario(kernel="wheel", **SCENARIO)
    heap = run_chord_scenario(kernel="heap", **SCENARIO)
    assert _normalised(wheel) == _normalised(heap)


def test_churn_victim_sets_are_identical_across_in_process_runs():
    def victims():
        sim = Simulator(5)
        network = Network(sim, seed=5)
        controller = Controller(sim, network, seed=5)
        for i in range(4):
            controller.register_daemon(
                Splayd(sim, network, f"10.0.0.{i + 1}", SplaydLimits(max_instances=4)))
        spec = JobSpec(name="noop", app_factory=lambda instance: object(),
                       instances=10,
                       churn_script="at 5s crash 30%\nat 10s leave 2\n")
        job = controller.submit(spec)
        controller.start(job)
        before = {i.instance_id for i in job.live_instances()}
        sim.run(until=20.0)
        after = {i.instance_id for i in job.live_instances()}
        return tuple(sorted(before - after)), job.stats.churn_crashes, job.stats.churn_leaves

    assert victims() == victims()


def test_gossip_report_digest_is_identical_across_controller_shard_counts():
    """Controller scale-out must be invisible to the workload: sharding the
    control plane changes batching and log routing, never results."""
    from repro.apps.gossip import run_gossip_scenario
    from repro.apps.harness import report_digest

    config = dict(nodes=12, hosts=8, seed=11, churn=True, broadcasts=12,
                  duration="short")
    single = run_gossip_scenario(ctl_shards=1, **config)
    sharded = run_gossip_scenario(ctl_shards=4, **config)
    assert report_digest(single) == report_digest(sharded)
    # The workload-level sections agree in full, not just in hash.
    for key in ("measured", "job", "churn", "network", "rpc",
                "events_executed", "log_records_collected"):
        assert single[key] == sharded[key], key
    # The control plane itself did differ (that's the thing being scaled).
    assert single["ctl_shards"] == 1 and sharded["ctl_shards"] == 4
    assert len(sharded["control_plane"]["shards"]) == 4
