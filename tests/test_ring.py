"""Ring arithmetic: the wrap-around interval logic Chord depends on."""

from repro.lib.ring import between, hash_key, ring_add, ring_distance


def test_between_simple_interval():
    assert between(5, 2, 8)
    assert not between(2, 2, 8)
    assert not between(8, 2, 8)
    assert between(2, 2, 8, include_low=True)
    assert between(8, 2, 8, include_high=True)


def test_between_wrap_around():
    # Interval (250, 10) on a 256-ring wraps through zero.
    assert between(255, 250, 10)
    assert between(0, 250, 10)
    assert between(5, 250, 10)
    assert not between(100, 250, 10)
    assert not between(250, 250, 10)
    assert between(10, 250, 10, include_high=True)


def test_between_whole_ring_when_endpoints_equal():
    # low == high covers the whole ring minus the endpoint.
    assert between(1, 7, 7)
    assert between(200, 7, 7)
    assert not between(7, 7, 7)
    assert between(7, 7, 7, include_low=True)
    assert between(7, 7, 7, include_high=True)


def test_between_with_modulus_normalisation():
    assert between(260, 250, 10, modulus=256) == between(4, 250, 10)
    # -6 % 256 == 250, which is the (excluded by default) low endpoint.
    assert not between(-6, 250, 10, modulus=256)
    assert between(-6, 250, 10, modulus=256, include_low=True)


def test_ring_distance_and_add():
    assert ring_distance(250, 10, 8) == 16
    assert ring_distance(10, 250, 8) == 240
    assert ring_distance(7, 7, 8) == 0
    assert ring_add(250, 10, 8) == 4
    assert ring_add(0, 255, 8) == 255


def test_hash_key_is_deterministic_and_respects_width():
    assert hash_key("10.0.0.1:20000") == hash_key("10.0.0.1:20000")
    assert hash_key("a") != hash_key("b")
    for bits in (8, 16, 32):
        assert 0 <= hash_key("some-key", bits) < (1 << bits)
