"""Ring arithmetic: wrap-around intervals (Chord) and prefix digits (Pastry)."""

import pytest

from repro.lib.ring import (
    between,
    digit_at,
    hash_key,
    numeric_distance,
    ring_add,
    ring_distance,
    shared_prefix_length,
)


def test_between_simple_interval():
    assert between(5, 2, 8)
    assert not between(2, 2, 8)
    assert not between(8, 2, 8)
    assert between(2, 2, 8, include_low=True)
    assert between(8, 2, 8, include_high=True)


def test_between_wrap_around():
    # Interval (250, 10) on a 256-ring wraps through zero.
    assert between(255, 250, 10)
    assert between(0, 250, 10)
    assert between(5, 250, 10)
    assert not between(100, 250, 10)
    assert not between(250, 250, 10)
    assert between(10, 250, 10, include_high=True)


def test_between_whole_ring_when_endpoints_equal():
    # low == high covers the whole ring minus the endpoint.
    assert between(1, 7, 7)
    assert between(200, 7, 7)
    assert not between(7, 7, 7)
    assert between(7, 7, 7, include_low=True)
    assert between(7, 7, 7, include_high=True)


def test_between_with_modulus_normalisation():
    assert between(260, 250, 10, modulus=256) == between(4, 250, 10)
    # -6 % 256 == 250, which is the (excluded by default) low endpoint.
    assert not between(-6, 250, 10, modulus=256)
    assert between(-6, 250, 10, modulus=256, include_low=True)


def test_ring_distance_and_add():
    assert ring_distance(250, 10, 8) == 16
    assert ring_distance(10, 250, 8) == 240
    assert ring_distance(7, 7, 8) == 0
    assert ring_add(250, 10, 8) == 4
    assert ring_add(0, 255, 8) == 255


def test_hash_key_is_deterministic_and_respects_width():
    assert hash_key("10.0.0.1:20000") == hash_key("10.0.0.1:20000")
    assert hash_key("a") != hash_key("b")
    for bits in (8, 16, 32):
        assert 0 <= hash_key("some-key", bits) < (1 << bits)


# ------------------------------------------------- Pastry prefix primitives
def test_shared_prefix_length_counts_leading_common_digits():
    # 16-bit ids as 4 hex digits: 0xAB12 vs 0xAB9F share "AB".
    assert shared_prefix_length(0xAB12, 0xAB9F, digits=4, base_bits=4) == 2
    assert shared_prefix_length(0xAB12, 0xAB17, digits=4, base_bits=4) == 3
    assert shared_prefix_length(0xAB12, 0x1B12, digits=4, base_bits=4) == 0


def test_shared_prefix_length_of_identical_ids_is_the_digit_count():
    assert shared_prefix_length(0xAB12, 0xAB12, digits=4, base_bits=4) == 4
    assert shared_prefix_length(0, 0, digits=8, base_bits=2) == 8


def test_shared_prefix_length_with_base_bits_one_counts_matching_bits():
    # base_bits > 1 vs base_bits == 1: 0b1101 vs 0b1100 share 3 leading bits.
    assert shared_prefix_length(0b1101, 0b1100, digits=4, base_bits=1) == 3
    # ...but only 1 leading 2-bit digit (11 vs 11, then 01 vs 00).
    assert shared_prefix_length(0b1101, 0b1100, digits=2, base_bits=2) == 1


def test_digit_at_extracts_most_significant_first():
    assert digit_at(0xAB12, 0, digits=4, base_bits=4) == 0xA
    assert digit_at(0xAB12, 1, digits=4, base_bits=4) == 0xB
    assert digit_at(0xAB12, 3, digits=4, base_bits=4) == 0x2
    # Leading zeros are real digits.
    assert digit_at(0x0012, 0, digits=4, base_bits=4) == 0
    assert digit_at(0b1101, 2, digits=4, base_bits=1) == 0


def test_digit_at_rejects_positions_beyond_the_digit_count():
    for position in (-1, 4, 100):
        with pytest.raises(ValueError):
            digit_at(0xAB12, position, digits=4, base_bits=4)


def test_prefix_helpers_agree_on_the_first_differing_digit():
    a, b = 0xAB12, 0xABF2
    prefix = shared_prefix_length(a, b, digits=4, base_bits=4)
    assert prefix == 2
    assert digit_at(a, prefix, digits=4, base_bits=4) != digit_at(
        b, prefix, digits=4, base_bits=4)


def test_numeric_distance_is_symmetric_and_wraps():
    assert numeric_distance(10, 250, 8) == 16
    assert numeric_distance(250, 10, 8) == 16
    assert numeric_distance(7, 7, 8) == 0
    assert numeric_distance(0, 128, 8) == 128  # antipodal
    assert numeric_distance(0, 129, 8) == 127
