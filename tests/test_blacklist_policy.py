"""Blacklist matching and socket policy enforcement."""

import pytest

from repro.core.blacklist import Blacklist
from repro.lib.sbsocket import (
    RestrictedSocket,
    SocketPolicy,
    SocketRestrictionError,
)
from repro.net.address import Address
from repro.net.network import Network
from repro.sim.events_api import AppContext
from repro.sim.kernel import Simulator


def test_blacklist_exact_and_cidr_matching():
    blacklist = Blacklist(["10.0.0.5", "192.168.1.0/24"])
    assert blacklist.is_forbidden("10.0.0.5")
    assert not blacklist.is_forbidden("10.0.0.6")
    assert blacklist.is_forbidden("192.168.1.1")
    assert blacklist.is_forbidden("192.168.1.254")
    assert not blacklist.is_forbidden("192.168.2.1")


def test_blacklist_wildcard_and_hostnames():
    assert Blacklist(["*"]).is_forbidden("1.2.3.4")
    named = Blacklist(["badhost"])
    assert named.is_forbidden("badhost")
    assert not named.is_forbidden("goodhost")


def test_blacklist_merge_is_a_union():
    merged = Blacklist(["10.0.0.1"]).merged_with(Blacklist(["10.1.0.0/16"]))
    assert merged.is_forbidden("10.0.0.1")
    assert merged.is_forbidden("10.1.2.3")
    assert not merged.is_forbidden("10.2.0.1")


def test_malformed_cidr_rejected():
    with pytest.raises(ValueError):
        Blacklist(["10.0.0.0/40"])
    with pytest.raises(ValueError):
        Blacklist(["nonsense/8"])


def test_policy_merge_unions_both_blacklists():
    local = SocketPolicy(blacklist=Blacklist(["10.9.0.0/16"]))
    remote = SocketPolicy(blacklist=Blacklist(["10.0.0.5"]))
    merged = local.merged_with(remote)
    assert merged.blacklist.is_forbidden("10.9.1.2")
    assert merged.blacklist.is_forbidden("10.0.0.5")


def test_policy_merge_keeps_the_stricter_limit():
    local = SocketPolicy(max_total_bytes=1000, drop_rate=0.1,
                        blacklist=Blacklist(["10.0.0.9"]))
    remote = SocketPolicy(max_total_bytes=500, max_sockets=2, drop_rate=0.05)
    merged = local.merged_with(remote)
    assert merged.max_total_bytes == 500
    assert merged.max_sockets == 2
    assert merged.drop_rate == 0.1
    assert merged.blacklist.is_forbidden("10.0.0.9")


def test_restricted_socket_refuses_blacklisted_destination():
    sim = Simulator()
    network = Network(sim)

    class _Host:
        ip, alive = "10.0.0.1", True

    network.add_host(_Host())
    context = AppContext(sim)
    policy = SocketPolicy(blacklist=Blacklist(["10.9.0.0/16"]))
    socket = RestrictedSocket(network, context, Address("10.0.0.1", 1), policy=policy)
    with pytest.raises(SocketRestrictionError, match="blacklisted"):
        socket.send("10.9.1.2:2000", "payload")
    assert socket.stats.messages_refused == 1


def test_restricted_socket_enforces_traffic_budget():
    sim = Simulator()
    network = Network(sim)

    class _Host:
        ip, alive = "10.0.0.1", True

    network.add_host(_Host())
    context = AppContext(sim)
    socket = RestrictedSocket(network, context, Address("10.0.0.1", 1),
                              policy=SocketPolicy(max_total_bytes=50))
    socket.send("10.0.0.1:9", "x", size=40)
    with pytest.raises(SocketRestrictionError, match="budget"):
        socket.send("10.0.0.1:9", "x", size=40)
