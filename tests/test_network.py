"""Network: delivery, drop paths, listener lifecycle."""

import pytest

from repro.net.address import Address
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.events_api import AppContext
from repro.sim.kernel import Simulator


class _Host:
    def __init__(self, ip):
        self.ip = ip
        self.alive = True


def _net(seed=0, **kwargs):
    sim = Simulator(seed)
    network = Network(sim, latency=ConstantLatency(0.010), seed=seed, **kwargs)
    a, b = _Host("10.0.0.1"), _Host("10.0.0.2")
    network.add_host(a)
    network.add_host(b)
    return sim, network, a, b


def test_send_delivers_to_live_listener_after_latency():
    sim, network, _a, _b = _net()
    src, dst = Address("10.0.0.1", 1), Address("10.0.0.2", 2)
    inbox = []
    network.listen(dst, inbox.append)
    outcome = network.send(src, dst, {"hello": 1}, size=100)
    assert not outcome.done()
    sim.run()
    assert outcome.result() is True
    assert len(inbox) == 1
    assert inbox[0].payload == {"hello": 1}
    assert inbox[0].src == src
    assert network.stats.messages_delivered == 1
    assert sim.now == pytest.approx(0.010, rel=0.01)


def test_send_to_dead_host_is_dropped_immediately():
    sim, network, _a, b = _net()
    b.alive = False
    outcome = network.send(Address("10.0.0.1", 1), Address("10.0.0.2", 2), "x", 10)
    assert outcome.result() is False
    assert network.stats.messages_dropped == 1


def test_send_without_listener_is_dropped_on_delivery():
    sim, network, _a, _b = _net()
    outcome = network.send(Address("10.0.0.1", 1), Address("10.0.0.2", 2), "x", 10)
    sim.run()
    assert outcome.result() is False
    assert network.stats.messages_dropped == 1
    assert network.stats.messages_delivered == 0


def test_host_dying_in_flight_drops_the_message():
    sim, network, _a, b = _net()
    dst = Address("10.0.0.2", 2)
    network.listen(dst, lambda m: None)
    outcome = network.send(Address("10.0.0.1", 1), dst, "x", 10)
    sim.schedule(0.005, lambda: setattr(b, "alive", False))
    sim.run()
    assert outcome.result() is False


def test_loss_model_drops_everything_at_rate_one():
    sim, network, _a, _b = _net()
    network.loss.set_pair_rate("10.0.0.1", "10.0.0.2", 1.0)
    dst = Address("10.0.0.2", 2)
    network.listen(dst, lambda m: None)
    outcomes = [network.send(Address("10.0.0.1", 1), dst, i, 10) for i in range(5)]
    sim.run()
    assert all(o.result() is False for o in outcomes)
    assert network.stats.messages_dropped == 5


def test_listener_tied_to_dead_context_stops_receiving():
    sim, network, _a, _b = _net()
    context = AppContext(sim, name="victim")
    dst = Address("10.0.0.2", 2)
    inbox = []
    network.listen(dst, inbox.append, context=context)
    context.kill()
    outcome = network.send(Address("10.0.0.1", 1), dst, "x", 10)
    sim.run()
    assert outcome.result() is False
    assert inbox == []
    assert not network.is_listening(dst)


def test_handler_errors_are_recorded_not_raised_by_default():
    sim, network, _a, _b = _net()
    dst = Address("10.0.0.2", 2)

    def broken(_message):
        raise RuntimeError("boom")

    network.listen(dst, broken)
    outcome = network.send(Address("10.0.0.1", 1), dst, "x", 10)
    sim.run()
    assert outcome.result() is False
    assert network.stats.handler_errors == 1
