"""Kernel: virtual clock, event ordering, determinism."""

import pytest

from repro.sim.kernel import Simulator


def test_same_instant_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "a")
    sim.schedule(1.0, order.append, "b")
    sim.schedule(0.5, order.append, "c")
    sim.schedule(1.0, order.append, "d")
    sim.run()
    assert order == ["c", "a", "b", "d"]


def test_run_until_advances_clock_without_firing_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    assert sim.run(until=2.0) == 2.0
    assert fired == []
    assert sim.now == 2.0
    sim.run()
    assert fired == ["late"]
    assert sim.now == 5.0


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.schedule(1.0, fired.append, "y")
    event.cancel()
    sim.run()
    assert fired == ["y"]
    assert not event.pending


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_event_callbacks_scheduling_more_events():
    sim = Simulator()
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) < 3:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run()
    assert ticks == [1.0, 2.0, 3.0]


def test_two_seeded_runs_produce_identical_traces():
    def trace(seed):
        sim = Simulator(seed)
        out = []

        def step(label):
            out.append((round(sim.now, 9), label, sim.rng.random()))
            if len(out) < 50:
                sim.schedule(sim.rng.uniform(0.0, 2.0), step, label + 1)

        sim.schedule(0.0, step, 0)
        sim.run()
        return out

    assert trace(42) == trace(42)
    assert trace(42) != trace(43)
