"""Kernel: virtual clock, event ordering, determinism, timer wheel."""

import pytest

from repro.sim.kernel import Simulator

KERNELS = ("wheel", "heap")


@pytest.mark.parametrize("kernel", KERNELS)
def test_same_instant_events_fire_in_schedule_order(kernel):
    sim = Simulator(kernel=kernel)
    order = []
    sim.schedule(1.0, order.append, "a")
    sim.schedule(1.0, order.append, "b")
    sim.schedule(0.5, order.append, "c")
    sim.schedule(1.0, order.append, "d")
    sim.run()
    assert order == ["c", "a", "b", "d"]


@pytest.mark.parametrize("kernel", KERNELS)
def test_run_until_advances_clock_without_firing_later_events(kernel):
    sim = Simulator(kernel=kernel)
    fired = []
    sim.schedule(5.0, fired.append, "late")
    assert sim.run(until=2.0) == 2.0
    assert fired == []
    assert sim.now == 2.0
    sim.run()
    assert fired == ["late"]
    assert sim.now == 5.0


@pytest.mark.parametrize("kernel", KERNELS)
def test_cancelled_events_do_not_fire(kernel):
    sim = Simulator(kernel=kernel)
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.schedule(1.0, fired.append, "y")
    event.cancel()
    sim.run()
    assert fired == ["y"]
    assert not event.pending


@pytest.mark.parametrize("kernel", KERNELS)
def test_cannot_schedule_in_the_past(kernel):
    sim = Simulator(kernel=kernel)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


@pytest.mark.parametrize("kernel", KERNELS)
def test_event_callbacks_scheduling_more_events(kernel):
    sim = Simulator(kernel=kernel)
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) < 3:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run()
    assert ticks == [1.0, 2.0, 3.0]


@pytest.mark.parametrize("kernel", KERNELS)
def test_two_seeded_runs_produce_identical_traces(kernel):
    def trace(seed):
        sim = Simulator(seed, kernel=kernel)
        out = []

        def step(label):
            out.append((round(sim.now, 9), label, sim.rng.random()))
            if len(out) < 50:
                sim.schedule(sim.rng.uniform(0.0, 2.0), step, label + 1)

        sim.schedule(0.0, step, 0)
        sim.run()
        return out

    assert trace(42) == trace(42)
    assert trace(42) != trace(43)


# ------------------------------------------------------------- stop() + until
@pytest.mark.parametrize("kernel", KERNELS)
def test_stop_during_run_until_does_not_jump_the_clock(kernel):
    """Regression: stop() mid-run used to take the while/else branch and jump
    ``now`` to ``until`` even though unexecuted events remained before it —
    making subsequent schedule_at calls raise "cannot schedule in the past"."""
    sim = Simulator(kernel=kernel)
    fired = []

    def first():
        fired.append(sim.now)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, fired.append, 2.0)  # still pending when stop() fires
    assert sim.run(until=10.0) == 1.0
    assert sim.now == 1.0
    assert fired == [1.0]
    assert sim.pending_events == 1
    # The window between the stop point and `until` must stay schedulable.
    sim.schedule_at(1.5, fired.append, 1.5)
    sim.run(until=10.0)
    assert fired == [1.0, 1.5, 2.0]
    assert sim.now == 10.0


@pytest.mark.parametrize("kernel", KERNELS)
def test_drained_run_until_still_advances_the_clock(kernel):
    sim = Simulator(kernel=kernel)
    sim.schedule(1.0, lambda: None)
    assert sim.run(until=30.0) == 30.0
    assert sim.now == 30.0


# ---------------------------------------------------------- pending counter
@pytest.mark.parametrize("kernel", KERNELS)
def test_pending_events_counter_tracks_schedules_cancels_and_fires(kernel):
    sim = Simulator(kernel=kernel)
    events = [sim.schedule(float(i % 7), lambda: None) for i in range(50)]
    assert sim.pending_events == 50
    for event in events[::2]:
        event.cancel()
    assert sim.pending_events == 25
    events[0].cancel()  # double-cancel must not double-count
    assert sim.pending_events == 25
    sim.run()
    assert sim.pending_events == 0
    events[1].cancel()  # cancel after firing is a no-op
    assert sim.pending_events == 0


@pytest.mark.parametrize("kernel", KERNELS)
def test_clear_resets_pending_and_later_cancels_are_neutral(kernel):
    sim = Simulator(kernel=kernel)
    stale = sim.schedule(5.0, lambda: None)
    sim.schedule(6.0, lambda: None)
    sim.clear()
    assert sim.pending_events == 0
    stale.cancel()  # scheduled before the clear(): must not go negative
    assert sim.pending_events == 0
    sim.schedule(1.0, lambda: None)
    assert sim.pending_events == 1
    assert sim.run() == 1.0


# ------------------------------------------------------------- wheel details
def test_wheel_and_heap_execute_identical_orders_across_structures():
    """Mixed workload spanning the ready deque, wheel buckets and the
    overflow heap (delays far beyond the wheel horizon) must execute in
    exactly the same (time, seq) order on both kernels."""
    def trace(kernel):
        sim = Simulator(3, kernel=kernel)
        out = []

        def emit(tag):
            out.append((round(sim.now, 9), tag))

        def burst(tag):
            emit(tag)
            # same-instant follow-ups exercise the ready deque
            sim.schedule(0.0, emit, f"{tag}/soon")
            if len(out) < 400:
                delay = sim.rng.choice([0.0, 0.001, 0.0499, 0.05, 1.0 / 3.0,
                                        2.5, 60.0, 500.0, 10_000.0])
                sim.schedule(delay, burst, f"{tag}+")

        for i in range(8):
            sim.schedule(i * 0.013, burst, f"n{i}")
        sim.run()
        return out

    assert trace("wheel") == trace("heap")


def test_wheel_events_cancelled_inside_buckets_and_overflow():
    sim = Simulator(kernel="wheel")
    fired = []
    near = sim.schedule(0.2, fired.append, "near")       # wheel bucket
    far = sim.schedule(100_000.0, fired.append, "far")   # overflow heap
    keep = sim.schedule(0.3, fired.append, "keep")
    near.cancel()
    far.cancel()
    sim.run()
    assert fired == ["keep"]
    assert keep.fired and not near.fired and not far.fired
    assert sim.pending_events == 0


def test_wheel_overflow_ghost_purge_keeps_counts_consistent():
    sim = Simulator(kernel="wheel")
    far = [sim.schedule(100_000.0 + i, lambda: None) for i in range(300)]
    for event in far[:299]:
        event.cancel()  # triggers the lazy overflow compaction
    assert sim.pending_events == 1
    sim.run()
    assert sim.executed_events == 1
    assert sim.pending_events == 0


def test_scheduling_into_the_jumped_until_window_works_on_the_wheel():
    sim = Simulator(kernel="wheel")
    sim.schedule(100.0, lambda: None)
    sim.run(until=7.03)  # clock parks mid-bucket, ahead of the wheel cursor
    fired = []
    sim.schedule(0.0, fired.append, "soon")
    sim.schedule_at(7.04, fired.append, "mid")
    sim.schedule(0.5, fired.append, "later")
    sim.run(until=9.0)
    assert fired == ["soon", "mid", "later"]
    assert sim.now == 9.0


def test_call_soon_runs_after_already_scheduled_same_time_events():
    for kernel in KERNELS:
        sim = Simulator(kernel=kernel)
        order = []
        sim.schedule(0.0, order.append, "first")
        sim.call_soon(order.append, "second")
        sim.run()
        assert order == ["first", "second"], kernel


def test_unknown_kernel_is_rejected():
    with pytest.raises(ValueError):
        Simulator(kernel="splay-tree")


# ------------------------------------------------------------------ pids
def test_pids_are_per_simulator_and_reproducible():
    from repro.sim.process import Process

    def pids():
        sim = Simulator(1)
        procs = [Process(sim, (lambda: (yield 0.0))(), name=f"p{i}")
                 for i in range(5)]
        return [p.pid for p in procs]

    first = pids()
    second = pids()  # same process, fresh simulator: identical pid sequence
    assert first == second == [1, 2, 3, 4, 5]


# ------------------------------------------------------------------ free list
#: execution-order digest of the churny free-list workload below — committed
#: so any event-recycling change that perturbs ordering fails loudly
_FREE_LIST_ORDER_DIGEST = "73985cd4ddd3dcf9"


def _churny_free_list_run(kernel):
    """An RPC-shaped workload (timers mostly cancelled) that exercises the
    event free list hard; returns the simulator and its fire-order digest."""
    import hashlib

    sim = Simulator(11, kernel=kernel)
    rng = sim.rng
    order = []

    def noop():
        return None

    def fire(i):
        order.append((repr(sim.now), i))
        timer = sim.schedule(3.0, noop)       # RPC-style timeout guard
        if rng.random() < 0.7:
            sim.schedule(0.05, timer.cancel)  # the reply arrived: cancel it
        sim.schedule(rng.random(), fire, i)   # next round

    for i in range(20):
        sim.schedule(rng.random(), fire, i)
    sim.run(until=30.0)
    digest = hashlib.sha256(repr(order).encode()).hexdigest()[:16]
    return sim, digest


@pytest.mark.parametrize("kernel", KERNELS)
def test_free_list_recycling_preserves_event_order(kernel):
    sim, digest = _churny_free_list_run(kernel)
    assert digest == _FREE_LIST_ORDER_DIGEST
    # The free list actually recycled: executed far more events than live
    # ScheduledEvent objects, and the list holds returned carcasses.
    assert sim.executed_events > 2000
    assert len(sim._free) > 0


@pytest.mark.parametrize("kernel", KERNELS)
def test_free_list_never_recycles_externally_held_events(kernel):
    sim = Simulator(3, kernel=kernel)
    fired = []
    handle = sim.schedule(1.0, fired.append, "kept")
    sim.schedule(2.0, fired.append, "later")
    sim.run()
    assert fired == ["kept", "later"]
    # We still hold ``handle``, so the refcount guard must have skipped it:
    # its identity (callback cleared = recycled) is intact and it is not on
    # the free list awaiting reuse.
    assert handle.fired
    assert handle.callback is not None
    assert all(ev is not handle for ev in sim._free)


@pytest.mark.parametrize("kernel", KERNELS)
def test_free_list_recycles_unreferenced_cancelled_events(kernel):
    # Cancelled timers whose handles are dropped (the RPC pattern: the reply
    # cancels the timeout timer and forgets it) must be reclaimed when the
    # kernel skips over their queue entries — not only executed events.
    sim = Simulator(7, kernel=kernel)
    for _ in range(50):
        sim.schedule(1.0, lambda: None).cancel()
    sim.schedule(2.0, lambda: None)  # something to run past the carcasses
    sim.run()
    # 50 cancelled + 1 fired event went through; nothing external holds them.
    assert len(sim._free) == 51


@pytest.mark.parametrize("kernel", KERNELS)
def test_free_list_never_recycles_held_cancelled_events(kernel):
    sim = Simulator(7, kernel=kernel)
    held = sim.schedule(1.0, lambda: None)
    held.cancel()
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert held.cancelled
    assert all(ev is not held for ev in sim._free)
