"""GC discipline and incrementally maintained job-store views.

The two perf cuts behind the flattened per-event cost curve are guarded
here: the host-interpreter GC policy (``repro.sim.gcpolicy``) must be
digest-neutral across every workload and kernel, and the cached
alive/live sets (``runtime/jobstore.py`` / ``core/jobs.py``) must stay
coherent with a from-scratch recompute through instance churn, scripted
host churn and trace-driven host churn — with the runtime sanitizer able
to catch any cache that goes stale.
"""

import gc

import pytest

from repro.apps.chord import run_chord_scenario
from repro.apps.dissemination import run_dissemination_scenario
from repro.apps.gossip import run_gossip_scenario
from repro.apps.harness import report_digest
from repro.apps.pastry import run_pastry_scenario
from repro.core.churn import synthetic_availability_trace
from repro.core.jobs import JobSpec
from repro.net.network import Network
from repro.runtime.controller import Controller
from repro.runtime.splayd import Splayd, SplaydLimits
from repro.sim.gcpolicy import GC_MODES, GCPolicy, TUNED_THRESHOLDS
from repro.sim.kernel import Simulator
from repro.sim.sanitizer import Sanitizer

RUNNERS = {
    "chord": run_chord_scenario,
    "pastry": run_pastry_scenario,
    "gossip": run_gossip_scenario,
    "dissemination": run_dissemination_scenario,
}

#: small-but-real cell every parity test runs (short mode keeps CI fast)
CELL = dict(nodes=12, seed=11, duration="short")


# ------------------------------------------------------------- digest parity
@pytest.mark.parametrize("workload", sorted(RUNNERS))
@pytest.mark.parametrize("kernel", ["wheel", "heap"])
def test_digest_identical_with_gc_policy_and_caches_toggled(workload, kernel):
    # The whole point of the perf knobs: flipping them must never move a
    # digest-relevant byte, on any workload, on either kernel.
    runner = RUNNERS[workload]
    plain = runner(kernel=kernel, gc_policy="off", store_caches=False, **CELL)
    tuned = runner(kernel=kernel, gc_policy="tuned", store_caches=True, **CELL)
    assert report_digest(plain) == report_digest(tuned)


def test_digest_identical_in_manual_mode_under_churn():
    # Manual mode disables ambient collection and collects at drain
    # checkpoints — still invisible to the simulation, even while churn
    # exercises the invalidation paths.
    base = dict(nodes=12, seed=7, duration="short", churn=True)
    plain = run_chord_scenario(gc_policy="off", store_caches=False, **base)
    manual = run_chord_scenario(gc_policy="manual", store_caches=True, **base)
    assert report_digest(plain) == report_digest(manual)
    assert gc.isenabled()  # disengage() restored the collector


# --------------------------------------------------------- gc policy lifecycle
def test_gc_policy_rejects_unknown_modes():
    with pytest.raises(ValueError):
        GCPolicy("aggressive")
    assert set(GC_MODES) == {"off", "tuned", "manual"}


def test_gc_policy_engage_disengage_restores_interpreter_state():
    before_thresholds = gc.get_threshold()
    before_enabled = gc.isenabled()
    policy = GCPolicy("manual").engage()
    assert gc.get_threshold() == TUNED_THRESHOLDS
    policy.after_deploy()
    assert not gc.isenabled()  # manual mode owns collection points
    assert policy.frozen_objects > 0
    policy.checkpoint()
    assert policy.explicit_collects >= 2  # after_deploy's gen2 + checkpoint
    policy.disengage()
    assert gc.get_threshold() == before_thresholds
    assert gc.isenabled() == before_enabled
    # Idempotent: a second disengage must not double-restore or collect.
    collects = policy.explicit_collects
    policy.disengage()
    assert policy.explicit_collects == collects


def test_gc_policy_section_reports_counters():
    policy = GCPolicy("tuned").engage()
    policy.after_deploy()
    policy.disengage()
    section = policy.section()
    assert section["mode"] == "tuned"
    assert section["explicit_collects"] == 1
    assert section["frozen_objects"] > 0
    assert section["pause_wall_s"] >= 0.0
    assert len(section["ambient_collections"]) == 3


def test_tuned_gc_section_lands_in_the_report_and_not_the_digest():
    report = run_chord_scenario(gc_policy="tuned", **CELL)
    assert report["gc"]["mode"] == "tuned"
    assert report["gc"]["frozen_objects"] > 0
    assert report["phase_wall"]["deploy"] >= 0.0
    stripped = {k: v for k, v in report.items() if k not in ("gc", "phase_wall")}
    assert report_digest(stripped) == report_digest(report)


# ------------------------------------------------------------- cached views
def _world(seed=0, daemons=6, max_instances=4, caches=True):
    sim = Simulator(seed)
    network = Network(sim, seed=seed)
    controller = Controller(sim, network, seed=seed, store_caches=caches)
    for i in range(daemons):
        controller.register_daemon(Splayd(
            sim, network, f"10.0.0.{i + 1}",
            SplaydLimits(max_instances=max_instances)))
    return sim, network, controller


def _store_views(controller):
    return (controller.alive_host_ips(), controller.failed_host_ips(),
            [d.ip for d in controller.store.alive_daemons()])


def test_cached_views_track_instance_and_host_churn():
    sim, _network, controller = _world()
    job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                    instances=8))
    controller.start(job)
    store = controller.store
    assert [i.instance_id for i in job.live_instances()] == list(range(8))

    # Instance death through the daemon's reap path invalidates the job's
    # live view.
    victim = job.live_instances()[3]
    controller.kill_instance(victim, reason="test")
    sim.run(until=sim.now + 1.0)
    assert victim not in job.live_instances()
    assert job.live_instances() == job._recompute_live_instances()

    # Host failure invalidates every store-level view.
    controller.fail_host("10.0.0.2")
    assert "10.0.0.2" in controller.failed_host_ips()
    assert "10.0.0.2" not in controller.alive_host_ips()
    assert controller.alive_host_ips() == sorted(
        d.ip for d in store.daemons.values() if d.alive)
    controller.recover_host("10.0.0.2")
    assert "10.0.0.2" in controller.alive_host_ips()
    assert controller.failed_host_ips() == []
    assert job.live_instances() == job._recompute_live_instances()


def test_cached_and_uncached_worlds_agree_through_host_churn():
    def timeline(caches):
        sim, _network, controller = _world(seed=5, caches=caches)
        job = controller.submit(JobSpec(
            name="app", app_factory=lambda i: None, instances=10,
            churn_script=("at 5s crash 30%\nat 8s fail 1\n"
                          "at 12s join 2\nat 15s recover 1\n")))
        controller.start(job)
        snapshots = []
        for until in (6.0, 9.0, 13.0, 20.0):
            sim.run(until=until)
            snapshots.append((_store_views(controller),
                              [i.instance_id for i in job.live_instances()]))
        return snapshots

    assert timeline(caches=True) == timeline(caches=False)


@pytest.mark.parametrize("churn_kwargs", [
    {"churn": True},
    {"churn_trace": synthetic_availability_trace(hosts=6, duration=120.0,
                                                 seed=3)},
], ids=["script-churn", "trace-churn"])
def test_scenario_digests_identical_with_caches_under_churn(churn_kwargs):
    # End-to-end: scripted instance churn and trace-driven host churn both
    # hammer the invalidation paths; the sanitizer cross-checks every cache
    # against a recompute after each control action and must stay silent.
    base = dict(nodes=12, seed=4, duration="short", sanitize=True)
    cached = run_chord_scenario(store_caches=True, **base, **churn_kwargs)
    oracle = run_chord_scenario(store_caches=False, **base, **churn_kwargs)
    assert cached["sanitizer"]["violations"] == 0
    assert report_digest(cached) == report_digest(oracle)


def test_sanitizer_catches_a_stale_alive_cache():
    sim, _network, controller = _world(seed=9)
    san = Sanitizer(sim).install()
    job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                    instances=4))
    controller.start(job)
    store = controller.store
    assert san.counts == {}

    # Corrupt the memoized alive-IP view the way a missed invalidation
    # would: the cache keeps advertising a host that is no longer alive.
    store.alive_host_ips()  # populate
    store._alive_ips_cache.append("10.0.0.99")
    controller.start_instances(job, 1)  # any control action cross-checks
    assert san.counts.get("store_cache", 0) >= 1
    assert any("alive-ip cache" in v.detail for v in san.violations)


def test_sanitizer_catches_a_stale_live_instance_cache():
    sim, _network, controller = _world(seed=9)
    san = Sanitizer(sim).install()
    job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                    instances=4))
    other = controller.submit(JobSpec(name="other",
                                      app_factory=lambda i: None, instances=1))
    controller.start(job)
    job.live_instances().pop()  # mutate the cached list in place
    # A control action on a *different* job cross-checks every job's cache
    # (acting on the corrupted job itself would legitimately invalidate it).
    controller.start(other)
    assert san.counts.get("store_cache", 0) >= 1
    assert any("live-instance cache" in v.detail for v in san.violations)


# ---------------------------------------------------------- bucketed planner
def test_bucketed_placement_matches_the_naive_kill_switch_path():
    # The bucketed planner must consume the RNG and pick daemons exactly
    # like the original sort-the-world-per-instance loop, including across
    # capacity exhaustion and post-churn refills.
    def placements(caches):
        sim, _network, controller = _world(seed=13, daemons=5,
                                           max_instances=3, caches=caches)
        job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                        instances=9))
        controller.start(job)
        controller.fail_host("10.0.0.4")
        sim.run(until=sim.now + 1.0)
        controller.start_instances(job, 4)  # refill after the failure
        return [(p.ip, p.instance_id) for p in job.placements]

    assert placements(caches=True) == placements(caches=False)
