"""Testbeds: preset registry, substrate properties, digest compatibility."""

import pytest

from repro.apps import harness
from repro.apps.chord import run_chord_scenario
from repro.apps.gossip import run_gossip_scenario
from repro.net.hostload import HostLoadModel
from repro.sim.kernel import Simulator
from repro import testbeds
from repro.testbeds import (
    BuiltTestbed,
    TestbedSpec,
    UnknownTestbedError,
    get_testbed,
    register,
)
from repro.testbeds.presets import (
    CLUSTER_ONE_WAY_DELAY,
    PLANETLAB_LINK_BPS,
    PLANETLAB_SUBSTRATE_LOSS,
)

#: report digests captured on the commit *before* the testbeds refactor —
#: the default transit-stub testbed must keep producing exactly these
PRE_TESTBEDS_DIGESTS = {
    "chord-stable": "5b0311d6debf1be8",
    "gossip-stable": "f968ef216e917b76",
    "chord-churn": "a4225db7940032d4",
}


def _build(name, hosts=8, seed=0):
    sim = Simulator(seed)
    ips = harness.host_ips(hosts)
    return sim, ips, get_testbed(name).build(sim, ips, seed)


# ------------------------------------------------------------------- registry
def test_builtin_presets_are_registered_with_the_default_first():
    names = testbeds.testbed_names()
    assert names[0] == "transit-stub"
    assert set(names) >= {"transit-stub", "cluster", "planetlab", "mixed"}


def test_unknown_testbed_raises_with_known_names():
    with pytest.raises(UnknownTestbedError, match="transit-stub"):
        get_testbed("modelnet-xl")


def test_registering_a_conflicting_name_is_rejected():
    def _builder(sim, ips, seed):  # pragma: no cover - never built
        return BuiltTestbed(name="cluster", network=None)

    with pytest.raises(ValueError, match="already registered"):
        register(TestbedSpec(name="cluster", help="imposter", builder=_builder))


def test_every_preset_shares_the_default_host_policy():
    for name in testbeds.testbed_names():
        assert get_testbed(name).default_hosts(50) == 25
        assert get_testbed(name).default_hosts(4) == 8


# -------------------------------------------------------------------- presets
def test_cluster_is_uniform_and_lossless():
    _sim, ips, built = _build("cluster")
    delays = {built.network.one_way_delay(a, b)
              for a in ips for b in ips if a != b}
    assert delays == {CLUSTER_ONE_WAY_DELAY}
    assert built.network.loss.rate_for(ips[0], ips[1]) == 0.0
    assert built.topology is None
    assert built.description["testbed"] == "cluster"


def test_transit_stub_preset_matches_the_historical_substrate():
    _sim, ips, built = _build("transit-stub")
    assert built.topology is not None
    # the report's topology entry is exactly the topology description
    assert built.description == built.topology.describe()
    up, down = built.network.bandwidth.capacity(ips[0])
    assert up == down == built.topology.link_bandwidth_bps


def test_planetlab_latencies_are_heavy_tailed_and_deterministic():
    _sim, ips, built = _build("planetlab")
    pairs = [(ips[i], ips[j]) for i in range(4) for j in range(i + 1, 4)]
    delays = [built.network.one_way_delay(a, b) for a, b in pairs]
    assert all(d > 0 for d in delays)
    assert len(set(delays)) > 1  # pairwise, not uniform
    # same seed, fresh build -> same delays
    _sim2, ips2, built2 = _build("planetlab")
    assert [built2.network.one_way_delay(a, b) for a, b in pairs] == delays


def test_planetlab_has_substrate_loss_and_host_load():
    _sim, ips, built = _build("planetlab")
    assert built.network.loss.rate_for(ips[0], ips[1]) == PLANETLAB_SUBSTRATE_LOSS
    up, _down = built.network.bandwidth.capacity(ips[0])
    assert up == PLANETLAB_LINK_BPS
    # every host pays a load-dependent processing delay on message delivery
    base = built.network.latency.one_way(ips[0], ips[1])
    from repro.net.address import Address
    total = built.network._message_delay(Address(ips[0], 1), Address(ips[1], 2), 100)
    assert total > base


def test_mixed_splits_hosts_and_keeps_loss_on_the_planetlab_half():
    _sim, ips, built = _build("mixed", hosts=8)
    cluster = [ip for ip in ips if built.groups[ip] == "cluster"]
    planetlab = [ip for ip in ips if built.groups[ip] == "planetlab"]
    assert len(cluster) == len(planetlab) == 4
    # intra-cluster pairs behave like the cluster preset
    assert built.network.one_way_delay(cluster[0], cluster[1]) == CLUSTER_ONE_WAY_DELAY
    assert built.network.loss.rate_for(cluster[0], cluster[1]) == 0.0
    # anything touching the PlanetLab half sees substrate loss
    assert built.network.loss.rate_for(cluster[0], planetlab[0]) == \
        PLANETLAB_SUBSTRATE_LOSS
    assert built.network.loss.rate_for(planetlab[0], planetlab[1]) == \
        PLANETLAB_SUBSTRATE_LOSS
    # cross-group delay is wide-area, not the cluster constant
    assert built.network.one_way_delay(cluster[0], planetlab[0]) != \
        CLUSTER_ONE_WAY_DELAY


# ------------------------------------------------------------------ host load
def test_host_load_model_is_deterministic_and_size_monotonic():
    first = HostLoadModel(seed=5)
    second = HostLoadModel(seed=5)
    assert first.load_of("10.0.0.1") == second.load_of("10.0.0.1")
    assert first.load_of("10.0.0.1") >= 1.0
    assert first.delay("10.0.0.1", 10_000) > first.delay("10.0.0.1", 100)
    hook = first.hook_for("10.0.0.2")
    assert hook(500) == pytest.approx(first.delay("10.0.0.2", 500))


def test_host_load_model_has_a_heavy_tail():
    model = HostLoadModel(seed=1, heavy_fraction=0.25, heavy_multiplier=8.0)
    loads = [model.load_of(f"10.0.{i // 256}.{i % 256}") for i in range(200)]
    heavy = [load for load in loads if load > 3.0]
    assert heavy  # some hosts are overloaded
    assert len(heavy) < len(loads) / 2  # ... but most are not


# ------------------------------------------------------- digest compatibility
def test_default_testbed_report_digest_is_unchanged_from_pre_testbeds():
    report = run_chord_scenario(nodes=10, hosts=5, seed=1, lookups=30,
                                join_window=20.0, settle=40.0)
    assert report["testbed"] == "transit-stub"
    assert harness.report_digest(report) == PRE_TESTBEDS_DIGESTS["chord-stable"]

    report = run_gossip_scenario(nodes=12, hosts=6, seed=1, broadcasts=20,
                                 join_window=15.0, settle=30.0)
    assert harness.report_digest(report) == PRE_TESTBEDS_DIGESTS["gossip-stable"]


@pytest.mark.slow
def test_default_testbed_digest_is_unchanged_under_flagship_churn():
    report = run_chord_scenario(nodes=12, hosts=8, seed=11, churn=True,
                                lookups=15, join_window=30.0, settle=40.0)
    assert harness.report_digest(report) == PRE_TESTBEDS_DIGESTS["chord-churn"]


def test_testbed_name_is_recorded_but_excluded_from_the_digest():
    assert "testbed" in harness.DIGEST_EXCLUDED_KEYS
    report = {"scenario": "x", "testbed": "planetlab", "measured": {"a": 1}}
    renamed = dict(report, testbed="cluster")
    assert harness.report_digest(report) == harness.report_digest(renamed)


def test_changing_the_testbed_changes_workload_results():
    config = dict(nodes=10, hosts=5, seed=1, lookups=12, duration="short")
    default = run_chord_scenario(**config)
    cluster = run_chord_scenario(testbed="cluster", **config)
    assert default["measured"] != cluster["measured"]
    assert harness.report_digest(default) != harness.report_digest(cluster)
    # the cluster's uniform sub-millisecond RTTs show up in the latencies
    assert cluster["measured"]["latency_p50_ms"] < \
        default["measured"]["latency_p50_ms"]


def test_planetlab_scenario_runs_end_to_end_with_flagship_churn():
    report = run_gossip_scenario(nodes=12, hosts=6, seed=1, broadcasts=12,
                                 churn=True, duration="short",
                                 testbed="planetlab")
    assert report["testbed"] == "planetlab"
    assert report["topology"]["testbed"] == "planetlab"
    assert report["measured"]["success_rate"] >= 0.9
    # the substrate dropped traffic (lossy testbed), yet the workload held up
    assert report["network"]["messages_dropped"] > 0


def test_mixed_scenario_runs_end_to_end_with_flagship_churn():
    report = run_chord_scenario(nodes=12, hosts=6, seed=1, lookups=12,
                                churn=True, duration="short", testbed="mixed")
    assert report["testbed"] == "mixed"
    assert report["topology"]["cluster_hosts"] == 3
    assert report["topology"]["planetlab_hosts"] == 3
    assert report["measured"]["success_rate"] >= 0.9
