"""Chord: ring formation, lookup correctness, and recovery under churn."""

import pytest

from repro.apps.chord import chord_factory
from repro.core.jobs import JobSpec
from repro.lib.ring import ring_distance
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.runtime.controller import Controller
from repro.runtime.splayd import Splayd, SplaydLimits
from repro.sim.kernel import Simulator
from repro.sim.process import Process

BITS = 16


def _deploy(nodes=10, seed=0, churn_script=None):
    sim = Simulator(seed)
    network = Network(sim, latency=ConstantLatency(0.010), seed=seed)
    controller = Controller(sim, network, seed=seed)
    for i in range(nodes):
        controller.register_daemon(
            Splayd(sim, network, f"10.0.0.{i + 1}", SplaydLimits(max_instances=3)))
    spec = JobSpec(
        name="chord",
        app_factory=chord_factory(),
        instances=nodes,
        churn_script=churn_script,
        options={"bits": BITS, "join_window": 10.0,
                 "stabilize_interval": 2.0, "fix_fingers_interval": 2.0},
    )
    job = controller.submit(spec)
    controller.start(job)
    return sim, controller, job


def _members(job):
    return sorted(job.shared["chord_members"], key=lambda m: m.id)


def _expected_owner(job, key):
    return min(_members(job),
               key=lambda m: (ring_distance(key, m.id, BITS), m.ip, m.port))


def _run_lookup(sim, app, key, patience=60.0):
    box = {}

    def _gen():
        owner, hops = yield from app.lookup(key)
        box["owner"], box["hops"] = owner, hops

    process = Process(sim, _gen(), name="test-lookup")
    process.start()
    sim.run(until=sim.now + patience)
    assert process.done.done(), "lookup did not terminate"
    process.done.result()  # re-raise lookup failures
    return box["owner"], box["hops"]


def _live_apps(job):
    return [i.app for i in job.live_instances() if i.app.joined]


def test_ring_converges_to_the_sorted_id_order():
    sim, _controller, job = _deploy(nodes=10)
    sim.run(until=60.0)
    members = _members(job)
    assert len(members) == 10
    apps = {a.me.id: a for a in _live_apps(job)}
    for index, member in enumerate(members):
        expected_successor = members[(index + 1) % len(members)]
        assert apps[member.id].successors[0].id == expected_successor.id
        expected_predecessor = members[index - 1]
        assert apps[member.id].predecessor.id == expected_predecessor.id


def test_lookups_find_the_correct_owner_from_every_node():
    sim, _controller, job = _deploy(nodes=8)
    sim.run(until=60.0)
    keys = [0, 1, 17, 4096, 65535, 30000]
    for app in _live_apps(job):
        for key in keys:
            owner, hops = _run_lookup(sim, app, key)
            expected = _expected_owner(job, key)
            assert (owner.ip, owner.port) == (expected.ip, expected.port), (
                f"lookup({key}) from {app.me} returned {owner}, wanted {expected}")
            assert hops <= app.max_hops


def test_lookup_of_a_nodes_own_id_returns_that_node():
    sim, _controller, job = _deploy(nodes=6)
    sim.run(until=60.0)
    apps = _live_apps(job)
    target = apps[2]
    owner, _hops = _run_lookup(sim, apps[0], target.me.id)
    assert (owner.ip, owner.port) == (target.me.ip, target.me.port)


def test_ring_recovers_and_routes_correctly_after_crashes():
    sim, controller, job = _deploy(nodes=10, churn_script="at 70s crash 30%\n")
    sim.run(until=60.0)
    assert job.live_count == 10
    sim.run(until=140.0)  # crash at 70s, then re-stabilization time
    assert job.live_count == 7
    members = _members(job)
    assert len(members) == 7
    rng_keys = [3, 900, 12345, 54321, 65000]
    for app in _live_apps(job):
        for key in rng_keys:
            owner, _hops = _run_lookup(sim, app, key)
            expected = _expected_owner(job, key)
            assert (owner.ip, owner.port) == (expected.ip, expected.port)


def test_churned_in_nodes_integrate_into_the_ring():
    sim, _controller, job = _deploy(nodes=6, churn_script="at 70s join 3\n")
    sim.run(until=150.0)
    assert job.live_count == 9
    members = _members(job)
    assert len(members) == 9
    # A key owned by a newcomer must resolve to it from an old node.
    newcomers = [m for m in members
                 if m.id not in {a.me.id for a in _live_apps(job)[:1]}]
    assert newcomers
    app = _live_apps(job)[0]
    for member in members:
        owner, _hops = _run_lookup(sim, app, member.id)
        assert (owner.ip, owner.port) == (member.ip, member.port)


def test_same_seed_builds_the_same_ring():
    def fingerprint(seed):
        sim, _controller, job = _deploy(nodes=8, seed=seed)
        sim.run(until=60.0)
        return tuple((m.ip, m.port, m.id) for m in _members(job))

    assert fingerprint(5) == fingerprint(5)
