"""The scenario registry and the shared harness plumbing."""

import argparse

import pytest

from repro.apps import harness, registry


def test_builtin_workloads_are_registered():
    names = registry.scenario_names()
    for expected in ("chord", "pastry", "gossip", "dissemination"):
        assert expected in names


def test_specs_carry_runner_churn_script_and_cli_hooks():
    for spec in registry.all_specs():
        assert callable(spec.runner)
        assert spec.default_churn_script.strip()
        parser = argparse.ArgumentParser()
        spec.add_arguments(parser)  # must not blow up
        assert 0.0 < spec.default_min_success <= 1.0
        assert callable(spec.bench_metrics)


def test_duplicate_registration_is_rejected_but_reregistering_is_idempotent():
    spec = registry.get_spec("chord")
    assert registry.register(spec) is spec  # same object: fine
    clone = registry.ScenarioSpec(
        name="chord", help="impostor", runner=lambda **_: {},
        default_churn_script="at 1s crash 1\n")
    with pytest.raises(ValueError):
        registry.register(clone)


def test_unknown_scenario_raises_a_helpful_error():
    with pytest.raises(registry.UnknownScenarioError) as excinfo:
        registry.get_spec("kademlia")
    assert "chord" in str(excinfo.value)


# ------------------------------------------------------------------- harness
def test_host_ips_keep_the_historical_layout_in_the_first_block():
    ips = harness.host_ips(3)
    assert ips == ["10.0.0.1", "10.0.1.1", "10.0.2.1"]
    assert harness.host_ips(257)[256] == "10.1.0.1"


def test_host_ips_roll_over_into_additional_blocks_beyond_65536():
    ips = harness.host_ips(65538)
    assert ips[65535] == "10.255.255.1"
    assert ips[65536] == "11.0.0.1"
    assert ips[65537] == "11.0.1.1"
    assert len(set(ips)) == len(ips)  # no silent reuse


def test_host_ips_raise_a_clear_error_above_the_plan_limit():
    with pytest.raises(ValueError) as excinfo:
        harness.host_ips(harness.MAX_HOSTS + 1)
    assert "at most" in str(excinfo.value)


def test_write_cdf_emits_latency_fraction_pairs(tmp_path):
    path = tmp_path / "cdf.csv"
    count = harness.write_cdf(str(path), [30.0, 10.0, 20.0, 40.0])
    assert count == 4
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "latency_ms,fraction"
    assert lines[1] == "10.0,0.25"
    assert lines[-1] == "40.0,1.0"


def test_scaled_windows_short_preset_shrinks_both_windows():
    full_join, full_settle = harness.scaled_windows(100, None, None, "full")
    short_join, short_settle = harness.scaled_windows(100, None, None, "short")
    assert short_join < full_join and short_settle < full_settle
    # Explicit values always win over the preset.
    assert harness.scaled_windows(100, 7.0, 9.0, "short") == (7.0, 9.0)
    with pytest.raises(ValueError):
        harness.scaled_windows(10, None, None, "weekend")
    assert harness.scaled_ops(100, "short") < 100
    assert harness.scaled_ops(100, "full") == 100


def test_summarise_counts_completed_and_correct_separately():
    results = [
        harness.OpResult(key=1, started_at=0.0, latency=0.5, hops=3,
                         completed=True, correct=True),
        harness.OpResult(key=2, started_at=0.0, latency=1.5, hops=5,
                         completed=True, correct=False),
        harness.OpResult(key=3, started_at=0.0, latency=0.0, hops=0,
                         completed=False, correct=False),
    ]
    summary = harness.summarise(results)
    assert summary["issued"] == 3
    assert summary["completed"] == 2
    assert summary["correct"] == 1
    assert summary["success_rate"] == pytest.approx(1 / 3)
    assert summary["latency_max_ms"] == pytest.approx(1500.0)
    assert summary["hops_max"] == 5
