"""Control-plane scale-out: job store, controller shards, batched daemon
commands, bounded log collectors, and shard failover."""

import pytest

from repro.core.jobs import JobSpec, JobState
from repro.lib.logging import LogRecord, LogLevel
from repro.net.network import Network
from repro.runtime.controller import Controller, ControllerError
from repro.runtime.jobstore import LogCollector
from repro.runtime.splayd import Splayd, SplaydError, SplaydLimits
from repro.sim.kernel import Simulator


def _world(seed=0, daemons=4, max_instances=4, shards=1, **controller_kwargs):
    sim = Simulator(seed)
    network = Network(sim, seed=seed)
    controller = Controller(sim, network, seed=seed, shards=shards,
                            **controller_kwargs)
    for i in range(daemons):
        controller.register_daemon(Splayd(
            sim, network, f"10.0.0.{i + 1}",
            SplaydLimits(max_instances=max_instances)))
    return sim, network, controller


def _record(message="hello", time=0.0):
    return LogRecord(time=time, level=LogLevel.INFO, source="test", message=message)


# -------------------------------------------------------------- log collector
class TestLogCollector:
    def _collector(self, max_queue=3):
        sim = Simulator(0)
        network = Network(sim, seed=0)
        controller = Controller(sim, network, seed=0)
        job = controller.submit(JobSpec(name="j", app_factory=lambda i: None))
        return sim, job, LogCollector(sim, job, max_queue=max_queue)

    def test_drop_oldest_when_queue_is_full(self):
        _sim, job, collector = self._collector(max_queue=3)
        for index in range(5):
            collector.offer(_record(f"m{index}"))
        # 5 offered into a 3-slot queue: m0 and m1 evicted, newest retained.
        assert collector.dropped == 2
        assert job.stats.log_records_dropped == 2
        assert [r.message for r, _shard in collector.queue] == ["m2", "m3", "m4"]

    def test_offer_reports_eviction(self):
        _sim, _job, collector = self._collector(max_queue=1)
        assert collector.offer(_record("first")) is True
        assert collector.offer(_record("second")) is False  # evicted "first"

    def test_drain_event_moves_queue_into_records(self):
        sim, job, collector = self._collector(max_queue=10)
        collector.offer(_record("a"), shard="ctl0")
        collector.offer(_record("b"), shard="ctl1")
        assert collector.records == [] and collector.pending == 2
        sim.run(until=1.0)  # the drain event fires drain_interval after enqueue
        assert [r.message for r in collector.records] == ["a", "b"]
        assert collector.pending == 0
        assert job.stats.log_records == 2
        assert job.stats.logs_by_shard == {"ctl0": 1, "ctl1": 1}

    def test_flush_drains_synchronously(self):
        _sim, job, collector = self._collector(max_queue=10)
        collector.offer(_record("x"))
        records = collector.flush()
        assert [r.message for r in records] == ["x"]
        assert job.stats.log_records == 1

    def test_dropped_records_never_reach_the_log(self):
        sim, job, collector = self._collector(max_queue=2)
        for index in range(6):
            collector.offer(_record(f"m{index}"))
        sim.run(until=1.0)
        assert [r.message for r in collector.records] == ["m4", "m5"]
        assert collector.collected == 2
        assert collector.dropped == 4
        assert collector.queue_peak == 2

    def test_rejects_zero_capacity(self):
        sim = Simulator(0)
        network = Network(sim, seed=0)
        controller = Controller(sim, network, seed=0)
        job = controller.submit(JobSpec(name="j", app_factory=lambda i: None))
        with pytest.raises(ValueError, match="at least one"):
            LogCollector(sim, job, max_queue=0)


# ------------------------------------------------------------------- batching
class TestBatchedCommands:
    def test_start_sends_one_batch_per_daemon(self):
        _sim, _network, controller = _world(daemons=4, max_instances=4)
        job = controller.submit(JobSpec(name="app", app_factory=lambda i: "app",
                                        instances=8))
        instances = controller.start(job)
        assert len(instances) == 8
        shard = controller.shards[0]
        # 8 spawns over 4 daemons: one batch_exec round per daemon, not 8.
        assert shard.stats.batches_sent == 4
        assert shard.stats.commands_sent == 8
        for daemon in controller.alive_daemons():
            assert daemon.batches_received == 1
            assert daemon.commands_executed == 2

    def test_kill_instances_batches_per_daemon(self):
        _sim, _network, controller = _world(daemons=2, max_instances=4)
        job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                        instances=6))
        instances = controller.start(job)
        shard = controller.shards[0]
        batches_before = shard.stats.batches_sent
        controller.kill_instances(instances, reason="test")
        # 6 kills over 2 daemons: exactly 2 more batches.
        assert shard.stats.batches_sent == batches_before + 2
        assert job.live_count == 0
        assert job.stats.instances_stopped == 6

    def test_batch_exec_failure_does_not_abort_the_batch(self):
        sim, network, _controller = _world()
        daemon = Splayd(sim, network, "10.0.9.1", SplaydLimits(max_instances=1))
        from repro.core.jobs import Job

        job = Job(JobSpec(name="j", app_factory=lambda i: None, instances=1))
        outcomes = daemon.batch_exec([("spawn", job, 0), ("spawn", job, 1),
                                      ("bogus-op",)])
        assert outcomes[0].__class__.__name__ == "Instance"
        assert isinstance(outcomes[1], SplaydError)  # over capacity
        assert isinstance(outcomes[2], SplaydError)  # unknown command
        assert daemon.batches_received == 1
        assert daemon.commands_executed == 3

    def test_placement_identical_to_sequential_selection(self):
        # The plan-then-batch path must place instances exactly where the
        # old spawn-one-at-a-time loop did: balanced, capacity-respecting.
        _sim, _network, controller = _world(daemons=3, max_instances=2, seed=7)
        job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                        instances=5))
        controller.start(job)
        by_host = {}
        for placement in job.placements:
            by_host[placement.ip] = by_host.get(placement.ip, 0) + 1
        assert sorted(by_host.values()) == [1, 2, 2]
        assert {p.instance_id for p in job.placements} == set(range(5))


# ----------------------------------------------------------------- sharding
class TestShards:
    def test_daemons_round_robin_across_shards(self):
        _sim, _network, controller = _world(daemons=4, shards=2)
        names = sorted(controller.store.daemon_shard.values())
        assert names == ["ctl0", "ctl0", "ctl1", "ctl1"]

    def test_controller_requires_at_least_one_shard(self):
        sim = Simulator(0)
        network = Network(sim, seed=0)
        with pytest.raises(ControllerError, match="at least one shard"):
            Controller(sim, network, shards=0)

    def test_jobs_are_claimed_round_robin(self):
        _sim, _network, controller = _world(daemons=4, shards=2, max_instances=8)
        first = controller.submit(JobSpec(name="a", app_factory=lambda i: None))
        second = controller.submit(JobSpec(name="b", app_factory=lambda i: None))
        assert controller.shard_for(first).name == "ctl0"
        assert controller.shard_for(second).name == "ctl1"
        assert first.stats.claimed_by == ["ctl0"]
        assert second.stats.claimed_by == ["ctl1"]

    def test_shard_failure_rehomes_daemons_and_claims(self):
        sim, _network, controller = _world(daemons=4, shards=2, max_instances=4)
        job = controller.submit(JobSpec(
            name="app", app_factory=lambda i: None, instances=4,
            churn_script="from 5s to 60s every 5s replace 25%\n"))
        controller.start(job)
        assert controller.shard_for(job).name == "ctl0"
        controller.shards[0].fail()
        # Daemons re-register with the survivor; the claim moves on next use.
        assert set(controller.store.daemon_shard.values()) == {"ctl1"}
        assert controller.shard_for(job).name == "ctl1"
        assert job.stats.claimed_by == ["ctl0", "ctl1"]
        assert controller.shards[1].stats.jobs_reclaimed == 1
        # Churn keeps running through the surviving shard.
        sim.run(until=90.0)
        assert job.state is JobState.RUNNING
        assert job.live_count == 4
        assert job.stats.churn_leaves > 0
        assert controller.shards[1].stats.batches_sent > 0

    def test_no_alive_shard_is_a_controller_error(self):
        _sim, _network, controller = _world(daemons=2, shards=1)
        job = controller.submit(JobSpec(name="app", app_factory=lambda i: None))
        controller.shards[0].fail()
        with pytest.raises(ControllerError, match="no alive controller shard"):
            controller.start(job)


# ------------------------------------------- log counters surviving failover
def test_log_counters_and_attribution_survive_shard_failover():
    """Regression: dropped-log counts and per-shard attribution live on the
    job (the shared store), so a shard dying and another claiming the job
    mid-run must lose nothing."""
    sim, _network, controller = _world(daemons=2, shards=2, max_instances=2,
                                       log_queue_depth=2)
    job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                    instances=2, log_level="INFO"))
    instances = controller.start(job)
    # Both daemons log; the 2-slot queue forces drop-oldest evictions.
    for index in range(4):
        instances[0].logger.info(f"before-{index}")
    sim.run(until=1.0)  # drain
    dropped_before = job.stats.log_records_dropped
    collected_before = job.stats.log_records
    assert dropped_before == 2
    assert collected_before == 2
    by_shard_before = dict(job.stats.logs_by_shard)
    assert sum(by_shard_before.values()) == collected_before

    controller.shards[0].fail()
    assert controller.shard_for(job).name == "ctl1"

    # Logging continues: counters accumulate on top of the pre-failover
    # values, attribution now flows to the surviving shard.
    for index in range(3):
        instances[1].logger.info(f"after-{index}")
    sim.run(until=2.0)
    assert job.stats.log_records_dropped == dropped_before + 1
    assert job.stats.log_records == collected_before + 2
    for shard_name, count in by_shard_before.items():
        assert job.stats.logs_by_shard[shard_name] >= count
    assert job.stats.logs_by_shard.get("ctl1", 0) > by_shard_before.get("ctl1", 0)
    # The controller-facing log view agrees with the stats.
    assert len(controller.job_logs(job)) == job.stats.log_records
    status = controller.job_status(job)
    assert status["log_records_dropped"] == dropped_before + 1


def test_control_plane_status_reports_shards_and_collectors():
    _sim, _network, controller = _world(daemons=4, shards=2, max_instances=4)
    job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                    instances=4))
    controller.start(job)
    plane = controller.control_plane_status()
    assert [s["name"] for s in plane["shards"]] == ["ctl0", "ctl1"]
    assert sum(s["daemons"] for s in plane["shards"]) == 4
    assert sum(s["batches_sent"] for s in plane["shards"]) > 0
    assert job.job_id in plane["collectors"]
    collector = plane["collectors"][job.job_id]
    assert set(collector) == {"collected", "dropped", "pending", "queue_peak",
                              "max_queue"}


# ------------------------------------------------- batch failure edge cases
def test_raising_app_factory_surfaces_and_leaves_no_orphans():
    """Regression: a factory raising mid-batch must still record every spawn
    that succeeded (so stop/churn can reach them) and fully reap its own
    half-built instance — nothing may keep running untracked."""
    calls = {"n": 0}

    def factory(instance):
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("factory bug")
        return "ok"

    _sim, _network, controller = _world(daemons=1, max_instances=4)
    job = controller.submit(JobSpec(name="app", app_factory=factory, instances=3))
    with pytest.raises(RuntimeError, match="factory bug"):
        controller.start(job)
    daemon = controller.daemons["10.0.0.1"]
    # The failed spawn was torn down; the successful ones are all tracked.
    assert all(instance in job.instances for instance in daemon.instances)
    assert job.live_count == len(daemon.instances) == 2
    controller.stop(job)
    assert daemon.instances == []
    assert daemon.has_capacity()


def test_instance_ids_are_never_reused_after_failed_spawns():
    """Regression: plan_placements consumes ids even when the spawn then
    fails, so a later join can never hand a live node's id to a second
    instance (apps derive overlay identity from (job_id, instance_id))."""
    _sim, _network, controller = _world(daemons=1, max_instances=3)
    job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                    instances=1, base_port=65535))
    controller.start(job)  # instance 0 holds the daemon's only usable port
    assert controller.start_instances(job, 1) == []  # id 1 consumed, spawn failed
    controller.kill_instance(job.instances[0])  # frees the port
    (replacement,) = controller.start_instances(job, 1)
    assert replacement.instance_id == 2  # id 1 is gone for good, not recycled
    ids = [p.instance_id for p in job.placements]
    assert len(set(ids)) == len(ids)
