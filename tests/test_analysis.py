"""Determinism linter: per-rule fixtures (positive, negative, suppressed,
baseline-masked), baseline round-trip/staleness, CLI exit codes, and the
committed-baseline cleanliness of the tree itself."""

import os
import shutil
import subprocess
import sys
import textwrap

from collections import Counter

import pytest

from repro.analysis import analyse_source, run_analysis
from repro.analysis import suppress
from repro.analysis.cli import main
from repro.analysis.registry import all_rules, applicable_rules, known_rule_ids

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: fixture path inside every rule's scope (DET105 is scoped to sim/net/lib)
SIM_PATH = "src/repro/sim/example.py"


def _active_ids(source, path=SIM_PATH):
    findings = analyse_source(path, textwrap.dedent(source))
    return [f.rule_id for f in findings if f.active]


# ------------------------------------------------------------------ registry
def test_registry_exposes_the_five_rules():
    ids = [rule.id for rule in all_rules()]
    assert ids == sorted(ids)
    assert set(ids) == {"DET101", "DET102", "DET103", "DET104", "DET105"}
    assert set(known_rule_ids()) == set(ids)
    for rule in all_rules():
        assert rule.summary and rule.fixit and rule.checker is not None


def test_det105_is_scoped_to_hot_paths_and_det101_exempts_rng_module():
    sim_rules = {r.id for r in applicable_rules("src/repro/sim/kernel.py")}
    app_rules = {r.id for r in applicable_rules("src/repro/apps/chord.py")}
    assert "DET105" in sim_rules
    assert "DET105" not in app_rules
    rng_rules = {r.id for r in applicable_rules("src/repro/sim/rng.py")}
    assert "DET101" not in rng_rules  # substream() wraps random by design


# ------------------------------------------------------- DET101: global RNG
def test_det101_flags_module_global_rng_calls():
    assert "DET101" in _active_ids("""
        import random
        value = random.random()
    """)
    assert "DET101" in _active_ids("""
        import random
        rng = random.Random()
    """)
    assert "DET101" in _active_ids("""
        from random import randint
    """)


def test_det101_allows_seeded_generators_and_substreams():
    assert "DET101" not in _active_ids("""
        import random
        rng = random.Random(42)
        value = rng.random()
    """)
    assert "DET101" not in _active_ids("""
        from repro.sim.rng import substream
        rng = substream(7, "churn")
    """)


# ------------------------------------------------------ DET102: wall clocks
def test_det102_flags_wall_clock_reads():
    assert "DET102" in _active_ids("""
        import time
        start = time.time()
    """)
    assert "DET102" in _active_ids("""
        import time
        start = time.perf_counter()
    """)
    assert "DET102" in _active_ids("""
        import datetime
        today = datetime.datetime.now()
    """)
    assert "DET102" in _active_ids("""
        from time import monotonic
    """)


def test_det102_allows_virtual_time():
    assert "DET102" not in _active_ids("""
        def handler(sim):
            return sim.now
    """)
    assert "DET102" not in _active_ids("""
        import time
        time.sleep(1)
    """)


# --------------------------------------------- DET103: unordered iteration
def test_det103_flags_set_iteration_and_identity_sort_keys():
    assert "DET103" in _active_ids("""
        for item in {1, 2, 3}:
            print(item)
    """)
    assert "DET103" in _active_ids("""
        def drain(items):
            live = set(items)
            for item in live:
                print(item)
    """)
    assert "DET103" in _active_ids("""
        def dedupe(items):
            return list(set(items))
    """)
    assert "DET103" in _active_ids("""
        def order(items):
            return sorted(items, key=id)
    """)
    assert "DET103" in _active_ids("""
        def pick(items):
            live = set(items)
            return live.pop()
    """)


def test_det103_allows_sorted_sets_and_list_pops():
    assert "DET103" not in _active_ids("""
        def dedupe(items):
            return sorted(set(items))
    """)
    assert "DET103" not in _active_ids("""
        def drain(items):
            live = set(items)
            for item in sorted(live):
                print(item)
    """)
    assert "DET103" not in _active_ids("""
        def take(stack):
            return stack.pop()

        def run():
            queue = [1, 2]
            return queue.pop()
    """)


# ----------------------------------------------- DET104: class-level state
def test_det104_flags_class_level_mutable_state_and_counters():
    assert "DET104" in _active_ids("""
        class Registry:
            instances = []
    """)
    assert "DET104" in _active_ids("""
        class Node:
            counter = 0

            def allocate(self):
                Node.counter += 1
                return Node.counter
    """)
    assert "DET104" in _active_ids("""
        class Node:
            def allocate(self):
                type(self).counter += 1
    """)


def test_det104_allows_instance_state_and_immutable_class_constants():
    assert "DET104" not in _active_ids("""
        class Node:
            DEFAULT_PORT = 20000

            def __init__(self):
                self.peers = []
    """)


# ------------------------------------------------ DET105: environment reads
def test_det105_flags_environment_and_filesystem_reads_in_hot_paths():
    assert "DET105" in _active_ids("""
        import os
        debug = os.environ.get("DEBUG")
    """)
    assert "DET105" in _active_ids("""
        import os
        level = os.getenv("LEVEL")
    """)
    assert "DET105" in _active_ids("""
        def load(path):
            with open(path) as handle:
                return handle.read()
    """)


def test_det105_does_not_apply_outside_sim_net_lib():
    source = """
        import os
        debug = os.environ.get("DEBUG")
    """
    assert "DET105" not in _active_ids(source, path="src/repro/apps/tool.py")


def test_det105_allows_method_named_open():
    assert "DET105" not in _active_ids("""
        def read(fs, path):
            return fs.open(path)
    """)


# ------------------------------------------------------------- suppressions
def test_targeted_suppression_silences_only_the_named_rule():
    findings = analyse_source(SIM_PATH, textwrap.dedent("""
        import time
        start = time.perf_counter()  # det: ignore[DET102] -- bench timing
    """))
    det102 = [f for f in findings if f.rule_id == "DET102"]
    assert det102 and all(f.suppressed for f in det102)


def test_bare_suppression_silences_every_rule_on_the_line():
    findings = analyse_source(SIM_PATH, textwrap.dedent("""
        import time
        start = time.time()  # det: ignore
    """))
    assert all(f.suppressed for f in findings if f.line == 3)


def test_suppression_for_a_different_rule_does_not_apply():
    findings = analyse_source(SIM_PATH, textwrap.dedent("""
        import time
        start = time.time()  # det: ignore[DET101]
    """))
    det102 = [f for f in findings if f.rule_id == "DET102"]
    assert det102 and all(not f.suppressed for f in det102)


# ----------------------------------------------------------------- baseline
def _findings_for(source):
    return analyse_source(SIM_PATH, textwrap.dedent(source))


def test_baseline_roundtrip_masks_findings_and_survives_line_drift():
    source = """
        import time
        start = time.time()
    """
    findings = _findings_for(source)
    baseline = suppress.load_baseline(suppress.render_baseline(findings))
    # Same finding on a different line number: still masked (keys are
    # (rule, path, stripped source line), not line numbers).
    shifted = _findings_for("\n\n\n" + textwrap.dedent(source))
    stale = suppress.apply_baseline(shifted, baseline)
    assert stale == []
    assert all(f.baselined for f in shifted)
    assert not any(f.active for f in shifted)


def test_baseline_is_a_multiset_and_reports_stale_entries():
    findings = _findings_for("""
        import time
        a = time.time()
        b = time.time()
    """)
    hits = [f for f in findings if f.rule_id == "DET102"]
    assert len(hits) == 2
    # One entry only covers one of the two identical hits.
    single = Counter({suppress.baseline_key(hits[0]): 1})
    stale = suppress.apply_baseline(hits, single)
    assert stale == []
    assert sum(1 for f in hits if f.baselined) == 1
    # An entry matching nothing comes back as stale.
    for finding in hits:
        finding.baselined = False
    ghost = Counter({("DET102", "src/repro/sim/gone.py", "x = time.time()"): 1})
    stale = suppress.apply_baseline(hits, ghost)
    assert len(stale) == 1 and "gone.py" in stale[0]


def test_malformed_baseline_fails_loudly():
    try:
        suppress.load_baseline("DET102 only-two-fields")
    except ValueError as exc:
        assert "malformed" in str(exc)
    else:
        raise AssertionError("malformed baseline was accepted")


# ---------------------------------------------------------------- CLI modes
def test_cli_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "src" / "repro" / "sim" / "dirty.py"
    dirty.parent.mkdir(parents=True)
    dirty.write_text("import time\nstart = time.time()\n", encoding="utf-8")
    baseline = tmp_path / "baseline.txt"

    # New finding, no baseline: fail.
    assert main([str(dirty), "--no-baseline"]) == 1
    assert "DET102" in capsys.readouterr().out

    # Accept it into a baseline, then --check passes.
    assert main([str(dirty), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert main([str(dirty), "--baseline", str(baseline), "--check"]) == 0
    capsys.readouterr()

    # Fix the file: plain runs pass, --check flags the stale entry.
    dirty.write_text("value = 1\n", encoding="utf-8")
    assert main([str(dirty), "--baseline", str(baseline)]) == 0
    assert main([str(dirty), "--baseline", str(baseline), "--check"]) == 1
    assert "stale" in capsys.readouterr().out

    # Corrupt baseline: explicit config error, not a silent pass.
    baseline.write_text("garbage without tabs\n", encoding="utf-8")
    assert main([str(dirty), "--baseline", str(baseline)]) == 2

    assert main(["--list-rules"]) == 0
    assert "DET101" in capsys.readouterr().out


def test_cli_reports_syntax_errors_as_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    assert main([str(bad), "--no-baseline"]) == 1


# ------------------------------------------------------------ tree is clean
def test_repository_tree_is_clean_against_the_committed_baseline():
    with open(os.path.join(ROOT, "analysis_baseline.txt"),
              encoding="utf-8") as handle:
        baseline_text = handle.read()
    result = run_analysis([os.path.join(ROOT, "src", "repro")], baseline_text)
    assert result.files_analysed > 40
    offenders = [f.location() + " " + f.rule_id for f in result.active_findings]
    assert offenders == []
    assert result.stale_baseline == []
    # The deliberate wall-clock reads (bench timing) are suppressed in place.
    assert {f.rule_id for f in result.suppressed_findings} == {"DET102"}


def test_lint_wrapper_matches_ci_invocation():
    proc = subprocess.run(
        [sys.executable, os.path.join("tools", "lint_determinism.py"),
         "--check"],
        cwd=ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 new finding(s)" in proc.stdout


@pytest.mark.skipif(shutil.which("ruff") is None,
                    reason="ruff not installed (CI installs the pin)")
def test_ruff_hygiene_set_is_clean():
    # Same invocation as the CI analysis job; the rule set comes from
    # [tool.ruff.lint] in pyproject.toml.
    proc = subprocess.run(
        ["ruff", "check", "src", "tests", "tools"],
        cwd=ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
