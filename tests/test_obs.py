"""Observability subsystem: metrics math, flight-recorder ring, tracer
export, profiler attribution — and the load-bearing guarantee that enabling
any combination of ``--metrics`` / ``--trace-out`` / ``--profile`` never
changes a report digest, on either kernel, for every workload."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.obs import (
    COUNT_BOUNDS,
    FlightRecorder,
    Histogram,
    KernelProfiler,
    MetricsRegistry,
    Observability,
    Tracer,
    callback_label,
    load_trace,
    log_bucket_bounds,
)
from repro.sim.kernel import Simulator

_REPO = Path(__file__).resolve().parent.parent


# ------------------------------------------------------------- bucket math
def test_log_bucket_bounds_are_fixed_log_spaced():
    bounds = log_bucket_bounds(1.0, 1000.0, per_decade=1)
    assert bounds == [1.0, 10.0, 100.0, 1000.0]
    fine = log_bucket_bounds(1.0, 10.0, per_decade=4)
    assert len(fine) == 5
    # Log-spaced: constant ratio between neighbours.
    ratios = [fine[i + 1] / fine[i] for i in range(len(fine) - 1)]
    assert all(abs(r - ratios[0]) < 1e-9 for r in ratios)


def test_histogram_bucket_index_and_overflow():
    histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
    assert histogram.bucket_index(0.5) == 0
    assert histogram.bucket_index(1.0) == 0    # bounds are inclusive uppers
    assert histogram.bucket_index(5.0) == 1
    assert histogram.bucket_index(100.0) == 2
    assert histogram.bucket_index(1e9) == 3    # overflow bucket
    for value in (0.5, 5.0, 50.0, 500.0):
        histogram.observe(value, now=1.0)
    assert histogram.count == 4
    assert histogram.min == 0.5 and histogram.max == 500.0
    data = histogram.to_dict()
    assert data["buckets"]["+Inf"] == 1
    assert data["count"] == 4


def test_histogram_percentile_returns_rank_bucket_upper_bound():
    histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
    for _ in range(90):
        histogram.observe(5.0)     # bucket <= 10.0
    for _ in range(10):
        histogram.observe(50.0)    # bucket <= 100.0
    assert histogram.percentile(0.50) == 10.0
    assert histogram.percentile(0.95) == 100.0
    # Overflow samples report the observed max, not +Inf.
    histogram.observe(9999.0)
    assert histogram.percentile(1.0) == 9999.0


def test_empty_histogram_percentile_is_zero():
    assert Histogram("h", bounds=(1.0,)).percentile(0.5) == 0.0


def test_registry_snapshot_is_sorted_and_sim_time_stamped():
    clock_value = [0.0]
    registry = MetricsRegistry(clock=lambda: clock_value[0])
    clock_value[0] = 3.5
    registry.inc("z.counter")
    registry.observe("a.histogram", 2.0, COUNT_BOUNDS)
    registry.gauge("m.gauge").set(7, now=clock_value[0])
    snapshot = registry.snapshot()
    assert list(snapshot) == sorted(snapshot)
    assert snapshot["z.counter"]["last_update"] == 3.5
    assert snapshot["m.gauge"]["value"] == 7
    assert len(registry) == 3 and "a.histogram" in registry


# ----------------------------------------------------------- flight recorder
def _cb():
    return None


def test_ring_wraparound_keeps_last_capacity_entries_oldest_first():
    ring = FlightRecorder(capacity=8)
    for seq in range(20):
        ring.push_event(float(seq), seq, _cb, origin=None)
    assert ring.total == 20
    assert len(ring) == 8
    entries = ring.entries()
    assert [entry[2] for entry in entries] == list(range(12, 20))
    rendered = ring.snapshot(last=3)
    assert len(rendered) == 3
    assert "seq=19" in rendered[-1]
    assert callback_label(_cb) in rendered[-1]


def test_ring_renders_spans_and_partial_fill():
    ring = FlightRecorder(capacity=4)
    ring.push_span(1.25, "10.0.0.1", "rpc.step", 0.002)
    lines = ring.dump_lines(header="ctx")
    assert lines[0].startswith("ctx: last 1 of 1")
    assert "host=10.0.0.1" in lines[1] and "2.000ms" in lines[1]


def test_observed_kernel_still_recycles_events():
    """The observer must not pin events: free-list recycling stays on."""
    sim = Simulator(0, kernel="wheel")
    Observability(sim, metrics=True, tracing=True, profile=True).install()
    fired = [0]

    def tick():
        fired[0] += 1
        if fired[0] < 50:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run()
    assert fired[0] == 50
    assert sim.recycled_events > 0


# ------------------------------------------------------------------ profiler
def test_profiler_aggregates_bound_methods_by_function():
    profiler = KernelProfiler()

    class App:
        def step(self):
            return None

    first, second = App(), App()
    profiler.add(first.step, 0.002)
    profiler.add(second.step, 0.001)
    profiler.add(_cb, 0.004)
    section = profiler.section(top_n=5)
    assert section["events"] == 3
    assert section["sites"] == 2
    top = section["top"]
    assert top[0]["site"].endswith("_cb") and top[0]["wall_s"] == 0.004
    step_row = top[1]
    assert step_row["events"] == 2
    assert "App.step" in step_row["site"]
    table = KernelProfiler.format_table(section)
    assert "3 events" in table[0]
    assert any("App.step" in line for line in table)


# -------------------------------------------------------------------- tracer
def test_chrome_trace_has_one_named_track_per_host(tmp_path):
    now = [0.0]
    tracer = Tracer(clock=lambda: now[0])
    tracer.add("10.0.0.2", "rpc.step", 1.0, 0.25, cat="rpc", args={"k": 1})
    tracer.add("10.0.0.1", "lookup", 0.5, 1.5, cat="lookup")
    tracer.add("10.0.0.2", "serve.step", 1.1, 0.0)
    path = tmp_path / "trace.json"
    assert tracer.write(str(path)) == 3

    document = json.loads(path.read_text())
    events = document["traceEvents"]
    meta = [e for e in events if e.get("ph") == "M"]
    complete = [e for e in events if e.get("ph") == "X"]
    assert {m["args"]["name"] for m in meta} == {"10.0.0.1", "10.0.0.2"}
    assert len({m["pid"] for m in meta}) == 2      # one pid track per host
    assert len(complete) == 3
    span = next(e for e in complete if e["name"] == "rpc.step")
    assert span["ts"] == 1.0e6 and span["dur"] == 0.25e6  # microseconds
    assert span["args"] == {"k": 1}

    by_host = load_trace(str(path))
    assert sorted(by_host) == ["10.0.0.1", "10.0.0.2"]
    assert len(by_host["10.0.0.2"]) == 2


def test_tracer_bounds_span_count():
    tracer = Tracer(clock=lambda: 0.0, max_spans=2)
    for index in range(5):
        tracer.add("h", "s", float(index), 0.1)
    assert len(tracer.spans) == 2 and tracer.dropped == 3


# ------------------------------------------------------- structured logging
def test_logger_records_carry_host_and_structured_fields():
    from repro.lib.logging import LogLevel, SplayLogger

    logger = SplayLogger(source="job1/i1", level="INFO", host="10.0.0.9",
                         clock=lambda: 12.5)
    record = logger.info("joined ring", ring=7, hops=3)
    assert record.host == "10.0.0.9"
    assert record.time == 12.5
    assert record.fields == {"ring": 7, "hops": 3}
    assert logger.debug("below threshold") is None
    logger.set_level(LogLevel.ERROR)
    assert logger.warn("suppressed", detail=1) is None


# ------------------------------------------------- sanitizer ring integration
def test_sanitizer_violation_report_includes_ring_context():
    from repro.sim.sanitizer import Sanitizer

    sim = Simulator(0, kernel="wheel")
    sanitizer = Sanitizer(sim).install()
    obs = Observability(sim).install()
    sanitizer.recorder = obs.recorder
    sim.schedule(1.0, _cb)
    sim.schedule(2.0, _cb)
    sim.run()
    sanitizer.record("clock", "injected breach", provenance="test")
    violation = sanitizer.violations[0]
    assert violation.ring, "ring context missing from violation"
    rendered = violation.render()
    assert "ring (last" in rendered
    assert callback_label(_cb) in rendered
    assert any("ring (last" in line
               for line in sanitizer.summary()["reports"])


# --------------------------------------------------------- digest neutrality
_WORKLOADS = {
    "chord": dict(nodes=10, hosts=6, seed=3, churn=True, lookups=12,
                  duration="short"),
    "pastry": dict(nodes=10, hosts=6, seed=3, churn=True, lookups=12,
                   duration="short"),
    "gossip": dict(nodes=10, hosts=6, seed=3, churn=True, broadcasts=8,
                   duration="short"),
    "dissemination": dict(nodes=8, hosts=6, seed=3, chunks=6,
                          duration="short"),
}


def _runner(workload):
    from repro.apps import chord, dissemination, gossip, pastry

    return {"chord": chord.run_chord_scenario,
            "pastry": pastry.run_pastry_scenario,
            "gossip": gossip.run_gossip_scenario,
            "dissemination": dissemination.run_dissemination_scenario}[workload]


@pytest.mark.parametrize("workload", sorted(_WORKLOADS))
@pytest.mark.parametrize("kernel", ["wheel", "heap"])
def test_observability_flags_never_change_the_digest(workload, kernel,
                                                     tmp_path):
    """Metrics + tracing + profiling on vs everything off: byte-identical
    digests for every workload on both kernels (the core guarantee)."""
    from repro.apps.harness import report_digest

    config = dict(_WORKLOADS[workload], kernel=kernel)
    runner = _runner(workload)
    plain = runner(**config)
    trace_path = tmp_path / f"{workload}.json"
    observed = runner(metrics=True, trace_out=str(trace_path), profile=True,
                      **config)
    assert report_digest(plain) == report_digest(observed)
    for key in ("metrics", "trace", "profile", "flight_recorder"):
        assert key not in plain
        assert observed.get(key), key
    assert observed["metrics"]["enabled"] is True
    assert observed["metrics"]["kernel"]["events_dispatched"] \
        == observed["events_executed"]
    assert trace_path.exists()


def test_fifty_node_churning_chord_acceptance(tmp_path):
    """The issue's acceptance gate: a 50-node churning chord run with every
    flag on matches the flags-off digest, and the trace is Perfetto-shaped
    (one named pid track per host, complete events with us timestamps)."""
    from repro.apps.chord import run_chord_scenario
    from repro.apps.harness import report_digest

    config = dict(nodes=50, hosts=25, seed=7, churn=True, lookups=25,
                  duration="short")
    plain = run_chord_scenario(**config)
    trace_path = tmp_path / "chord50.json"
    observed = run_chord_scenario(metrics=True, trace_out=str(trace_path),
                                  profile=True, **config)
    assert report_digest(plain) == report_digest(observed)

    by_host = load_trace(str(trace_path))
    assert len(by_host) >= 2            # one track per traced host
    spans = [span for spans in by_host.values() for span in spans]
    assert spans
    assert all(span["ph"] == "X" for span in spans)
    names = {span["name"] for span in spans}
    assert any(name.startswith("rpc.") for name in names)
    assert any(name.startswith("serve.") for name in names)
    assert "lookup" in names            # chord's lookup-level span
    # Per-job metrics flowed through the JobStore path.
    registry = observed["metrics"]["job"]["registry"]
    assert any(name.startswith("rpc.latency_s.") for name in registry)
    assert "lookup.hops" in registry
    # Profile attributes wall time to module:qualname sites.
    top = observed["profile"]["top"]
    assert top and all(":" in row["site"] for row in top)


def test_metrics_identical_across_kernels():
    """The metrics themselves (not just the digest) are kernel-independent,
    except the kernel-specific recycle/cancel counters."""
    from repro.apps.chord import run_chord_scenario

    config = dict(nodes=10, hosts=6, seed=5, lookups=10, duration="short",
                  metrics=True)
    wheel = run_chord_scenario(kernel="wheel", **config)["metrics"]
    heap = run_chord_scenario(kernel="heap", **config)["metrics"]
    assert wheel["network"] == heap["network"]
    assert wheel["rpc"] == heap["rpc"]
    assert wheel["job"]["registry"] == heap["job"]["registry"]
    assert wheel["kernel"]["events_dispatched"] \
        == heap["kernel"]["events_dispatched"]


# ----------------------------------------------------------- CLI + tool smoke
def _load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, _REPO / "tools" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_scenarios_cli_writes_metrics_and_trace_artifacts(tmp_path, capsys):
    from repro.apps.scenarios import main

    metrics_path = tmp_path / "metrics.json"
    trace_path = tmp_path / "trace.json"
    status = main(["chord", "--nodes", "10", "--hosts", "6", "--seed", "3",
                   "--duration", "short", "--lookups", "10",
                   "--min-success", "0.0",
                   "--metrics-out", str(metrics_path),
                   "--trace-out", str(trace_path), "--profile",
                   "--log-level", "WARN"])
    out = capsys.readouterr().out
    assert status == 0
    assert "metrics:" in out and "trace:" in out and "profile:" in out
    metrics = json.loads(metrics_path.read_text())
    assert metrics["enabled"] is True and "network" in metrics

    summary = _load_tool("trace_summary")
    assert summary.main([str(trace_path)]) == 0
    tool_out = capsys.readouterr().out
    assert "host track(s)" in tool_out and "p95_ms" in tool_out


def test_trace_summary_rejects_garbage(tmp_path, capsys):
    summary = _load_tool("trace_summary")
    bad = tmp_path / "bad.json"
    bad.write_text("{\"nope\": 1}")
    assert summary.main([str(bad)]) == 1
    assert summary.main([str(tmp_path / "missing.json")]) == 1
    empty = tmp_path / "empty.json"
    empty.write_text("{\"traceEvents\": []}")
    assert summary.main([str(empty)]) == 1
    capsys.readouterr()
