"""Churn: script parsing and deterministic replay against a job."""

import pytest

from repro.core.churn import (
    ChurnManager,
    ChurnScriptError,
    parse_churn_script,
    synthetic_churn_script,
)
from repro.core.jobs import JobSpec
from repro.net.network import Network
from repro.runtime.controller import Controller
from repro.runtime.splayd import Splayd, SplaydLimits
from repro.sim.kernel import Simulator


def test_parse_point_events_with_units_and_comments():
    actions = parse_churn_script("""
        # warmup, then kill things
        at 30s join 10
        at 2m leave 5
        at 2m crash 10%
        at 300s stop
    """)
    assert [(a.time, a.kind) for a in actions] == [
        (30.0, "join"), (120.0, "leave"), (120.0, "crash"), (300.0, "stop")]
    assert actions[1].count == 5
    assert actions[2].fraction == pytest.approx(0.10)


def test_window_expands_into_discrete_actions():
    actions = parse_churn_script("from 60s to 180s every 60s replace 2\n")
    assert [(a.time, a.kind, a.count) for a in actions] == [
        (60.0, "replace", 2), (120.0, "replace", 2), (180.0, "replace", 2)]


def test_percentage_resolves_against_live_count():
    (action,) = parse_churn_script("at 10s crash 10%")
    assert action.resolve_count(50) == 5
    assert action.resolve_count(3) == 1  # at least one victim when any live
    assert action.resolve_count(0) == 0


def test_malformed_scripts_are_rejected():
    for bad in ("at 10s frobnicate 3", "from 10s until 20s join 1",
                "leave 5", "at tens join 1", "at 10s crash 150%"):
        with pytest.raises((ChurnScriptError, ValueError)):
            parse_churn_script(bad)


def test_synthetic_script_round_trips_through_the_parser():
    script = synthetic_churn_script(duration=300, period=60, fraction=0.10)
    actions = parse_churn_script(script)
    assert len(actions) == 5
    assert all(a.kind == "replace" and a.fraction == pytest.approx(0.10)
               for a in actions)


def _deploy(seed=0, instances=10, churn_script=None):
    sim = Simulator(seed)
    network = Network(sim, seed=seed)
    controller = Controller(sim, network, seed=seed)
    for i in range(5):
        controller.register_daemon(
            Splayd(sim, network, f"10.0.0.{i + 1}", SplaydLimits(max_instances=6)))
    spec = JobSpec(name="noop", app_factory=lambda instance: object(),
                   instances=instances, churn_script=churn_script)
    job = controller.submit(spec)
    controller.start(job)
    return sim, controller, job


def test_churn_manager_replays_leaves_and_joins():
    sim, controller, job = _deploy(
        instances=10, churn_script="at 10s leave 3\nat 20s join 2\n")
    assert job.live_count == 10
    sim.run(until=15.0)
    assert job.live_count == 7
    sim.run(until=25.0)
    assert job.live_count == 9
    churn = controller.churn_managers[job.job_id]
    assert churn.stats.instances_left == 3
    assert churn.stats.instances_joined == 2
    # Graceful leaves are clean stops, not failures.
    assert job.stats.instances_stopped == 3
    assert job.stats.instances_failed == 0


def test_replace_keeps_population_steady():
    sim, controller, job = _deploy(
        instances=10, churn_script="from 10s to 50s every 10s replace 20%\n")
    sim.run(until=60.0)
    assert job.live_count == 10
    churn = controller.churn_managers[job.job_id]
    assert churn.stats.instances_left == churn.stats.instances_joined == 10
    assert job.stats.churn_leaves == job.stats.churn_joins == 10
    # replace kills are graceful departures, never crashes
    assert job.stats.churn_crashes == 0


def test_crashes_and_graceful_leaves_are_counted_separately():
    sim, controller, job = _deploy(
        instances=10, churn_script="at 10s crash 3\nat 20s leave 2\n")
    sim.run(until=30.0)
    assert job.stats.churn_crashes == 3
    assert job.stats.churn_leaves == 2
    churn = controller.churn_managers[job.job_id]
    assert churn.stats.instances_crashed == 3
    assert churn.stats.instances_left == 2
    # the controller surfaces the split in job_status
    status = controller.job_status(job)
    assert status["churn_crashes"] == 3
    assert status["churn_leaves"] == 2


def test_victim_selection_is_deterministic_per_seed():
    def victims(seed):
        sim, controller, job = _deploy(seed=seed, instances=8,
                                       churn_script="at 5s crash 50%\n")
        before = {i.instance_id for i in job.live_instances()}
        sim.run(until=6.0)
        after = {i.instance_id for i in job.live_instances()}
        assert job.stats.instances_failed == len(before - after)  # crash = failure
        return tuple(sorted(before - after))

    assert victims(3) == victims(3)


def test_stop_directive_stops_the_job():
    from repro.core.jobs import JobState

    sim, _controller, job = _deploy(instances=4, churn_script="at 5s stop\n")
    sim.run(until=10.0)
    assert job.state is JobState.STOPPED
    assert job.live_count == 0
