"""Bandwidth model: max-min fairness and transfer accounting."""

import pytest

from repro.net.bandwidth import BandwidthModel
from repro.sim.kernel import Simulator


def test_equal_flows_share_the_bottleneck_uplink():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)  # 8 Mbps uplink = 1 MB/s
    one_mb = 1_000_000
    t1 = bw.transfer("A", "B", one_mb)
    t2 = bw.transfer("A", "C", one_mb)
    assert t1.rate_bps == pytest.approx(4_000_000)
    assert t2.rate_bps == pytest.approx(4_000_000)
    sim.run()
    # Two 1 MB flows sharing 1 MB/s finish together at t = 2 s.
    assert t1.done.result() == pytest.approx(2.0)
    assert t2.done.result() == pytest.approx(2.0)
    assert bw.completed == 2


def test_max_min_gives_leftover_capacity_to_unconstrained_flow():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)
    bw.set_capacity("B", None, 2_000_000)  # B's downlink is the narrow link
    t_ab = bw.transfer("A", "B", 10_000_000)
    t_ac = bw.transfer("A", "C", 10_000_000)
    # Progressive filling: A->B capped at 2 Mbps by B's downlink; A->C takes
    # the remaining 6 Mbps of A's uplink.
    assert t_ab.rate_bps == pytest.approx(2_000_000)
    assert t_ac.rate_bps == pytest.approx(6_000_000)


def test_rates_rebalance_when_a_flow_completes():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)
    short = bw.transfer("A", "B", 500_000)
    long = bw.transfer("A", "C", 2_000_000)
    sim.run(until=1.01)  # short flow (0.5 MB at 0.5 MB/s) finishes at t = 1 s
    assert short.done.done()
    assert long.rate_bps == pytest.approx(8_000_000)
    sim.run()
    # long: 0.5 MB in the first second, the remaining 1.5 MB at 1 MB/s.
    assert long.done.result() == pytest.approx(2.5)


def test_cancel_host_aborts_its_transfers():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)
    doomed = bw.transfer("A", "B", 1_000_000)
    other = bw.transfer("C", "D", 1_000_000)
    assert bw.cancel_host("A") == 1
    assert doomed.done.cancelled()
    sim.run()
    assert other.done.done() and not other.done.cancelled()


def test_transfer_progress_and_duration_accounting():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)  # 1 MB/s
    transfer = bw.transfer("A", "B", 2_000_000)
    sim.run(until=1.0)
    # Trigger a progress update by starting another flow at t = 1 s.
    bw.transfer("A", "C", 1)
    assert transfer.bytes_transferred == pytest.approx(1_000_000, rel=0.01)
    assert transfer.duration_so_far(sim.now) == pytest.approx(1.0)
    assert transfer.duration_so_far(0.5) == pytest.approx(0.5)
