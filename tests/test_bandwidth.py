"""Bandwidth model: max-min fairness and transfer accounting."""

import pytest

from repro.net.bandwidth import BandwidthModel
from repro.sim.kernel import Simulator


def test_equal_flows_share_the_bottleneck_uplink():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)  # 8 Mbps uplink = 1 MB/s
    one_mb = 1_000_000
    t1 = bw.transfer("A", "B", one_mb)
    t2 = bw.transfer("A", "C", one_mb)
    assert t1.rate_bps == pytest.approx(4_000_000)
    assert t2.rate_bps == pytest.approx(4_000_000)
    sim.run()
    # Two 1 MB flows sharing 1 MB/s finish together at t = 2 s.
    assert t1.done.result() == pytest.approx(2.0)
    assert t2.done.result() == pytest.approx(2.0)
    assert bw.completed == 2


def test_max_min_gives_leftover_capacity_to_unconstrained_flow():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)
    bw.set_capacity("B", None, 2_000_000)  # B's downlink is the narrow link
    t_ab = bw.transfer("A", "B", 10_000_000)
    t_ac = bw.transfer("A", "C", 10_000_000)
    # Progressive filling: A->B capped at 2 Mbps by B's downlink; A->C takes
    # the remaining 6 Mbps of A's uplink.
    assert t_ab.rate_bps == pytest.approx(2_000_000)
    assert t_ac.rate_bps == pytest.approx(6_000_000)


def test_rates_rebalance_when_a_flow_completes():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)
    short = bw.transfer("A", "B", 500_000)
    long = bw.transfer("A", "C", 2_000_000)
    sim.run(until=1.01)  # short flow (0.5 MB at 0.5 MB/s) finishes at t = 1 s
    assert short.done.done()
    assert long.rate_bps == pytest.approx(8_000_000)
    sim.run()
    # long: 0.5 MB in the first second, the remaining 1.5 MB at 1 MB/s.
    assert long.done.result() == pytest.approx(2.5)


def test_cancel_host_aborts_its_transfers():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)
    doomed = bw.transfer("A", "B", 1_000_000)
    other = bw.transfer("C", "D", 1_000_000)
    assert bw.cancel_host("A") == 1
    assert doomed.done.cancelled()
    sim.run()
    assert other.done.done() and not other.done.cancelled()


def test_two_flow_shared_uplink_with_zero_rate_assignment_does_not_crash():
    """Regression: _reallocate computed min() over positive-rate flows only;
    a zero-rate assignment (shared uplink exhausted by a bottlenecked flow or
    float dust) made the generator empty and min() raise ValueError — and the
    stalled flow never completed.  The guard must survive the degenerate
    state and re-tick the stalled flow once capacity frees."""
    sim = Simulator()
    bw = BandwidthModel(sim)
    forced = {"zero": True}
    original = BandwidthModel._allocate_rates

    def patched(self, transfers):
        rates = original(self, transfers)
        if forced["zero"] and len(rates) > 1:
            rates[-1] = 0.0  # the shared uplink left nothing for the last flow
        return rates

    bw._allocate_rates = patched.__get__(bw, BandwidthModel)
    bw.set_capacity("A", 8_000_000, None)
    healthy = bw.transfer("A", "B", 1_000_000)
    stalled = bw.transfer("A", "C", 1_000_000)
    assert stalled.rate_bps == 0.0
    assert healthy.rate_bps > 0.0
    sim.run(until=9.0)
    # The healthy flow completes; its completion frees the uplink and the
    # next reallocation (no longer forced to zero) revives the stalled flow.
    assert healthy.done.done()
    forced["zero"] = False
    bw._reallocate()
    assert stalled.rate_bps > 0.0
    sim.run()
    assert stalled.done.done()
    assert bw.completed == 2


def test_all_flows_zero_rate_schedules_no_tick_and_recovers():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw._allocate_rates = (lambda transfers: [0.0] * len(transfers))
    bw.set_capacity("A", 8_000_000, None)
    stalled = bw.transfer("A", "B", 1_000_000)  # must not raise ValueError
    assert stalled.rate_bps == 0.0
    assert sim.pending_events == 0  # no completion tick for a fully stalled set
    del bw._allocate_rates  # capacity "frees": restore the real allocator
    bw._reallocate()
    sim.run()
    assert stalled.done.result() == pytest.approx(1.0)


def test_shared_uplink_two_flows_complete_with_fair_timing():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw.set_capacity("S", 8_000_000, None)     # 1 MB/s shared uplink
    bw.set_capacity("D1", None, 2_000_000)    # D1 downlink bottleneck
    narrow = bw.transfer("S", "D1", 1_000_000)
    wide = bw.transfer("S", "D2", 1_500_000)
    assert narrow.rate_bps == pytest.approx(2_000_000)
    assert wide.rate_bps == pytest.approx(6_000_000)
    sim.run()
    assert narrow.done.done() and wide.done.done()
    assert bw.completed == 2


def test_transfer_progress_and_duration_accounting():
    sim = Simulator()
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)  # 1 MB/s
    transfer = bw.transfer("A", "B", 2_000_000)
    sim.run(until=1.0)
    # Trigger a progress update by starting another flow at t = 1 s.
    bw.transfer("A", "C", 1)
    assert transfer.bytes_transferred() == pytest.approx(1_000_000, rel=0.01)
    assert transfer.duration_so_far(sim.now) == pytest.approx(1.0)
    assert transfer.duration_so_far(0.5) == pytest.approx(0.5)


@pytest.mark.parametrize("kernel", ["wheel", "heap"])
def test_bytes_transferred_accrues_between_rate_recomputes(kernel):
    """Regression: the settled byte count only moves when rates change.

    A flow cruising at a steady rate saw ``bytes_transferred()`` stuck at
    the value of the *last* recomputation — stale by up to a whole
    completion interval.  Passing ``now`` extrapolates along the current
    rate from the last settlement and clamps at the transfer size.
    """
    sim = Simulator(0, kernel=kernel)
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)  # 1 MB/s
    transfer = bw.transfer("A", "B", 2_000_000)
    sim.run(until=1.0)
    # No rate change since t = 0: the settled value is the stale zero ...
    assert transfer.bytes_transferred() == 0.0
    # ... while the time-aware form accrues along the allocated rate.
    assert transfer.bytes_transferred(sim.now) == pytest.approx(1_000_000)
    sim.run(until=1.5)
    assert transfer.bytes_transferred(sim.now) == pytest.approx(1_500_000)
    sim.run()
    assert transfer.done.result() == pytest.approx(2.0)
    assert transfer.bytes_transferred(sim.now) == transfer.total_bytes
    # Extrapolating past completion clamps instead of overshooting.
    assert transfer.bytes_transferred(sim.now + 60.0) == transfer.total_bytes


@pytest.mark.parametrize("kernel", ["wheel", "heap"])
def test_cancellation_from_completion_callback_mid_recompute(kernel):
    """A completion callback cancelling another flow re-enters _reallocate.

    The outer recomputation's partition pass has already run when the
    future's callbacks fire; the nested cancel must not corrupt the flow
    table, double-count, or strand the bystander flow.
    """
    sim = Simulator(0, kernel=kernel)
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)
    short = bw.transfer("A", "B", 500_000)
    victim = bw.transfer("A", "C", 4_000_000)
    bystander = bw.transfer("A", "D", 4_000_000)
    short.done.add_done_callback(lambda fut: bw.cancel_transfer(victim))
    sim.run()
    assert short.done.done() and not short.done.cancelled()
    assert victim.done.cancelled()
    assert bystander.done.done() and not bystander.done.cancelled()
    assert bw.completed == 2 and bw.preemptions == 1
    assert bw.active_transfers == 0
    assert not bw._flows_on_link  # nested removal left no stale adjacency
    assert bw.bytes_completed == short.total_bytes + bystander.total_bytes


@pytest.mark.parametrize("kernel", ["wheel", "heap"])
def test_zero_byte_transfer_completes_immediately(kernel):
    sim = Simulator(0, kernel=kernel)
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)
    empty = bw.transfer("A", "B", 0)
    assert empty.done.done() and empty.done.result() == sim.now
    assert bw.completed == 1
    assert bw.active_transfers == 0  # never entered the allocation set
    assert empty.bytes_transferred() == 0.0
    assert empty.bytes_transferred(5.0) == 0.0  # nothing to extrapolate
    # A zero-byte transfer must not disturb concurrent flows' rates.
    flow = bw.transfer("A", "C", 1_000_000)
    bw.transfer("A", "D", 0)
    assert flow.rate_bps == pytest.approx(8_000_000)
    sim.run()
    assert bw.completed == 3


@pytest.mark.parametrize("kernel", ["wheel", "heap"])
def test_simultaneous_completions_resolve_in_one_deterministic_tick(kernel):
    """Two identical flows finish at the same instant on both kernels.

    One completion tick must retire both (bit-equal finish times, no
    zero-length follow-up interval), and the tie-break — partition order =
    start order — is the same under the wheel and the heap.
    """
    sim = Simulator(0, kernel=kernel)
    bw = BandwidthModel(sim)
    bw.set_capacity("A", 8_000_000, None)
    first = bw.transfer("A", "B", 1_000_000)
    second = bw.transfer("A", "C", 1_000_000)
    sim.run()
    assert first.done.result() == second.done.result()  # exact, not approx
    assert first.done.result() == pytest.approx(2.0)
    assert bw.completed == 2 and bw.active_transfers == 0
    assert not bw._flows_on_link
