"""Loss: per-pair rates, locally injected sbsocket loss, RPC under lossy nets."""

import pytest

from repro.apps import harness
from repro.lib.rpc import RpcService, RpcTimeout
from repro.lib.sbsocket import RestrictedSocket, SocketPolicy
from repro.net.address import Address
from repro.net.latency import ConstantLatency
from repro.net.loss import LossModel
from repro.net.network import Network
from repro.sim.events_api import AppContext, Events
from repro.sim.futures import FutureState
from repro.sim.kernel import Simulator
from repro.testbeds import get_testbed


# ------------------------------------------------------------------ LossModel
def test_rate_for_takes_the_maximum_of_all_applicable_rates():
    model = LossModel(seed=0, default_rate=0.01)
    model.set_pair_rate("10.0.0.1", "10.0.0.2", 0.5)
    model.set_host_rate("10.0.0.3", 0.2)
    assert model.rate_for("10.0.0.1", "10.0.0.2") == 0.5
    assert model.rate_for("10.0.0.2", "10.0.0.1") == 0.01  # pair rates are directed
    assert model.rate_for("10.0.0.3", "10.0.0.4") == 0.2   # host rate, either end
    assert model.rate_for("10.0.0.4", "10.0.0.3") == 0.2
    assert model.rate_for("10.0.0.4", "10.0.0.5") == 0.01
    # host rate never *lowers* a higher pair rate
    model.set_host_rate("10.0.0.1", 0.1)
    assert model.rate_for("10.0.0.1", "10.0.0.2") == 0.5


def test_rates_are_validated():
    with pytest.raises(ValueError):
        LossModel(default_rate=1.5)
    model = LossModel()
    with pytest.raises(ValueError):
        model.set_pair_rate("a", "b", -0.1)
    with pytest.raises(ValueError):
        model.set_host_rate("a", 2.0)


def test_should_drop_counts_and_is_deterministic_per_seed():
    def drops(seed):
        model = LossModel(seed=seed, default_rate=0.3)
        return [model.should_drop("a", "b") for _ in range(50)], model.dropped

    first, dropped = drops(4)
    assert drops(4) == (first, dropped)
    assert dropped == sum(first)
    assert 0 < dropped < 50

    certain = LossModel(seed=1, default_rate=1.0)
    assert all(certain.should_drop("a", "b") for _ in range(5))
    lossless = LossModel(seed=1)
    assert not any(lossless.should_drop("a", "b") for _ in range(5))
    assert lossless.evaluated == 5 and lossless.dropped == 0


def test_per_pair_loss_only_affects_that_direction_on_the_network():
    sim = Simulator(2)
    network = Network(sim, latency=ConstantLatency(0.001), seed=2)

    class _Host:
        def __init__(self, ip):
            self.ip = ip
            self.alive = True

    for ip in ("10.0.0.1", "10.0.0.2"):
        network.add_host(_Host(ip))
    network.loss.set_pair_rate("10.0.0.1", "10.0.0.2", 1.0)
    received = []
    network.listen(Address("10.0.0.2", 9), received.append)
    network.listen(Address("10.0.0.1", 9), received.append)
    doomed = network.send(Address("10.0.0.1", 9), Address("10.0.0.2", 9), "x", 10)
    fine = network.send(Address("10.0.0.2", 9), Address("10.0.0.1", 9), "y", 10)
    sim.run()
    assert doomed.result() is False
    assert fine.result() is True
    assert [m.payload for m in received] == ["y"]
    assert network.stats.messages_dropped == 1


# --------------------------------------------------- sbsocket injected loss
def _endpoint(sim, network, ip, port=1000, policy=None):
    class _Host:
        def __init__(self, ip):
            self.ip = ip
            self.alive = True

    network.add_host(_Host(ip))
    context = AppContext(sim, name=f"app@{ip}")
    events = Events(sim, context)
    socket = RestrictedSocket(network, context, Address(ip, port),
                              policy=policy, seed=sim.seed)
    return context, events, socket


def test_sbsocket_drop_rate_injects_loss_before_the_network():
    sim = Simulator(3)
    network = Network(sim, latency=ConstantLatency(0.001), seed=3)
    _c1, _e1, sender = _endpoint(sim, network, "10.0.0.1",
                                 policy=SocketPolicy(drop_rate=1.0))
    _c2, _e2, receiver = _endpoint(sim, network, "10.0.0.2")
    received = []
    receiver.listen(received.append)
    future = sender.send(Address("10.0.0.2", 1000), "doomed")
    sim.run()
    # the drop happens inside the sandbox: the network never saw the message
    assert future.result() is False
    assert received == []
    assert sender.stats.messages_dropped_locally == 1
    assert sender.stats.messages_sent == 1  # charged against the app's stats
    assert network.stats.messages_sent == 0


def test_sbsocket_partial_drop_rate_is_deterministic_and_counted():
    def run():
        sim = Simulator(5)
        network = Network(sim, latency=ConstantLatency(0.001), seed=5)
        _c1, _e1, sender = _endpoint(sim, network, "10.0.0.1",
                                     policy=SocketPolicy(drop_rate=0.4))
        _c2, _e2, receiver = _endpoint(sim, network, "10.0.0.2")
        received = []
        receiver.listen(received.append)
        for i in range(40):
            sender.send(Address("10.0.0.2", 1000), i)
        sim.run()
        return len(received), sender.stats.messages_dropped_locally

    delivered, dropped = run()
    assert (delivered, dropped) == run()
    assert delivered + dropped == 40
    assert 0 < dropped < 40


# ------------------------------------------------------ RPC on lossy testbeds
def test_rpc_retries_recover_from_a_lossy_link():
    sim = Simulator(11)
    network = Network(sim, latency=ConstantLatency(0.005),
                      loss=LossModel(seed=11, default_rate=0.4), seed=11)
    _c1, events1, socket1 = _endpoint(sim, network, "10.0.0.1")
    _c2, events2, socket2 = _endpoint(sim, network, "10.0.0.2")
    client = RpcService(socket1, events1, default_timeout=0.5)
    server = RpcService(socket2, events2)
    server.register("echo", lambda v: v)
    futures = [client.call("10.0.0.2:1000", "echo", i, retries=5)
               for i in range(20)]
    sim.run()
    assert all(f.state is FutureState.DONE for f in futures)
    assert [f.result() for f in futures] == list(range(20))
    assert client.stats.retries > 0  # loss forced retransmissions
    assert network.stats.messages_dropped > 0


def test_rpc_times_out_when_the_link_is_fully_lossy():
    sim = Simulator(12)
    network = Network(sim, latency=ConstantLatency(0.005),
                      loss=LossModel(seed=12, default_rate=1.0), seed=12)
    _c1, events1, socket1 = _endpoint(sim, network, "10.0.0.1")
    _c2, events2, socket2 = _endpoint(sim, network, "10.0.0.2")
    client = RpcService(socket1, events1, default_timeout=0.2)
    server = RpcService(socket2, events2)
    server.register("echo", lambda v: v)
    future = client.call("10.0.0.2:1000", "echo", 1, retries=2)
    sim.run()
    assert future.state is FutureState.FAILED
    with pytest.raises(RpcTimeout):
        future.result()
    assert client.stats.timeouts == 1
    assert client.stats.retries == 2


def test_rpc_survives_the_planetlab_testbed_substrate_loss():
    """The planetlab preset's 2% substrate loss is absorbed by RPC retries."""
    sim = Simulator(21)
    ips = harness.host_ips(4)
    built = get_testbed("planetlab").build(sim, ips, seed=21)
    network = built.network
    assert network.loss.default_rate > 0
    _c1, events1, socket1 = _endpoint(sim, network, ips[0])
    _c2, events2, socket2 = _endpoint(sim, network, ips[1])
    client = RpcService(socket1, events1, default_timeout=2.0)
    server = RpcService(socket2, events2)
    server.register("echo", lambda v: v)
    futures = [client.call(f"{ips[1]}:1000", "echo", i, retries=3)
               for i in range(100)]
    sim.run()
    assert all(f.state is FutureState.DONE for f in futures)
    # the substrate did drop messages; retries hid every loss from the app
    assert network.stats.messages_dropped > 0
    assert client.stats.retries > 0
    assert client.stats.timeouts == 0
