"""RPC: round trips, coroutine handlers, timeouts and retries."""

import pytest

from repro.lib.rpc import RpcError, RpcService, RpcTimeout
from repro.lib.sbsocket import RestrictedSocket
from repro.net.address import Address
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.events_api import AppContext, Events
from repro.sim.futures import FutureState
from repro.sim.kernel import Simulator


class _Host:
    def __init__(self, ip):
        self.ip = ip
        self.alive = True


def _endpoint(sim, network, ip, port=1000, **rpc_kwargs):
    host = _Host(ip)
    network.add_host(host)
    context = AppContext(sim, name=f"app@{ip}")
    events = Events(sim, context)
    socket = RestrictedSocket(network, context, Address(ip, port))
    rpc = RpcService(socket, events, **rpc_kwargs)
    return host, context, events, rpc


@pytest.fixture()
def world():
    sim = Simulator(7)
    network = Network(sim, latency=ConstantLatency(0.010), seed=7)
    return sim, network


def test_call_round_trip_with_plain_handler(world):
    sim, network = world
    _h1, _c1, _e1, client = _endpoint(sim, network, "10.0.0.1")
    _h2, _c2, _e2, server = _endpoint(sim, network, "10.0.0.2")
    server.register("add", lambda a, b: a + b)
    future = client.call("10.0.0.2:1000", "add", 2, 3)
    sim.run()
    assert future.result() == 5
    assert server.stats.calls_received == 1
    assert client.stats.replies_received == 1


def test_generator_handler_runs_as_coroutine(world):
    sim, network = world
    _h1, _c1, _e1, client = _endpoint(sim, network, "10.0.0.1")
    _h2, _c2, _e2, server = _endpoint(sim, network, "10.0.0.2")

    def slow_echo(value):
        yield 0.5  # blocks the handler coroutine, not the simulator
        return value * 2

    server.register("slow_echo", slow_echo)
    future = client.call("10.0.0.2:1000", "slow_echo", 21, timeout=5.0)
    sim.run()
    assert future.result() == 42
    assert sim.now == pytest.approx(0.52, rel=0.05)


def test_remote_exception_becomes_rpc_error(world):
    sim, network = world
    _h1, _c1, _e1, client = _endpoint(sim, network, "10.0.0.1")
    _h2, _c2, _e2, server = _endpoint(sim, network, "10.0.0.2")

    def broken():
        raise ValueError("nope")

    server.register("broken", broken)
    future = client.call("10.0.0.2:1000", "broken")
    sim.run()
    with pytest.raises(RpcError, match="nope"):
        future.result()


def test_unknown_method_is_an_error(world):
    sim, network = world
    _h1, _c1, _e1, client = _endpoint(sim, network, "10.0.0.1")
    _endpoint(sim, network, "10.0.0.2")
    future = client.call("10.0.0.2:1000", "missing")
    sim.run()
    with pytest.raises(RpcError, match="unknown method"):
        future.result()


def test_timeout_after_all_retries(world):
    sim, network = world
    _h1, _c1, _e1, client = _endpoint(sim, network, "10.0.0.1")
    _h2, _c2, _e2, server = _endpoint(sim, network, "10.0.0.2")
    server.register("echo", lambda x: x)
    network.loss.set_pair_rate("10.0.0.1", "10.0.0.2", 1.0)
    future = client.call("10.0.0.2:1000", "echo", 1, timeout=0.5, retries=2)
    sim.run()
    with pytest.raises(RpcTimeout):
        future.result()
    # Three attempts (initial + 2 retries), each waiting its own timeout.
    assert sim.now == pytest.approx(1.5, rel=0.01)
    assert client.stats.retries == 2
    assert client.stats.timeouts == 1


def test_retry_succeeds_once_loss_clears(world):
    sim, network = world
    _h1, _c1, _e1, client = _endpoint(sim, network, "10.0.0.1")
    _h2, _c2, _e2, server = _endpoint(sim, network, "10.0.0.2")
    server.register("echo", lambda x: x)
    network.loss.set_pair_rate("10.0.0.1", "10.0.0.2", 1.0)
    # The link heals after the first attempt has already been dropped.
    sim.schedule(0.3, network.loss.set_pair_rate, "10.0.0.1", "10.0.0.2", 0.0)
    future = client.call("10.0.0.2:1000", "echo", "hi", timeout=0.5, retries=2)
    sim.run()
    assert future.result() == "hi"
    assert client.stats.retries == 1


def test_ping_reports_liveness_without_raising(world):
    sim, network = world
    _h1, _c1, _e1, client = _endpoint(sim, network, "10.0.0.1")
    host2, _c2, _e2, _server = _endpoint(sim, network, "10.0.0.2")
    alive = client.ping("10.0.0.2:1000", timeout=0.5)
    sim.run()
    assert alive.result() is True
    host2.alive = False
    dead = client.ping("10.0.0.2:1000", timeout=0.5)
    sim.run()
    assert dead.result() is False


def test_killed_context_cancels_outstanding_calls(world):
    sim, network = world
    _h1, context, _e1, client = _endpoint(sim, network, "10.0.0.1")
    _endpoint(sim, network, "10.0.0.2")
    future = client.call("10.0.0.2:1000", "anything", timeout=10.0)
    sim.run(until=0.001)
    context.kill()
    assert future.state is FutureState.CANCELLED
    assert client.pending_calls == 0


def test_batch_call_runs_sub_calls_in_one_round_trip(world):
    sim, network = world
    _h1, _c1, _e1, client = _endpoint(sim, network, "10.0.0.1")
    _h2, _c2, _e2, server = _endpoint(sim, network, "10.0.0.2")
    server.register("add", lambda a, b: a + b)
    server.register("upper", lambda s: s.upper())
    future = client.batch_call("10.0.0.2:1000",
                               [("add", 2, 3), ("upper", "ok"), ("add", 1, 1)])
    sim.run()
    assert future.result() == [{"ok": True, "value": 5},
                               {"ok": True, "value": "OK"},
                               {"ok": True, "value": 2}]
    # One message out, one reply back — the point of batching.
    assert client.stats.calls_sent == 1
    assert server.stats.calls_received == 1
    assert server.stats.replies_sent == 1


def test_batch_call_isolates_failing_sub_calls(world):
    sim, network = world
    _h1, _c1, _e1, client = _endpoint(sim, network, "10.0.0.1")
    _h2, _c2, _e2, server = _endpoint(sim, network, "10.0.0.2")

    def broken():
        raise ValueError("nope")

    server.register("echo", lambda x: x)
    server.register("broken", broken)
    future = client.batch_call("10.0.0.2:1000",
                               [("echo", "a"), ("broken",), ("missing",),
                                ("echo", "b")])
    sim.run()
    outcomes = future.result()
    assert outcomes[0] == {"ok": True, "value": "a"}
    assert outcomes[1]["ok"] is False and "nope" in outcomes[1]["error"]
    assert outcomes[2]["ok"] is False and "unknown method" in outcomes[2]["error"]
    # A failing sub-call never aborts the rest of the batch.
    assert outcomes[3] == {"ok": True, "value": "b"}


def test_batch_call_supports_generator_sub_handlers(world):
    sim, network = world
    _h1, _c1, _e1, client = _endpoint(sim, network, "10.0.0.1")
    _h2, _c2, _e2, server = _endpoint(sim, network, "10.0.0.2")

    def slow_double(value):
        yield 0.5  # blocks only the batch coroutine, not the simulator
        return value * 2

    server.register("slow_double", slow_double)
    server.register("fast", lambda: "now")
    future = client.batch_call("10.0.0.2:1000",
                               [("slow_double", 4), ("fast",), ("slow_double", 5)],
                               timeout=5.0)
    sim.run()
    assert future.result() == [{"ok": True, "value": 8},
                               {"ok": True, "value": "now"},
                               {"ok": True, "value": 10}]
    # Two 0.5s coroutine waits ran sequentially inside the batch.
    assert sim.now > 1.0
