"""Dissemination: chunk swarming drives the flow-level bandwidth model."""

from repro.apps.dissemination import run_dissemination_scenario, swarm_factory
from repro.apps.harness import deterministic_report_view
from repro.core.jobs import JobSpec
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.runtime.controller import Controller
from repro.runtime.splayd import Splayd, SplaydLimits
from repro.sim.kernel import Simulator

CHUNKS = 8
CHUNK_SIZE = 32768


def _deploy(nodes=8, seed=0, churn_script=None, link_bps=10_000_000.0, **options):
    sim = Simulator(seed)
    network = Network(sim, latency=ConstantLatency(0.010), seed=seed)
    controller = Controller(sim, network, seed=seed)
    for i in range(nodes):
        ip = f"10.0.0.{i + 1}"
        controller.register_daemon(
            Splayd(sim, network, ip, SplaydLimits(max_instances=3)))
        network.bandwidth.set_capacity(ip, link_bps, link_bps)
    spec = JobSpec(
        name="swarm",
        app_factory=swarm_factory(),
        instances=nodes,
        churn_script=churn_script,
        options={"chunks": CHUNKS, "chunk_size": CHUNK_SIZE,
                 "join_window": 5.0, "poll_interval": 0.5, **options},
    )
    job = controller.submit(spec)
    controller.start(job)
    return sim, controller, job


def _apps(job):
    return [i.app for i in job.live_instances() if i.app.joined]


def test_first_instance_seeds_and_everyone_completes():
    sim, _controller, job = _deploy(nodes=8)
    sim.run(until=200.0)
    apps = _apps(job)
    seeds = [a for a in apps if a.is_seed]
    assert len(seeds) == 1
    assert all(a.complete for a in apps), (
        [(str(a.me), len(a.have)) for a in apps if not a.complete])
    for app in apps:
        if not app.is_seed:
            assert app.completed_at is not None and app.completed_at > app.started_at
            assert app.stats.chunks_fetched == CHUNKS


def test_chunks_travel_through_the_bandwidth_model():
    sim, _controller, job = _deploy(nodes=6)
    network = job.instances[0].daemon.network
    sim.run(until=200.0)
    downloaders = [a for a in _apps(job) if not a.is_seed]
    fetched = sum(a.stats.chunks_fetched for a in downloaders)
    assert fetched == CHUNKS * len(downloaders)
    # Every fetched chunk is one bulk transfer, not a control message.
    assert network.stats.transfers_started >= fetched
    assert network.bandwidth.completed >= fetched


def test_constrained_links_slow_the_swarm_down():
    def completion_span(link_bps):
        sim, _controller, job = _deploy(nodes=6, link_bps=link_bps)
        sim.run(until=400.0)
        apps = [a for a in _apps(job) if not a.is_seed]
        assert apps and all(a.complete for a in apps)
        return max(a.completed_at - a.started_at for a in apps)

    fast = completion_span(50_000_000.0)
    slow = completion_span(500_000.0)
    assert slow > fast, (slow, fast)


def test_swarm_survives_crash_churn():
    sim, _controller, job = _deploy(nodes=8, churn_script="at 30s crash 25%\n")
    sim.run(until=300.0)
    apps = _apps(job)
    assert job.live_count == 6
    assert all(a.complete for a in apps)


def test_scenario_runner_reports_completion_and_is_deterministic():
    first = run_dissemination_scenario(nodes=10, hosts=5, seed=2, chunks=6,
                                       chunk_size=16384, join_window=10.0,
                                       settle=20.0)
    second = run_dissemination_scenario(nodes=10, hosts=5, seed=2, chunks=6,
                                        chunk_size=16384, join_window=10.0,
                                        settle=20.0)
    assert (deterministic_report_view(first)
            == deterministic_report_view(second))
    measured = first["measured"]
    assert measured["issued"] == 9  # every downloader (the seed is excluded)
    assert measured["success_rate"] == 1.0
    assert first["workload"]["transfers_completed"] >= 9 * 6
    assert first["cdf_samples_ms"] == sorted(first["cdf_samples_ms"])
