"""Host-level churn: fail/recover directives, availability traces, counters."""

from pathlib import Path

import pytest

from repro.core.churn import (
    ChurnManager,
    ChurnScriptError,
    parse_availability_trace,
    parse_churn_script,
    synthetic_availability_trace,
    trace_churn_actions,
)
from repro.core.jobs import JobSpec
from repro.net.network import Network
from repro.runtime.controller import Controller, ControllerError
from repro.runtime.splayd import Splayd, SplaydLimits
from repro.sim.kernel import Simulator

TRACES_DIR = Path(__file__).resolve().parent.parent / "traces"


# ------------------------------------------------------------------- parsing
def test_trace_parses_and_merges_overlapping_intervals():
    intervals = parse_availability_trace("""
        # comments and blanks are fine
        a 0 100
        a 90 150          # overlaps the first interval
        b 20 40
        b 60 80
    """)
    assert intervals == {"a": [(0.0, 150.0)], "b": [(20.0, 40.0), (60.0, 80.0)]}


def test_malformed_traces_are_rejected():
    for bad in ("a 10", "a 10 20 30", "a ten 20", "a 30 10", "a -5 10"):
        with pytest.raises(ChurnScriptError):
            parse_availability_trace(bad)


def test_trace_actions_cover_late_start_gaps_and_early_death():
    actions = trace_churn_actions("""
        late 50 300       # down from 0, comes up at 50
        gappy 0 100       # blips 100..150
        gappy 150 300
        early 0 120       # dies at 120 and stays down
        steady 0 300      # up the whole time
    """)
    by_host = {}
    for action in actions:
        by_host.setdefault(action.host, []).append((action.time, action.kind))
    assert by_host["late"] == [(0.0, "fail"), (50.0, "recover")]
    assert by_host["gappy"] == [(100.0, "fail"), (150.0, "recover")]
    assert by_host["early"] == [(120.0, "fail")]
    assert "steady" not in by_host  # never churns
    assert [a.time for a in actions] == sorted(a.time for a in actions)


def test_synthetic_trace_is_deterministic_and_starts_all_hosts_up():
    first = synthetic_availability_trace(hosts=5, duration=200.0, seed=4)
    second = synthetic_availability_trace(hosts=5, duration=200.0, seed=4)
    assert first == second
    assert first != synthetic_availability_trace(hosts=5, duration=200.0, seed=5)
    intervals = parse_availability_trace(first)
    assert len(intervals) == 5
    assert all(spans[0][0] == 0.0 for spans in intervals.values())


def test_bundled_trace_matches_its_generator_parameters():
    # The committed file must stay regenerable: tools/gen_availability_trace.py
    # with its defaults produces it byte for byte.
    bundled = (TRACES_DIR / "synthetic_overnet.trace").read_text()
    regenerated = synthetic_availability_trace(hosts=6, duration=300.0, seed=9,
                                               mean_up=150.0, mean_down=40.0)
    assert bundled == regenerated


def test_fail_and_recover_parse_in_scripts_and_windows():
    actions = parse_churn_script("""
        at 10s fail 2
        at 20s fail 25%
        at 30s recover 1
        from 60s to 120s every 60s fail 1
    """)
    assert [(a.time, a.kind) for a in actions] == [
        (10.0, "fail"), (20.0, "fail"), (30.0, "recover"),
        (60.0, "fail"), (120.0, "fail")]
    assert actions[1].fraction == pytest.approx(0.25)
    assert all(a.host is None for a in actions)


# ------------------------------------------------------------ controller side
def _deploy(seed=0, instances=10, hosts=5, shards=1, churn_script=None,
            churn_trace=None, slots=6):
    sim = Simulator(seed)
    network = Network(sim, seed=seed)
    controller = Controller(sim, network, seed=seed, shards=shards)
    for i in range(hosts):
        controller.register_daemon(
            Splayd(sim, network, f"10.0.0.{i + 1}", SplaydLimits(max_instances=slots)))
    spec = JobSpec(name="noop", app_factory=lambda instance: object(),
                   instances=instances, churn_script=churn_script,
                   churn_trace=churn_trace)
    job = controller.submit(spec)
    controller.start(job)
    return sim, controller, job


def test_fail_host_kills_instances_and_recover_makes_it_placeable_again():
    sim, controller, job = _deploy(instances=10, hosts=5)
    victim = controller.daemon_ips()[0]
    before = job.live_count
    on_victim = sum(1 for i in job.instances
                    if i.alive and i.daemon.ip == victim)
    assert on_victim > 0
    killed = controller.fail_host(victim)
    assert killed == on_victim
    assert job.live_count == before - on_victim
    assert controller.failed_host_ips() == [victim]
    assert not controller.host_alive(victim)
    assert job.stats.instances_failed == on_victim
    # placement skips the dead host
    started = controller.start_instances(job, 2)
    assert all(i.daemon.ip != victim for i in started)
    # recovery brings it back, empty, and placement prefers the empty host
    controller.recover_host(victim)
    assert controller.failed_host_ips() == []
    refill = controller.start_instances(job, 2)
    assert all(i.daemon.ip == victim for i in refill)
    assert controller.store.host_state[victim] == "up"
    assert controller.store.host_failures_total == 1
    assert controller.store.host_recoveries_total == 1


def test_fail_host_on_unknown_ip_is_a_controller_error():
    _sim, controller, _job = _deploy()
    with pytest.raises(ControllerError, match="no daemon"):
        controller.fail_host("203.0.113.1")
    with pytest.raises(ControllerError, match="no daemon"):
        controller.recover_host("203.0.113.1")


def test_script_driven_host_churn_counts_separately_from_instance_churn():
    sim, controller, job = _deploy(
        instances=10, hosts=5,
        churn_script="at 5s crash 2\nat 10s fail 2\nat 20s recover 1\n")
    sim.run(until=30.0)
    churn = controller.churn_managers[job.job_id]
    # instance-level and host-level churn are distinct populations
    assert churn.stats.instances_crashed == 2
    assert churn.stats.hosts_failed == 2
    assert churn.stats.hosts_recovered == 1
    assert job.stats.churn_crashes == 2
    assert job.stats.churn_host_failures == 2
    assert job.stats.churn_host_recoveries == 1
    # host-failure instance deaths are failures, never churn_crashes
    assert job.stats.instances_failed > 2
    status = controller.job_status(job)
    assert status["churn_host_failures"] == 2
    assert status["churn_host_recoveries"] == 1


def test_job_status_omits_host_counters_when_no_host_churn_happened():
    sim, controller, job = _deploy(instances=6, churn_script="at 5s crash 2\n")
    sim.run(until=10.0)
    status = controller.job_status(job)
    assert "churn_host_failures" not in status
    assert "churn_host_recoveries" not in status


def test_trace_driven_job_replays_host_churn_deterministically():
    trace = "t0 0 20\nt0 40 100\nt1 0 60\n"

    def run():
        sim, controller, job = _deploy(instances=8, hosts=4, churn_trace=trace)
        sim.run(until=120.0)
        churn = controller.churn_managers[job.job_id]
        return (churn.stats.hosts_failed, churn.stats.hosts_recovered,
                tuple(sorted(controller.failed_host_ips())),
                job.stats.churn_host_failures, job.stats.churn_host_recoveries)

    first = run()
    # t0 blips (fail@20, recover@40) then dies at the 100s horizon... which
    # IS the horizon, so it stays up; t1 dies at 60 and stays down.
    assert first[0] == 2 and first[1] == 1
    assert len(first[2]) == 1
    assert first == run()


def test_host_counters_survive_controller_shard_failover():
    sim, controller, job = _deploy(
        instances=8, hosts=4, shards=2,
        churn_script="at 5s fail 1\nat 15s fail 1\nat 25s recover 2\n")
    sim.run(until=10.0)
    assert job.stats.churn_host_failures == 1
    # the claiming shard dies mid-run; churn keeps flowing via the survivor
    controller.shards[0].fail()
    sim.run(until=30.0)
    assert job.stats.churn_host_failures == 2
    assert job.stats.churn_host_recoveries == 2
    assert controller.failed_host_ips() == []


def test_script_and_trace_compose_on_one_job():
    sim, controller, job = _deploy(
        instances=8, hosts=4,
        churn_script="at 10s crash 2\n", churn_trace="t0 0 30\n t1 0 80\n")
    sim.run(until=90.0)
    assert job.stats.churn_crashes == 2
    # t0 fails at 30 (before the 80s horizon), t1 is up through the horizon
    assert job.stats.churn_host_failures == 1


def test_chord_replays_the_bundled_trace_end_to_end():
    from repro.apps.chord import run_chord_scenario

    trace = (TRACES_DIR / "synthetic_overnet.trace").read_text()
    report = run_chord_scenario(nodes=16, hosts=8, seed=0, lookups=12,
                                duration="short", churn_trace=trace)
    # host-level fail/recover events are visible in Job.stats / the report
    assert report["job"]["churn_host_failures"] > 0
    assert report["job"]["churn_host_recoveries"] > 0
    assert report["churn"]["hosts_failed"] > 0
    assert report["job"]["churn_crashes"] == 0  # populations stay separate
    assert report["measured"]["success_rate"] >= 0.9
