"""End-to-end smoke: every registered scenario meets its acceptance bar."""

import pytest

from repro.apps.gossip import run_gossip_scenario
from repro.apps.harness import deterministic_report_view
from repro.apps.pastry import run_pastry_scenario
from repro.apps.scenarios import main, run_chord_scenario


@pytest.mark.slow
def test_chord_scenario_under_churn_meets_the_bar():
    report = run_chord_scenario(nodes=20, hosts=10, seed=0, churn=True, lookups=60)
    measured = report["measured"]
    assert measured["issued"] == 60
    assert measured["success_rate"] >= 0.99
    assert measured["latency_p50_ms"] > 0
    churn = report["churn"]
    assert churn is not None and churn["actions_applied"] > 0
    # the default script has both a crash burst and replace windows, and the
    # two populations are tracked separately
    assert report["job"]["churn_leaves"] > 0
    assert report["job"]["churn_crashes"] > 0
    assert report["log_records_collected"] > 0


def test_chord_scenario_without_churn_is_perfect_and_deterministic():
    first = run_chord_scenario(nodes=10, hosts=5, seed=1, lookups=30,
                               join_window=20.0, settle=40.0)
    second = run_chord_scenario(nodes=10, hosts=5, seed=1, lookups=30,
                                join_window=20.0, settle=40.0)
    assert first["measured"]["success_rate"] == 1.0
    assert (deterministic_report_view(first)
            == deterministic_report_view(second))


@pytest.mark.slow
def test_pastry_scenario_under_churn_meets_the_bar():
    report = run_pastry_scenario(nodes=20, hosts=10, seed=0, churn=True, lookups=60)
    measured = report["measured"]
    assert measured["issued"] == 60
    assert measured["success_rate"] >= 0.95
    assert report["churn"] is not None and report["churn"]["actions_applied"] > 0
    # Pastry's promise: O(log_{2^b} N) routing (plus the claim confirmation).
    assert measured["hops_mean"] <= 6.0


def test_pastry_scenario_without_churn_is_perfect_and_deterministic():
    first = run_pastry_scenario(nodes=10, hosts=5, seed=1, lookups=30,
                                join_window=20.0, settle=40.0)
    second = run_pastry_scenario(nodes=10, hosts=5, seed=1, lookups=30,
                                 join_window=20.0, settle=40.0)
    assert first["measured"]["success_rate"] == 1.0
    assert (deterministic_report_view(first)
            == deterministic_report_view(second))


def test_gossip_scenario_reaches_full_coverage_and_is_deterministic():
    first = run_gossip_scenario(nodes=12, hosts=6, seed=1, broadcasts=20,
                                join_window=15.0, settle=30.0)
    second = run_gossip_scenario(nodes=12, hosts=6, seed=1, broadcasts=20,
                                 join_window=15.0, settle=30.0)
    assert first["measured"]["success_rate"] == 1.0
    assert first["workload"]["delivery_ratio_min"] == 1.0
    assert (deterministic_report_view(first)
            == deterministic_report_view(second))


def test_scenario_cli_short_duration_smoke_writes_cdf(tmp_path):
    # The CI smoke matrix path: every subcommand with --duration short.
    cdf = tmp_path / "cdf.csv"
    status = main(["gossip", "--nodes", "12", "--hosts", "6",
                   "--duration", "short", "--cdf", str(cdf)])
    assert status == 0
    lines = cdf.read_text().strip().splitlines()
    assert lines[0] == "latency_ms,fraction"
    assert len(lines) > 1


def test_scenario_cli_exits_nonzero_below_min_success(tmp_path, capsys):
    status = main(["chord", "--nodes", "10", "--hosts", "5", "--duration",
                   "short", "--min-success", "1.01"])
    assert status == 2
    assert "FAIL" in capsys.readouterr().err
