"""End-to-end smoke: the flagship scenario meets its acceptance bar."""

import pytest

from repro.apps.scenarios import run_chord_scenario


@pytest.mark.slow
def test_chord_scenario_under_churn_meets_the_bar():
    report = run_chord_scenario(nodes=20, hosts=10, seed=0, churn=True, lookups=60)
    measured = report["measured"]
    assert measured["issued"] == 60
    assert measured["success_rate"] >= 0.99
    assert measured["latency_p50_ms"] > 0
    churn = report["churn"]
    assert churn is not None and churn["actions_applied"] > 0
    # the default script has both a crash burst and replace windows, and the
    # two populations are tracked separately
    assert report["job"]["churn_leaves"] > 0
    assert report["job"]["churn_crashes"] > 0
    assert report["log_records_collected"] > 0


def test_chord_scenario_without_churn_is_perfect_and_deterministic():
    first = run_chord_scenario(nodes=10, hosts=5, seed=1, lookups=30,
                               join_window=20.0, settle=40.0)
    second = run_chord_scenario(nodes=10, hosts=5, seed=1, lookups=30,
                                join_window=20.0, settle=40.0)
    assert first["measured"]["success_rate"] == 1.0
    assert first == second
