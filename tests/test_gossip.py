"""Gossip: Cyclon view maintenance and epidemic broadcast coverage."""

from repro.apps.gossip import gossip_factory
from repro.core.jobs import JobSpec
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.runtime.controller import Controller
from repro.runtime.splayd import Splayd, SplaydLimits
from repro.sim.kernel import Simulator


def _deploy(nodes=12, seed=0, churn_script=None, **options):
    sim = Simulator(seed)
    network = Network(sim, latency=ConstantLatency(0.010), seed=seed)
    controller = Controller(sim, network, seed=seed)
    for i in range(nodes):
        controller.register_daemon(
            Splayd(sim, network, f"10.0.0.{i + 1}", SplaydLimits(max_instances=3)))
    spec = JobSpec(
        name="gossip",
        app_factory=gossip_factory(),
        instances=nodes,
        churn_script=churn_script,
        options={"join_window": 5.0, "shuffle_interval": 2.0,
                 "ae_interval": 3.0, **options},
    )
    job = controller.submit(spec)
    controller.start(job)
    return sim, controller, job


def _apps(job):
    return [i.app for i in job.live_instances() if i.app.joined]


def test_views_fill_up_and_respect_the_capacity():
    sim, _controller, job = _deploy(nodes=12)
    sim.run(until=60.0)
    apps = _apps(job)
    assert len(apps) == 12
    for app in apps:
        assert 1 <= len(app.view) <= app.view_size
        assert all(entry[0] != app.me for entry in app.view.values())


def test_shuffling_spreads_membership_beyond_the_bootstrap():
    sim, _controller, job = _deploy(nodes=12)
    sim.run(until=90.0)
    # Union of everyone's view should cover (almost) the whole membership:
    # Cyclon converges towards a uniform random graph, not a star.
    seen = set()
    for app in _apps(job):
        seen.update(key for key in app.view)
    assert len(seen) >= 10


def test_broadcast_reaches_every_member():
    sim, _controller, job = _deploy(nodes=12)
    sim.run(until=60.0)
    apps = _apps(job)
    apps[0].publish("hello")
    sim.run(until=sim.now + 30.0)
    delivered = [a for a in apps if "hello" in a.store]
    assert len(delivered) == len(apps)
    hops = [a.store["hello"].hops for a in apps]
    assert max(hops) >= 1  # it actually travelled
    origin_record = apps[0].store["hello"]
    assert origin_record.via == "publish" and origin_record.hops == 0


def test_anti_entropy_recovers_nodes_that_missed_the_push():
    # Tiny fanout on a larger group: eager push alone will miss nodes, so
    # full coverage demonstrates the anti-entropy pull path.
    sim, _controller, job = _deploy(nodes=16, fanout=1)
    sim.run(until=60.0)
    apps = _apps(job)
    apps[0].publish("m")
    sim.run(until=sim.now + 60.0)
    delivered = [a for a in apps if "m" in a.store]
    assert len(delivered) == len(apps)
    assert any(a.store["m"].via == "anti-entropy" for a in apps)


def test_broadcast_survives_churn_and_reaches_joiners():
    sim, _controller, job = _deploy(
        nodes=12, churn_script="at 40s crash 25%\nat 50s join 3\n")
    sim.run(until=30.0)
    _apps(job)[0].publish("early")
    sim.run(until=150.0)
    apps = _apps(job)
    assert job.live_count == 12
    # Joiners arrived after the publish; anti-entropy must backfill them.
    missing = [a for a in apps if "early" not in a.store]
    assert missing == []


def test_same_seed_same_deliveries():
    def fingerprint(seed):
        sim, _controller, job = _deploy(nodes=10, seed=seed)
        sim.run(until=40.0)
        _apps(job)[0].publish("x")
        sim.run(until=90.0)
        return tuple(sorted((a.me.ip, a.me.port, round(a.store["x"].received_at, 9),
                             a.store["x"].hops)
                            for a in _apps(job) if "x" in a.store))

    assert fingerprint(3) == fingerprint(3)
