"""The ``scenarios bench`` harness: sweep, CSV/JSON schema, regression gate."""

import csv
import json

import pytest

from repro.apps.scenarios import (
    BENCH_CSV_COLUMNS,
    _aggregate_seed_rows,
    _kernel_timer_churn,
    check_bench_regression,
    mean_ci95,
    run_bench,
    write_bench_csv,
)


def test_run_bench_produces_rows_for_every_grid_cell(tmp_path):
    summary = run_bench(nodes_list=[8], churn_rates=[0.0], kernels=["wheel", "heap"],
                        seed=3, lookups=5, micro_duration=2.0, quiet=True)
    rows = summary["rows"]
    scenario_rows = [r for r in rows if r["row_type"] == "scenario"]
    kernel_rows = [r for r in rows if r["row_type"] == "kernel"]
    assert len(scenario_rows) == 2  # one per kernel
    assert len(kernel_rows) == 2
    assert summary["mismatches"] == []  # kernels must agree byte-for-byte
    digests = {r["report_digest"] for r in scenario_rows}
    assert len(digests) == 1
    for row in scenario_rows:
        assert row["workload"] == "chord"  # the active workload is recorded
        assert row["hosts"] == 8
        assert row["events_executed"] > 0
        assert row["events_per_sec"] > 0
        assert 0.0 <= row["success_rate"] <= 1.0
    assert "kernel" in summary["speedups"]

    csv_path = tmp_path / "bench.csv"
    write_bench_csv(str(csv_path), rows)
    with open(csv_path, newline="") as handle:
        parsed = list(csv.DictReader(handle))
    assert len(parsed) == len(rows)
    assert list(parsed[0].keys()) == BENCH_CSV_COLUMNS

    json_blob = json.dumps(summary, sort_keys=True)  # must be serialisable
    assert "rows" in json.loads(json_blob)


def test_run_bench_sweeps_host_counts_and_other_workloads():
    summary = run_bench(nodes_list=[10], churn_rates=[0.0], kernels=["wheel"],
                        seed=3, lookups=5, micro_duration=1.0, quiet=True,
                        workload="pastry", hosts_list=[4, 8])
    scenario_rows = [r for r in summary["rows"] if r["row_type"] == "scenario"]
    assert len(scenario_rows) == 2  # one per host count
    assert {r["hosts"] for r in scenario_rows} == {4, 8}
    assert all(r["workload"] == "pastry" for r in scenario_rows)
    assert summary["config"]["workload"] == "pastry"
    assert summary["config"]["hosts"] == [4, 8]


def test_mean_ci95_uses_student_t_for_small_samples():
    mean, ci = mean_ci95([10.0])
    assert (mean, ci) == (10.0, 0.0)  # one sample: no interval
    mean, ci = mean_ci95([8.0, 12.0])
    assert mean == 10.0
    # n=2: t(df=1)=12.706, s=2*sqrt(2)... half-width = 12.706 * 2 = 25.412
    assert ci == pytest.approx(12.706 * 2.0, rel=1e-6)
    mean, ci = mean_ci95([10.0, 10.0, 10.0, 10.0])
    assert (mean, ci) == (10.0, 0.0)  # zero variance


def test_aggregate_seed_rows_means_perf_and_keeps_the_first_digest():
    per_seed = [
        {"seed": 0, "wall_sec": 1.0, "virtual_time": 100.0, "events_executed": 1000,
         "events_per_sec": 1000.0, "wall_per_virtual_sec": 0.01,
         "success_rate": 1.0, "latency_p50_ms": 10.0, "latency_p95_ms": 20.0,
         "hops_mean": 3.0, "report_digest": "aaaa"},
        {"seed": 1, "wall_sec": 3.0, "virtual_time": 100.0, "events_executed": 2000,
         "events_per_sec": 2000.0, "wall_per_virtual_sec": 0.03,
         "success_rate": 0.9, "latency_p50_ms": 30.0, "latency_p95_ms": 40.0,
         "hops_mean": 5.0, "report_digest": "bbbb"},
    ]
    row = _aggregate_seed_rows(per_seed)
    assert row["seeds"] == 2
    assert row["seed"] == 0
    assert row["events_per_sec"] == 1500.0
    assert row["events_per_sec_ci95"] > 0
    assert row["success_rate"] == pytest.approx(0.95)
    assert row["latency_p50_ms"] == pytest.approx(20.0)
    assert row["events_executed"] == 1500
    assert row["report_digest"] == "aaaa"  # digests are per-seed values


def test_run_bench_multi_seed_emits_means_with_ci():
    summary = run_bench(nodes_list=[8], churn_rates=[0.0], kernels=["wheel"],
                        seed=3, seeds=2, lookups=5, micro_duration=1.0,
                        quiet=True)
    (row,) = [r for r in summary["rows"] if r["row_type"] == "scenario"]
    assert row["seeds"] == 2
    assert row["events_per_sec"] > 0
    assert row["events_per_sec_ci95"] >= 0
    assert summary["config"]["seeds"] == 2
    assert summary["mismatches"] == []


def test_run_bench_records_the_testbed_in_every_scenario_row():
    summary = run_bench(nodes_list=[8], churn_rates=[0.0], kernels=["wheel"],
                        seed=3, lookups=5, micro_duration=1.0, quiet=True,
                        testbed="cluster")
    scenario_rows = [r for r in summary["rows"] if r["row_type"] == "scenario"]
    assert all(r["testbed"] == "cluster" for r in scenario_rows)
    assert summary["config"]["testbed"] == "cluster"


def test_kernel_timer_churn_is_deterministic_per_kernel():
    wheel = _kernel_timer_churn("wheel", nodes=10, duration=5.0)
    heap = _kernel_timer_churn("heap", nodes=10, duration=5.0)
    # identical workloads: both kernels execute exactly the same events
    assert wheel["events_executed"] == heap["events_executed"] > 0


def test_check_bench_regression_flags_only_large_drops():
    baseline = {"rows": [
        {"row_type": "kernel", "kernel": "wheel", "nodes": 20, "churn_rate": "",
         "events_per_sec": 1000.0},
        {"row_type": "scenario", "kernel": "wheel", "nodes": 20, "churn_rate": 0.0,
         "events_per_sec": 500.0},
        {"row_type": "scenario", "kernel": "wheel", "nodes": 999, "churn_rate": 0.0,
         "events_per_sec": 500.0},  # cell absent from the current run: ignored
    ]}
    current = {"rows": [
        {"row_type": "kernel", "kernel": "wheel", "nodes": 20, "churn_rate": "",
         "events_per_sec": 800.0},   # -20%: within the 30% tolerance
        {"row_type": "scenario", "kernel": "wheel", "nodes": 20, "churn_rate": 0.0,
         "events_per_sec": 300.0},   # -40%: regression
    ]}
    failures = check_bench_regression(current, baseline, tolerance=0.30)
    assert len(failures) == 1
    assert "scenario" in failures[0] and "40%" in failures[0]


def test_bench_cli_writes_csv_and_json(tmp_path, capsys):
    from repro.apps.scenarios import main

    csv_path = tmp_path / "bench.csv"
    json_path = tmp_path / "BENCH_kernel.json"
    status = main(["bench", "--nodes", "8", "--churn-rates", "0",
                   "--lookups", "5", "--micro-duration", "2",
                   "--csv", str(csv_path), "--json", str(json_path), "--quiet"])
    assert status == 0
    assert csv_path.exists() and json_path.exists()
    summary = json.loads(json_path.read_text())
    assert summary["config"]["nodes"] == [8]
    assert summary["mismatches"] == []
    out = capsys.readouterr().out
    assert "wrote" in out


def test_run_bench_jobs_pool_matches_serial_byte_for_byte():
    """The --jobs contract: pooled runs differ from serial only in timing."""
    from repro.apps.scenarios import BENCH_TIMING_COLUMNS, deterministic_row_view

    kwargs = dict(nodes_list=[8], churn_rates=[0.0], kernels=["wheel", "heap"],
                  seed=3, lookups=5, micro_duration=1.0, quiet=True)
    serial = run_bench(jobs=1, **kwargs)
    pooled = run_bench(jobs=4, **kwargs)
    assert [deterministic_row_view(r) for r in serial["rows"]] == \
           [deterministic_row_view(r) for r in pooled["rows"]]
    assert pooled["mismatches"] == []
    assert all(r["jobs"] == 4 for r in pooled["rows"])
    assert all(r["jobs"] == 1 for r in serial["rows"])
    # Digests are part of the deterministic view, but assert explicitly:
    # worker processes must reproduce the serial reports bit-for-bit.
    serial_digests = [r["report_digest"] for r in serial["rows"]
                      if r["row_type"] == "scenario"]
    pooled_digests = [r["report_digest"] for r in pooled["rows"]
                      if r["row_type"] == "scenario"]
    assert serial_digests == pooled_digests
    # Timing columns exist on every row (masked above, gated by --check).
    for row in pooled["rows"]:
        assert BENCH_TIMING_COLUMNS <= set(row)


def test_run_scale_bench_records_peak_rss_per_cell():
    from repro.apps.scenarios import run_scale_bench

    summary = run_scale_bench(scales=[30], jobs=1, seed=3, lookups=5,
                              quiet=True)
    (row,) = summary["rows"]
    assert row["row_type"] == "scale"
    assert row["workload"] == "chord"
    assert row["nodes"] == 30
    assert row["virtual_time"] > 0
    assert row["events_executed"] > 0
    assert row["peak_rss_kb"] > 0  # measured in the cell's own fresh worker
    assert row["report_digest"]
    assert summary["bench"] == "scale"
    assert summary["config"]["scales"] == [30]


def test_check_bench_regression_gates_scale_rows_on_peak_rss():
    base_row = {"row_type": "scale", "kernel": "wheel", "nodes": 1000,
                "churn_rate": 0.0, "events_per_sec": 1000.0,
                "peak_rss_kb": 100_000}
    baseline = {"rows": [base_row]}
    ok = {"rows": [dict(base_row, events_per_sec=950.0, peak_rss_kb=120_000)]}
    assert check_bench_regression(ok, baseline, rss_tolerance=0.50) == []
    bloated = {"rows": [dict(base_row, peak_rss_kb=160_000)]}
    failures = check_bench_regression(bloated, baseline, rss_tolerance=0.50)
    assert len(failures) == 1 and "peak RSS" in failures[0]
    # Non-scale rows never gate on RSS (serial runs report cumulative RSS).
    scenario_base = dict(base_row, row_type="scenario")
    scenario_bloat = {"rows": [dict(scenario_base, peak_rss_kb=500_000)]}
    assert check_bench_regression(scenario_bloat,
                                  {"rows": [scenario_base]}) == []


def test_scale_windows_grow_with_log10_of_the_node_count():
    from repro.apps.scenarios import (SCALE_JOIN_WINDOW, SCALE_SETTLE,
                                      scale_windows)

    # The 1k reference cell keeps the historical fixed windows...
    assert scale_windows(1000) == (SCALE_JOIN_WINDOW, SCALE_SETTLE)
    # ...and a 10x ring gets exactly one extra decade: doubled windows.
    assert scale_windows(10000) == (2 * SCALE_JOIN_WINDOW, 2 * SCALE_SETTLE)
    join_5k, settle_5k = scale_windows(5000)
    assert SCALE_JOIN_WINDOW < join_5k < 2 * SCALE_JOIN_WINDOW
    assert SCALE_SETTLE < settle_5k < 2 * SCALE_SETTLE
    # Sub-reference sizes never shrink below the base windows.
    assert scale_windows(100) == (SCALE_JOIN_WINDOW, SCALE_SETTLE)


def test_scale_efficiency_is_largest_over_smallest_events_per_sec():
    from repro.apps.scenarios import scale_efficiency

    rows = [
        {"row_type": "scale", "nodes": 1000, "events_per_sec": 50_000.0},
        {"row_type": "scale", "nodes": 5000, "events_per_sec": 40_000.0},
        {"row_type": "scale", "nodes": 10000, "events_per_sec": 35_000.0},
        {"row_type": "scenario", "nodes": 50, "events_per_sec": 1.0},
    ]
    assert scale_efficiency(rows) == pytest.approx(0.7)
    assert scale_efficiency(rows[:1]) is None  # one size: no ratio
    assert scale_efficiency([]) is None


def test_bench_rows_carry_phase_wall_columns():
    from repro.apps.scenarios import run_scale_bench

    summary = run_scale_bench(scales=[30], jobs=1, seed=3, lookups=5,
                              quiet=True)
    (row,) = summary["rows"]
    for column in ("wall_deploy_s", "wall_run_s", "wall_drain_s"):
        assert column in BENCH_CSV_COLUMNS
        assert isinstance(row[column], float)
    # Phase attribution covers (almost) the whole cell wall: the slices are
    # the same sim.run calls the cell times, so nothing big goes missing.
    assert row["wall_deploy_s"] + row["wall_run_s"] + row["wall_drain_s"] <= \
        row["wall_sec"] * 1.05
    assert summary["scale_efficiency"] is None  # single size: no ratio
