"""Runtime: splayd spawning/quotas, controller placement and log collection."""

import pytest

from repro.core.blacklist import Blacklist
from repro.core.jobs import JobSpec, JobState
from repro.lib.rpc import RpcError
from repro.lib.sbfs import SandboxFSError
from repro.lib.sbsocket import SocketPolicy, SocketRestrictionError
from repro.net.network import Network
from repro.runtime.controller import Controller, ControllerError
from repro.runtime.splayd import Splayd, SplaydError, SplaydLimits
from repro.sim.kernel import Simulator


def _world(seed=0, daemons=3, max_instances=2, **limit_kwargs):
    sim = Simulator(seed)
    network = Network(sim, seed=seed)
    controller = Controller(sim, network, seed=seed)
    for i in range(daemons):
        controller.register_daemon(Splayd(
            sim, network, f"10.0.0.{i + 1}",
            SplaydLimits(max_instances=max_instances, **limit_kwargs)))
    return sim, network, controller


def test_start_places_instances_across_daemons():
    sim, _network, controller = _world(daemons=3, max_instances=2)
    spec = JobSpec(name="app", app_factory=lambda inst: "app-object", instances=5)
    job = controller.submit(spec)
    instances = controller.start(job)
    assert len(instances) == 5
    assert job.state is JobState.RUNNING
    by_host = {}
    for instance in instances:
        by_host.setdefault(instance.me.ip, 0)
        by_host[instance.me.ip] += 1
    # Balanced placement: no daemon exceeds its 2-instance limit.
    assert all(count <= 2 for count in by_host.values())
    assert all(instance.app == "app-object" for instance in instances)


def test_start_fails_cleanly_when_capacity_is_insufficient():
    _sim, _network, controller = _world(daemons=2, max_instances=1)
    job = controller.submit(JobSpec(name="big", app_factory=lambda i: None, instances=5))
    with pytest.raises(ControllerError, match="could be placed"):
        controller.start(job)
    assert job.state is JobState.FAILED
    # Partially placed instances must not keep running unmanaged.
    assert job.live_count == 0
    assert all(daemon.has_capacity() for daemon in controller.alive_daemons())


def test_app_exiting_itself_still_tears_down_cleanly():
    sim, network, controller = _world(daemons=1, max_instances=1)

    def quitter_factory(instance):
        def _main():
            yield 1.0
            instance.events.exit()  # coroutine kills its own context

        instance.events.thread(_main)
        return "quitter"

    job = controller.submit(JobSpec(name="quitter", app_factory=quitter_factory,
                                    instances=1))
    (instance,) = controller.start(job)
    daemon = instance.daemon
    address = instance.address
    sim.run(until=2.0)
    # The self-initiated exit must run every cleanup: listener gone, slot
    # freed, instance reaped — exactly as with an external kill.
    assert not instance.alive
    assert not network.is_listening(address)
    assert instance not in daemon.instances
    assert daemon.has_capacity()


def test_daemon_refuses_spawn_beyond_local_limit():
    sim, network, _controller = _world()
    daemon = Splayd(sim, network, "10.0.9.1", SplaydLimits(max_instances=1))
    job_record = _submitted_job(sim, network)
    daemon.spawn(job_record, 0)
    with pytest.raises(SplaydError, match="capacity"):
        daemon.spawn(job_record, 1)


def _submitted_job(sim, network, **spec_kwargs):
    from repro.core.jobs import Job

    defaults = dict(name="j", app_factory=lambda i: None, instances=1)
    defaults.update(spec_kwargs)
    return Job(JobSpec(**defaults), created_at=sim.now)


def test_merged_policy_daemon_blacklist_applies_to_instances():
    sim, network, controller = _world(
        socket_policy=SocketPolicy(blacklist=Blacklist(["10.0.0.3"])))
    job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                    instances=1))
    (instance,) = controller.start(job)
    with pytest.raises(SocketRestrictionError, match="blacklisted"):
        instance.socket.send("10.0.0.3:20000", "forbidden")
    future = instance.rpc.call("10.0.0.3:20000", "anything")
    sim.run()
    with pytest.raises(RpcError):
        future.result()


def test_fs_quota_is_the_stricter_of_daemon_and_job():
    _sim, _network, controller = _world(fs_max_bytes=100)
    job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                    instances=1, fs_max_bytes=1000))
    (instance,) = controller.start(job)
    assert instance.fs.max_bytes == 100
    instance.fs.write_all("ok.txt", b"x" * 50)
    with pytest.raises(SandboxFSError, match="quota"):
        instance.fs.write_all("too-big.txt", b"x" * 100)


def test_kill_instance_tears_down_sandbox_and_frees_the_slot():
    sim, network, controller = _world(daemons=1, max_instances=1)
    job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                    instances=1))
    (instance,) = controller.start(job)
    daemon = instance.daemon
    address = instance.address
    assert network.is_listening(address)
    controller.kill_instance(instance, reason="test")
    assert not instance.alive
    assert not network.is_listening(address)
    assert daemon.has_capacity()
    assert job.live_count == 0
    # The freed slot can host a replacement instance.
    assert len(controller.start_instances(job, 1)) == 1


def test_host_failure_kills_all_instances_on_it():
    sim, _network, controller = _world(daemons=1, max_instances=4)
    job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                    instances=3))
    controller.start(job)
    killed = controller.fail_host("10.0.0.1")
    assert killed == 3
    assert job.live_count == 0
    assert job.stats.instances_failed == 3
    assert controller.alive_daemons() == []


def test_instance_logs_are_shipped_to_the_controller():
    sim, _network, controller = _world()
    job = controller.submit(JobSpec(name="app", app_factory=lambda i: None,
                                    instances=2, log_level="INFO"))
    instances = controller.start(job)
    instances[0].logger.info("hello from zero")
    instances[1].logger.warn("trouble on one")
    instances[1].logger.debug("below the level, not shipped")
    records = controller.job_logs(job)
    assert [r.message for r in records] == ["hello from zero", "trouble on one"]
    assert all(r.job_id == job.job_id for r in records)
    assert len(controller.job_logs(job, level="WARN")) == 1
    assert job.stats.log_records == 2
