#!/usr/bin/env python3
"""Summarise a ``bench --scale`` CSV: per-size table + scaling ratios.

The scale profile (``scenarios bench --scale``) runs Chord at growing
deployment sizes with fixed windows and records throughput and per-cell
peak RSS.  This script renders the committed or freshly-swept CSV as a
terminal table and derives the two numbers that matter for "does it
scale": how events/sec and KB-per-node move as the deployment grows.

    python tools/plot_scale.py bench_scale.csv

No dependencies beyond the stdlib — it runs on the bare CI image.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import List, Optional


def read_scale_rows(path: str) -> List[dict]:
    """Read the ``scale`` rows of a bench CSV (other row types are skipped)."""
    with open(path, newline="", encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    if not rows or "row_type" not in rows[0]:
        raise ValueError(f"{path}: expected a 'scenarios bench' CSV header")
    scale = [r for r in rows if r["row_type"] == "scale"]
    if not scale:
        raise ValueError(f"{path}: no scale rows (generate with bench --scale)")
    return sorted(scale, key=lambda r: int(r["nodes"]))


def format_table(rows: List[dict]) -> str:
    """The per-size table plus throughput/memory scaling ratios."""
    lines = [f"{'nodes':>7} {'hosts':>6} {'events':>10} {'ev/s':>9} "
             f"{'wall_s':>8} {'peak_rss_kb':>12} {'kb/node':>8}"]
    for row in rows:
        nodes = int(row["nodes"])
        rss = int(float(row["peak_rss_kb"] or 0))
        lines.append(
            f"{nodes:>7} {row['hosts']:>6} {row['events_executed']:>10} "
            f"{float(row['events_per_sec']):>9.0f} "
            f"{float(row['wall_sec']):>8.1f} {rss:>12} "
            f"{rss / nodes:>8.1f}")
    if len(rows) > 1:
        first, last = rows[0], rows[-1]
        growth = int(last["nodes"]) / int(first["nodes"])
        ev_ratio = (float(last["events_per_sec"])
                    / float(first["events_per_sec"]))
        first_rss = float(first["peak_rss_kb"] or 0)
        last_rss = float(last["peak_rss_kb"] or 0)
        lines.append("")
        lines.append(f"scaling {first['nodes']} -> {last['nodes']} nodes "
                     f"({growth:.0f}x):")
        lines.append(f"  events/sec ratio: {ev_ratio:.2f}x "
                     f"(1.00x = size-independent throughput)")
        if first_rss > 0:
            per_node_ratio = ((last_rss / int(last["nodes"]))
                              / (first_rss / int(first["nodes"])))
            lines.append(f"  KB-per-node ratio: {per_node_ratio:.2f}x "
                         f"(<= 1.00x = no per-node overhead growth)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarise a 'scenarios bench --scale' CSV")
    parser.add_argument("csv", help="bench_scale.csv (or any bench CSV "
                                    "containing scale rows)")
    args = parser.parse_args(argv)
    try:
        rows = read_scale_rows(args.csv)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
