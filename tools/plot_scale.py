#!/usr/bin/env python3
"""Summarise a ``bench --scale`` CSV: per-size table, ratios, cost curve.

The scale profile (``scenarios bench --scale``) runs Chord at growing
deployment sizes with log-scaled windows and records throughput, phase
wall attribution (deploy vs run vs drain) and per-cell peak RSS.  This
script renders the committed or freshly-swept CSV as a terminal table and
derives the numbers that matter for "does it scale": how events/sec,
per-event cost and KB-per-node move as the deployment grows.

    python tools/plot_scale.py bench_scale.csv
    python tools/plot_scale.py bench_scale.csv --out scale_cost.svg

``--out FILE.svg`` additionally draws the per-event-cost-vs-N curve
(µs/event against node count, lower and flatter is better) as a
self-contained SVG — the artifact the CI scale leg uploads.

No dependencies beyond the stdlib — it runs on the bare CI image.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import List, Optional


def read_scale_rows(path: str) -> List[dict]:
    """Read the ``scale`` rows of a bench CSV (other row types are skipped)."""
    with open(path, newline="", encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    if not rows or "row_type" not in rows[0]:
        raise ValueError(f"{path}: expected a 'scenarios bench' CSV header")
    scale = [r for r in rows if r["row_type"] == "scale"]
    if not scale:
        raise ValueError(f"{path}: no scale rows (generate with bench --scale)")
    return sorted(scale, key=lambda r: int(r["nodes"]))


def _float(row: dict, key: str) -> float:
    """A float column that may be absent or blank (older CSVs)."""
    value = row.get(key)
    return float(value) if value not in (None, "") else 0.0


def per_event_us(row: dict) -> float:
    """Host microseconds spent per simulated event — the flatness number."""
    rate = _float(row, "events_per_sec")
    return 1e6 / rate if rate > 0 else 0.0


def format_table(rows: List[dict]) -> str:
    """The per-size table plus throughput/memory scaling ratios."""
    lines = [f"{'nodes':>7} {'hosts':>6} {'events':>10} {'ev/s':>9} "
             f"{'us/ev':>7} {'wall_s':>8} {'deploy':>7} {'run':>8} "
             f"{'drain':>8} {'peak_rss_kb':>12} {'kb/node':>8}"]
    for row in rows:
        nodes = int(row["nodes"])
        rss = int(_float(row, "peak_rss_kb"))
        lines.append(
            f"{nodes:>7} {row['hosts']:>6} {row['events_executed']:>10} "
            f"{_float(row, 'events_per_sec'):>9.0f} "
            f"{per_event_us(row):>7.2f} "
            f"{_float(row, 'wall_sec'):>8.1f} "
            f"{_float(row, 'wall_deploy_s'):>7.1f} "
            f"{_float(row, 'wall_run_s'):>8.1f} "
            f"{_float(row, 'wall_drain_s'):>8.1f} {rss:>12} "
            f"{rss / nodes:>8.1f}")
    if len(rows) > 1:
        first, last = rows[0], rows[-1]
        growth = int(last["nodes"]) / int(first["nodes"])
        ev_ratio = (_float(last, "events_per_sec")
                    / _float(first, "events_per_sec"))
        first_rss = _float(first, "peak_rss_kb")
        last_rss = _float(last, "peak_rss_kb")
        lines.append("")
        lines.append(f"scaling {first['nodes']} -> {last['nodes']} nodes "
                     f"({growth:.0f}x):")
        lines.append(f"  events/sec ratio (scale_efficiency): {ev_ratio:.2f}x "
                     f"(1.00x = size-independent throughput)")
        first_cost = per_event_us(first)
        if first_cost > 0:
            lines.append(f"  per-event cost: {first_cost:.2f} -> "
                         f"{per_event_us(last):.2f} us/event "
                         f"({per_event_us(last) / first_cost:.2f}x)")
        if first_rss > 0:
            per_node_ratio = ((last_rss / int(last["nodes"]))
                              / (first_rss / int(first["nodes"])))
            lines.append(f"  KB-per-node ratio: {per_node_ratio:.2f}x "
                         f"(<= 1.00x = no per-node overhead growth)")
    return "\n".join(lines)


# ------------------------------------------------------------------ SVG curve
#: canvas geometry of the cost-curve SVG (pixels)
_SVG_W, _SVG_H = 640, 400
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 25, 45, 55


def cost_curve_svg(rows: List[dict]) -> str:
    """The per-event-cost-vs-N curve as a self-contained SVG document.

    X is node count (linear), Y is host µs per simulated event from zero —
    a flat line means per-event cost is independent of deployment size,
    which is exactly the claim the scale bench gates.  Stdlib-only on
    purpose: the CI image has no plotting stack.
    """
    points = [(int(r["nodes"]), per_event_us(r)) for r in rows]
    xs = [n for n, _ in points]
    ys = [c for _, c in points]
    x_max = max(xs)
    y_max = max(ys) * 1.15 or 1.0
    plot_w = _SVG_W - _MARGIN_L - _MARGIN_R
    plot_h = _SVG_H - _MARGIN_T - _MARGIN_B

    def px(nodes: float) -> float:
        return _MARGIN_L + plot_w * nodes / x_max

    def py(cost: float) -> float:
        return _MARGIN_T + plot_h * (1.0 - cost / y_max)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_SVG_W}" '
        f'height="{_SVG_H}" viewBox="0 0 {_SVG_W} {_SVG_H}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{_SVG_W}" height="{_SVG_H}" fill="white"/>',
        f'<text x="{_SVG_W / 2:.0f}" y="22" text-anchor="middle" '
        f'font-size="15">Per-event cost vs deployment size</text>',
    ]
    # horizontal gridlines + y labels (5 ticks from 0 to y_max)
    for tick in range(5 + 1):
        cost = y_max * tick / 5
        y = py(cost)
        parts.append(f'<line x1="{_MARGIN_L}" y1="{y:.1f}" '
                     f'x2="{_SVG_W - _MARGIN_R}" y2="{y:.1f}" '
                     f'stroke="#ddd"/>')
        parts.append(f'<text x="{_MARGIN_L - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{cost:.1f}</text>')
    # x ticks at the measured node counts
    axis_y = _SVG_H - _MARGIN_B
    for nodes in xs:
        x = px(nodes)
        parts.append(f'<line x1="{x:.1f}" y1="{axis_y}" '
                     f'x2="{x:.1f}" y2="{axis_y + 5}" stroke="#555"/>')
        parts.append(f'<text x="{x:.1f}" y="{axis_y + 20}" '
                     f'text-anchor="middle">{nodes}</text>')
    # axes
    parts.append(f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T}" '
                 f'x2="{_MARGIN_L}" y2="{axis_y}" stroke="#555"/>')
    parts.append(f'<line x1="{_MARGIN_L}" y1="{axis_y}" '
                 f'x2="{_SVG_W - _MARGIN_R}" y2="{axis_y}" stroke="#555"/>')
    parts.append(f'<text x="{_SVG_W / 2:.0f}" y="{_SVG_H - 12}" '
                 f'text-anchor="middle">nodes</text>')
    parts.append(f'<text x="16" y="{_SVG_H / 2:.0f}" text-anchor="middle" '
                 f'transform="rotate(-90 16 {_SVG_H / 2:.0f})">'
                 f'µs per event</text>')
    # the curve itself + point markers with value labels
    path = " ".join(f"{'M' if i == 0 else 'L'} {px(n):.1f} {py(c):.1f}"
                    for i, (n, c) in enumerate(points))
    parts.append(f'<path d="{path}" fill="none" stroke="#1f77b4" '
                 f'stroke-width="2"/>')
    for nodes, cost in points:
        parts.append(f'<circle cx="{px(nodes):.1f}" cy="{py(cost):.1f}" '
                     f'r="4" fill="#1f77b4"/>')
        parts.append(f'<text x="{px(nodes):.1f}" y="{py(cost) - 10:.1f}" '
                     f'text-anchor="middle">{cost:.1f}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarise a 'scenarios bench --scale' CSV")
    parser.add_argument("csv", help="bench_scale.csv (or any bench CSV "
                                    "containing scale rows)")
    parser.add_argument("--out", type=str, default=None, metavar="FILE.svg",
                        help="also write the per-event-cost-vs-N curve "
                             "as a stdlib-rendered SVG to FILE.svg")
    args = parser.parse_args(argv)
    try:
        rows = read_scale_rows(args.csv)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table(rows))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(cost_curve_svg(rows))
        print(f"\ncost curve: wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
