#!/usr/bin/env python3
"""Regenerate the bundled synthetic availability trace (or make new ones).

The repo ships ``traces/synthetic_overnet.trace``, an Overnet-shaped
availability trace (``host_id start end`` uptime intervals) used by the CI
``--churn-trace`` smoke leg and the trace-churn tests.  The trace is fully
determined by its parameters, so it can always be regenerated instead of
trusted blindly:

    PYTHONPATH=src python tools/gen_availability_trace.py \
        --hosts 6 --duration 300 --seed 9 --mean-up 150 --mean-down 40 \
        --out traces/synthetic_overnet.trace

Run with the defaults to reproduce the committed file byte for byte.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.churn import synthetic_availability_trace

#: the committed traces/synthetic_overnet.trace is generated with these
DEFAULTS = dict(hosts=6, duration=300.0, seed=9, mean_up=150.0, mean_down=40.0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hosts", type=int, default=DEFAULTS["hosts"])
    parser.add_argument("--duration", type=float, default=DEFAULTS["duration"])
    parser.add_argument("--seed", type=int, default=DEFAULTS["seed"])
    parser.add_argument("--mean-up", type=float, default=DEFAULTS["mean_up"])
    parser.add_argument("--mean-down", type=float, default=DEFAULTS["mean_down"])
    parser.add_argument("--out", type=str, default=None,
                        help="output path (default: stdout)")
    args = parser.parse_args(argv)
    text = synthetic_availability_trace(
        hosts=args.hosts, duration=args.duration, seed=args.seed,
        mean_up=args.mean_up, mean_down=args.mean_down)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(text.splitlines())} lines to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
