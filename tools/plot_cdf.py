#!/usr/bin/env python3
"""Plot one or more ``--cdf`` CSVs (``latency_ms,fraction``) on one figure.

Every scenario subcommand can dump its measured latency distribution with
``--cdf PATH`` (the shape of the paper's Figures 7-13).  This script turns
those CSVs into a figure:

    python tools/plot_cdf.py chord_stable.csv chord_churn.csv \
        --labels "no churn" "flagship churn" --out chord_cdf.png

With matplotlib installed the output is whatever format the ``--out``
extension says (png, pdf, svg, ...).  Without matplotlib the script falls
back to a pure-stdlib SVG writer — same curves, no dependencies — and the
output path's extension is switched to ``.svg`` if needed.  No network, no
pip: the fallback keeps the plot step working on bare CI images.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import List, Tuple

Curve = Tuple[str, List[float], List[float]]  # label, latencies_ms, fractions


def read_cdf(path: str) -> Tuple[List[float], List[float]]:
    """Read one ``latency_ms,fraction`` CSV into parallel lists."""
    with open(path, newline="", encoding="utf-8") as handle:
        rows = list(csv.DictReader(handle))
    if not rows or "latency_ms" not in rows[0] or "fraction" not in rows[0]:
        raise ValueError(f"{path}: expected a 'latency_ms,fraction' CSV header")
    return ([float(r["latency_ms"]) for r in rows],
            [float(r["fraction"]) for r in rows])


def _plot_matplotlib(curves: List[Curve], out: str, title: str) -> str:
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(5.0, 3.2))
    for label, xs, ys in curves:
        ax.plot(xs, ys, drawstyle="steps-post", label=label)
    ax.set_xlabel("latency (ms)")
    ax.set_ylabel("fraction of operations")
    ax.set_ylim(0, 1.02)
    ax.set_xlim(left=0)
    if title:
        ax.set_title(title)
    ax.legend(loc="lower right")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    return out


#: simple qualitative palette for the stdlib fallback
_COLORS = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"]


def _esc(text: str) -> str:
    """XML-escape user text (titles, labels) before it lands inside SVG."""
    return (text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;"))

_WIDTH, _HEIGHT = 640, 420
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 60, 20, 30, 45


def _plot_svg(curves: List[Curve], out: str, title: str) -> str:
    """Stdlib fallback: hand-written SVG with axes, ticks and a legend."""
    out = str(Path(out).with_suffix(".svg"))
    x_max = max((xs[-1] for _label, xs, _ys in curves if xs), default=1.0) or 1.0
    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def sx(x: float) -> float:
        return _MARGIN_L + plot_w * (x / x_max)

    def sy(y: float) -> float:
        return _MARGIN_T + plot_h * (1.0 - y)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" font-family="sans-serif" font-size="11">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        # axes
        f'<line x1="{_MARGIN_L}" y1="{sy(0)}" x2="{_WIDTH - _MARGIN_R}" '
        f'y2="{sy(0)}" stroke="black"/>',
        f'<line x1="{_MARGIN_L}" y1="{sy(0)}" x2="{_MARGIN_L}" '
        f'y2="{_MARGIN_T}" stroke="black"/>',
    ]
    if title:
        parts.append(f'<text x="{_WIDTH / 2}" y="18" text-anchor="middle" '
                     f'font-size="13">{_esc(title)}</text>')
    for tick in range(0, 5):  # y ticks at 0, .25, .5, .75, 1
        y = tick / 4.0
        parts.append(f'<line x1="{_MARGIN_L - 4}" y1="{sy(y)}" '
                     f'x2="{_MARGIN_L}" y2="{sy(y)}" stroke="black"/>')
        parts.append(f'<text x="{_MARGIN_L - 8}" y="{sy(y) + 4}" '
                     f'text-anchor="end">{y:g}</text>')
    for tick in range(0, 5):  # x ticks at quarters of the range
        x = x_max * tick / 4.0
        parts.append(f'<line x1="{sx(x)}" y1="{sy(0)}" x2="{sx(x)}" '
                     f'y2="{sy(0) + 4}" stroke="black"/>')
        parts.append(f'<text x="{sx(x)}" y="{sy(0) + 16}" '
                     f'text-anchor="middle">{x:.0f}</text>')
    parts.append(f'<text x="{_MARGIN_L + plot_w / 2}" y="{_HEIGHT - 8}" '
                 f'text-anchor="middle">latency (ms)</text>')
    parts.append(f'<text x="14" y="{_MARGIN_T + plot_h / 2}" text-anchor="middle" '
                 f'transform="rotate(-90 14 {_MARGIN_T + plot_h / 2})">'
                 f'fraction of operations</text>')
    for index, (label, xs, ys) in enumerate(curves):
        color = _COLORS[index % len(_COLORS)]
        points, last_y = [], 0.0
        for x, y in zip(xs, ys):
            points.append(f"{sx(x):.1f},{sy(last_y):.1f}")  # steps-post
            points.append(f"{sx(x):.1f},{sy(y):.1f}")
            last_y = y
        if points:
            parts.append(f'<polyline points="{" ".join(points)}" fill="none" '
                         f'stroke="{color}" stroke-width="1.5"/>')
        ly = _MARGIN_T + 14 + 16 * index  # legend, top-left of the plot area
        parts.append(f'<line x1="{_MARGIN_L + 10}" y1="{ly - 4}" '
                     f'x2="{_MARGIN_L + 34}" y2="{ly - 4}" stroke="{color}" '
                     f'stroke-width="1.5"/>')
        parts.append(f'<text x="{_MARGIN_L + 40}" y="{ly}">{_esc(label)}</text>')
    parts.append("</svg>")
    Path(out).write_text("\n".join(parts) + "\n", encoding="utf-8")
    return out


def plot(curves: List[Curve], out: str, title: str = "") -> str:
    """Render ``curves`` to ``out``; returns the path actually written."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return _plot_svg(curves, out, title)
    return _plot_matplotlib(curves, out, title)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("csvs", nargs="+", metavar="CDF_CSV",
                        help="CSV files written by a scenario's --cdf flag")
    parser.add_argument("--labels", nargs="*", default=None,
                        help="one legend label per CSV (default: file stems)")
    parser.add_argument("--out", default="latency_cdf.svg",
                        help="output figure path (extension picks the format; "
                             "falls back to .svg without matplotlib)")
    parser.add_argument("--title", default="", help="figure title")
    args = parser.parse_args(argv)
    if args.labels and len(args.labels) != len(args.csvs):
        print("error: need exactly one label per CSV", file=sys.stderr)
        return 2
    curves: List[Curve] = []
    for index, path in enumerate(args.csvs):
        label = args.labels[index] if args.labels else Path(path).stem
        try:
            xs, ys = read_cdf(path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        curves.append((label, xs, ys))
    written = plot(curves, args.out, args.title)
    total = sum(len(xs) for _label, xs, _ys in curves)
    print(f"plotted {len(curves)} curve(s), {total} samples -> {written}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
