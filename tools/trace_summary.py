#!/usr/bin/env python3
"""Summarise a scenario trace file (``--trace-out``) on the command line.

Reads the Chrome trace-event JSON the observability subsystem writes
(``{"traceEvents": [...]}``, ``"X"`` complete events with microsecond
``ts``/``dur``, one ``pid`` per host named by a ``process_name`` metadata
record) and prints per-host span counts plus p50/p95 span durations — a
quick health read without opening Perfetto.

Stdlib-only on purpose: CI and operators run it against uploaded trace
artifacts with nothing but a Python interpreter.

    python tools/trace_summary.py trace_chord.json
    python tools/trace_summary.py trace_chord.json --by-name --top 10

Exits non-zero when the file is missing, malformed, or contains no spans.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Dict, List


def load_events(path: str) -> List[dict]:
    """The ``traceEvents`` list of a trace file (raises ValueError when bad)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a Chrome trace-event document "
                         "(missing 'traceEvents')")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' is not a list")
    return events


def spans_by_host(events: List[dict]) -> Dict[str, List[dict]]:
    """Complete ('X') events grouped by host track (pid -> process_name)."""
    names = {event.get("pid"): event["args"]["name"]
             for event in events
             if event.get("ph") == "M" and event.get("name") == "process_name"
             and isinstance(event.get("args"), dict) and "name" in event["args"]}
    by_host: Dict[str, List[dict]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        host = names.get(event.get("pid"), str(event.get("pid")))
        by_host.setdefault(host, []).append(event)
    return by_host


def percentile(values: List[float], fraction: float) -> float:
    """Empirical percentile: smallest value covering ``fraction`` of samples."""
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def _row(label: str, spans: List[dict]) -> str:
    durations_ms = [float(span.get("dur", 0.0)) / 1000.0 for span in spans]
    return (f"  {label:<24} {len(spans):>8} "
            f"{percentile(durations_ms, 0.50):>10.3f} "
            f"{percentile(durations_ms, 0.95):>10.3f} "
            f"{max(durations_ms):>10.3f}")


def summarise(path: str, by_name: bool = False, top: int = 0) -> int:
    events = load_events(path)
    by_host = spans_by_host(events)
    total = sum(len(spans) for spans in by_host.values())
    if total == 0:
        print(f"error: {path} contains no complete ('X') span events",
              file=sys.stderr)
        return 1
    print(f"trace: {total} spans over {len(by_host)} host track(s)")
    print(f"  {'host':<24} {'spans':>8} {'p50_ms':>10} {'p95_ms':>10} "
          f"{'max_ms':>10}")
    hosts = sorted(by_host)
    if top > 0:
        hosts = sorted(by_host, key=lambda h: -len(by_host[h]))[:top]
    for host in hosts:
        print(_row(host, by_host[host]))
    if by_name:
        by_span_name: Dict[str, List[dict]] = {}
        for spans in by_host.values():
            for span in spans:
                by_span_name.setdefault(span.get("name", "?"), []).append(span)
        print(f"  {'span name':<24} {'spans':>8} {'p50_ms':>10} "
              f"{'p95_ms':>10} {'max_ms':>10}")
        for name in sorted(by_span_name):
            print(_row(name, by_span_name[name]))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-host span counts and latency percentiles of a "
                    "--trace-out file")
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--by-name", action="store_true",
                        help="also aggregate spans by span name")
    parser.add_argument("--top", type=int, default=0, metavar="N",
                        help="only the N busiest host tracks (default: all)")
    args = parser.parse_args(argv)
    try:
        return summarise(args.trace, by_name=args.by_name, top=args.top)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: cannot summarise {args.trace}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
