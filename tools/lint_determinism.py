#!/usr/bin/env python3
"""Determinism linter wrapper: ``tools/lint_determinism.py [args...]``.

Identical to ``python -m repro.analysis`` (see docs/ANALYSIS.md) but callable
without PYTHONPATH plumbing -- it adds ``src/`` to ``sys.path`` itself, so
pre-commit hooks and bare CI steps can invoke it directly.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
