#!/usr/bin/env python3
"""Fail if any relative markdown link in the repo's docs points nowhere.

Scans the given markdown files (default: README.md and everything under
docs/) for ``[text](target)`` links, resolves each relative target against
the linking file's directory, and exits non-zero listing every target that
does not exist inside the repo.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``) are skipped; a relative
target's ``#fragment`` suffix is ignored when checking existence.

Usage: ``python tools/check_docs_links.py [FILE.md ...]``
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links; deliberately simple — our docs don't nest brackets
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def _default_files(root: Path) -> list[Path]:
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return [f for f in files if f.exists()]


def check(files: list[Path], root: Path) -> list[str]:
    failures = []
    for source in files:
        text = source.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (source.parent / path).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                failures.append(f"{source}: {target} escapes the repository")
                continue
            if not resolved.exists():
                failures.append(f"{source}: broken link -> {target}")
    return failures


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    files = [Path(arg) for arg in argv] if argv else _default_files(root)
    failures = check(files, root)
    for line in failures:
        print(f"DOCS LINK FAIL: {line}", file=sys.stderr)
    if not failures:
        print(f"docs links ok: {len(files)} file(s) checked")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
